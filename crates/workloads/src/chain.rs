//! Sequential composition of process scripts.

use s4d_mpiio::{AppOp, ProcessScript};

/// Runs several scripts one after another, with a global barrier between
/// consecutive scripts so every process finishes instance `i` before any
/// starts instance `i+1` — the paper's "10 instances of IOR are created
/// one by one" (§V.B).
pub struct ChainScript {
    parts: Vec<Box<dyn ProcessScript>>,
    current: usize,
    pending_barrier: bool,
}

impl ChainScript {
    /// Chains the given scripts in order.
    pub fn new(parts: Vec<Box<dyn ProcessScript>>) -> Self {
        ChainScript {
            parts,
            current: 0,
            pending_barrier: false,
        }
    }
}

impl ProcessScript for ChainScript {
    fn next_op(&mut self) -> Option<AppOp> {
        loop {
            if self.pending_barrier {
                self.pending_barrier = false;
                return Some(AppOp::Barrier);
            }
            let part = self.parts.get_mut(self.current)?;
            match part.next_op() {
                Some(op) => return Some(op),
                None => {
                    self.current += 1;
                    if self.current < self.parts.len() {
                        self.pending_barrier = true;
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for ChainScript {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainScript")
            .field("parts", &self.parts.len())
            .field("current", &self.current)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_mpiio::script;

    #[test]
    fn chains_with_barriers_between() {
        let mut c = ChainScript::new(vec![
            Box::new(script().open("a").build()),
            Box::new(script().open("b").build()),
            Box::new(script().open("c").build()),
        ]);
        let mut kinds = Vec::new();
        while let Some(op) = c.next_op() {
            kinds.push(match op {
                AppOp::Open { name } => name,
                AppOp::Barrier => "|".into(),
                other => panic!("unexpected {other:?}"),
            });
        }
        assert_eq!(kinds, vec!["a", "|", "b", "|", "c"]);
    }

    #[test]
    fn empty_chain_is_empty() {
        let mut c = ChainScript::new(Vec::new());
        assert!(c.next_op().is_none());
        assert!(format!("{c:?}").contains("ChainScript"));
    }

    #[test]
    fn empty_parts_are_skipped() {
        let mut c = ChainScript::new(vec![
            Box::new(script().build()),
            Box::new(script().open("x").build()),
        ]);
        // Leading empty script: a barrier then "x".
        assert!(matches!(c.next_op(), Some(AppOp::Barrier)));
        assert!(matches!(c.next_op(), Some(AppOp::Open { .. })));
        assert!(c.next_op().is_none());
    }
}
