//! The paper's mixed IOR campaign (§V.B).
//!
//! "To simulate different data access patterns at different moments, 10
//! instances of IOR are created one by one with different parameters.
//! Among these instances, six issue sequential I/O requests and the
//! remaining send random I/O requests. In each instance, the test performs
//! write and read operations to a shared 2 GB file."

use s4d_mpiio::ProcessScript;
use serde::{Deserialize, Serialize};

use crate::chain::ChainScript;
use crate::ior::{AccessPattern, IorConfig, IorScript};

/// Parameters of the campaign; instance patterns default to the paper's
/// six-sequential + four-random mix, interleaved so the access behaviour
/// changes over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of MPI processes (the paper uses 32).
    pub processes: u32,
    /// Shared-file size per instance (the paper uses 2 GB).
    pub file_size: u64,
    /// Request size (the paper defaults to 16 KiB).
    pub request_size: u64,
    /// The per-instance access patterns, in execution order.
    pub patterns: Vec<AccessPattern>,
    /// Run write phases.
    pub do_write: bool,
    /// Run read phases.
    pub do_read: bool,
    /// Base seed for the random instances.
    pub seed: u64,
}

impl CampaignConfig {
    /// The paper's default mix: 10 instances, 6 sequential and 4 random,
    /// interleaved.
    pub fn paper_mix(processes: u32, file_size: u64, request_size: u64) -> Self {
        use AccessPattern::{Random, Sequential};
        CampaignConfig {
            processes,
            file_size,
            request_size,
            patterns: vec![
                Sequential, Random, Sequential, Sequential, Random, Sequential, Random, Sequential,
                Sequential, Random,
            ],
            do_write: true,
            do_read: true,
            seed: 0xCA4A,
        }
    }

    /// Total application data across all instances (the paper sizes the
    /// cache at 20 % of this).
    pub fn total_data_bytes(&self) -> u64 {
        self.patterns.len() as u64 * self.file_size
    }

    /// The per-instance IOR configurations, one shared file each.
    pub fn instances(&self) -> Vec<IorConfig> {
        self.patterns
            .iter()
            .enumerate()
            .map(|(i, &pattern)| IorConfig {
                file_name: format!("ior_instance_{i:02}.dat"),
                file_size: self.file_size,
                processes: self.processes,
                request_size: self.request_size,
                pattern,
                do_write: self.do_write,
                do_read: self.do_read,
                seed: self.seed.wrapping_add(i as u64 * 0x9E37),
            })
            .collect()
    }

    /// Builds one chained script per process covering every instance.
    pub fn scripts(&self) -> Vec<ChainScript> {
        let instances = self.instances();
        (0..self.processes)
            .map(|rank| {
                let parts: Vec<Box<dyn ProcessScript>> = instances
                    .iter()
                    .map(|cfg| {
                        Box::new(IorScript::new(cfg.clone(), rank)) as Box<dyn ProcessScript>
                    })
                    .collect();
                ChainScript::new(parts)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_mpiio::{AppOp, ProcessScript};
    use s4d_storage::IoKind;

    #[test]
    fn paper_mix_composition() {
        let c = CampaignConfig::paper_mix(32, 2 << 30, 16 * 1024);
        assert_eq!(c.patterns.len(), 10);
        let seq = c
            .patterns
            .iter()
            .filter(|p| **p == AccessPattern::Sequential)
            .count();
        assert_eq!(seq, 6);
        assert_eq!(c.total_data_bytes(), 10 * (2 << 30));
        assert_eq!(c.instances().len(), 10);
        assert_eq!(c.scripts().len(), 32);
    }

    #[test]
    fn instances_have_distinct_files_and_seeds() {
        let c = CampaignConfig::paper_mix(4, 1 << 20, 64 * 1024);
        let inst = c.instances();
        let names: std::collections::HashSet<_> =
            inst.iter().map(|i| i.file_name.clone()).collect();
        assert_eq!(names.len(), 10);
        let seeds: std::collections::HashSet<_> = inst.iter().map(|i| i.seed).collect();
        assert_eq!(seeds.len(), 10);
    }

    #[test]
    fn chained_script_walks_all_instances() {
        let mut c = CampaignConfig::paper_mix(2, 512 * 1024, 64 * 1024);
        c.patterns.truncate(3);
        let mut s = c.scripts().remove(0);
        let mut opens = Vec::new();
        let mut ios = 0;
        while let Some(op) = s.next_op() {
            match op {
                AppOp::Open { name } => opens.push(name),
                AppOp::Io { kind, .. } => {
                    assert!(matches!(kind, IoKind::Write | IoKind::Read));
                    ios += 1;
                }
                _ => {}
            }
        }
        assert_eq!(opens.len(), 3);
        assert!(opens[0].contains("00"));
        assert!(opens[2].contains("02"));
        // Per instance: region 256 KiB / 64 KiB = 4 requests, write + read.
        assert_eq!(ios, 3 * 8);
    }
}
