//! The IOR benchmark (LLNL), as used in the paper's §V.B.
//!
//! `n` MPI processes share one file; process `p` owns the `p`-th `1/n`
//! region and continuously issues fixed-size requests at sequential or
//! random offsets within it. A write phase and a read phase are separated
//! by barriers, like IOR's own phases.

use s4d_mpiio::{AppOp, FileHandle, ProcessScript};
use s4d_storage::IoKind;
use serde::{Deserialize, Serialize};

use crate::perm::Permutation;

/// Offset ordering within a process's region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Ascending offsets.
    Sequential,
    /// A seeded random permutation of the request-aligned offsets.
    Random,
}

impl std::fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessPattern::Sequential => "sequential",
            AccessPattern::Random => "random",
        })
    }
}

/// Configuration of one IOR instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IorConfig {
    /// Shared file name.
    pub file_name: String,
    /// Total shared-file size; each process works on `1/processes` of it.
    pub file_size: u64,
    /// Number of MPI processes.
    pub processes: u32,
    /// Request size in bytes.
    pub request_size: u64,
    /// Sequential or random offsets.
    pub pattern: AccessPattern,
    /// Run the write phase.
    pub do_write: bool,
    /// Run the read phase.
    pub do_read: bool,
    /// Seed for the random pattern.
    pub seed: u64,
}

impl IorConfig {
    /// A baseline configuration matching the paper's defaults (§V.B):
    /// shared 2 GB file, 32 processes, 16 KiB requests, write + read.
    pub fn paper_default(file_name: impl Into<String>, pattern: AccessPattern) -> Self {
        IorConfig {
            file_name: file_name.into(),
            file_size: 2 << 30,
            processes: 32,
            request_size: 16 * 1024,
            pattern,
            do_write: true,
            do_read: true,
            seed: 0x5eed,
        }
    }

    /// Requests each process issues per phase.
    pub fn requests_per_process(&self) -> u64 {
        self.region_size() / self.request_size
    }

    /// The size of one process's region.
    pub fn region_size(&self) -> u64 {
        self.file_size / self.processes as u64
    }

    /// Builds the per-process scripts.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero processes, request size
    /// of zero, or a region smaller than one request).
    pub fn scripts(&self) -> Vec<IorScript> {
        assert!(self.processes > 0, "IOR needs at least one process");
        assert!(self.request_size > 0, "request size must be positive");
        assert!(
            self.region_size() >= self.request_size,
            "each process region must fit at least one request"
        );
        (0..self.processes)
            .map(|rank| IorScript::new(self.clone(), rank))
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Open,
    OpenBarrier,
    Write(u64),
    WriteBarrier,
    Read(u64),
    Close,
    Done,
}

/// The lazy per-process IOR operation stream.
#[derive(Debug, Clone)]
pub struct IorScript {
    cfg: IorConfig,
    rank: u32,
    perm: Permutation,
    phase: Phase,
}

impl IorScript {
    /// Creates the script for one rank.
    pub fn new(cfg: IorConfig, rank: u32) -> Self {
        let count = cfg.requests_per_process().max(1);
        let perm = Permutation::new(count, cfg.seed ^ (rank as u64) << 32 | rank as u64);
        let phase = Phase::Open;
        IorScript {
            cfg,
            rank,
            perm,
            phase,
        }
    }

    fn offset_for(&self, i: u64) -> u64 {
        let region_start = self.rank as u64 * self.cfg.region_size();
        let slot = match self.cfg.pattern {
            AccessPattern::Sequential => i,
            AccessPattern::Random => self.perm.apply(i),
        };
        region_start + slot * self.cfg.request_size
    }

    fn io(&self, kind: IoKind, i: u64) -> AppOp {
        AppOp::Io {
            handle: FileHandle(0),
            kind,
            offset: self.offset_for(i),
            len: self.cfg.request_size,
            data: None,
        }
    }
}

impl ProcessScript for IorScript {
    fn next_op(&mut self) -> Option<AppOp> {
        let total = self.cfg.requests_per_process();
        loop {
            match self.phase {
                Phase::Open => {
                    self.phase = Phase::OpenBarrier;
                    return Some(AppOp::Open {
                        name: self.cfg.file_name.clone(),
                    });
                }
                Phase::OpenBarrier => {
                    self.phase = if self.cfg.do_write {
                        Phase::Write(0)
                    } else {
                        Phase::WriteBarrier
                    };
                    return Some(AppOp::Barrier);
                }
                Phase::Write(i) => {
                    if i < total {
                        self.phase = Phase::Write(i + 1);
                        return Some(self.io(IoKind::Write, i));
                    }
                    self.phase = Phase::WriteBarrier;
                }
                Phase::WriteBarrier => {
                    self.phase = if self.cfg.do_read {
                        Phase::Read(0)
                    } else {
                        Phase::Close
                    };
                    return Some(AppOp::Barrier);
                }
                Phase::Read(i) => {
                    if i < total {
                        self.phase = Phase::Read(i + 1);
                        return Some(self.io(IoKind::Read, i));
                    }
                    self.phase = Phase::Close;
                }
                Phase::Close => {
                    self.phase = Phase::Done;
                    return Some(AppOp::Close {
                        handle: FileHandle(0),
                    });
                }
                Phase::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pattern: AccessPattern) -> IorConfig {
        IorConfig {
            file_name: "shared".into(),
            file_size: 1024 * 1024,
            processes: 4,
            request_size: 64 * 1024,
            pattern,
            do_write: true,
            do_read: true,
            seed: 1,
        }
    }

    fn drain(mut s: IorScript) -> Vec<AppOp> {
        let mut ops = Vec::new();
        while let Some(op) = s.next_op() {
            ops.push(op);
        }
        ops
    }

    #[test]
    fn geometry() {
        let c = cfg(AccessPattern::Sequential);
        assert_eq!(c.region_size(), 256 * 1024);
        assert_eq!(c.requests_per_process(), 4);
        assert_eq!(c.scripts().len(), 4);
    }

    #[test]
    fn sequential_structure() {
        let ops = drain(IorScript::new(cfg(AccessPattern::Sequential), 1));
        // open, barrier, 4 writes, barrier, 4 reads, close
        assert_eq!(ops.len(), 12);
        assert!(matches!(ops[0], AppOp::Open { .. }));
        assert!(matches!(ops[1], AppOp::Barrier));
        let offsets: Vec<u64> = ops[2..6]
            .iter()
            .map(|op| match op {
                AppOp::Io { kind, offset, .. } => {
                    assert_eq!(*kind, IoKind::Write);
                    *offset
                }
                other => panic!("expected write, got {other:?}"),
            })
            .collect();
        // Rank 1's region starts at 256 KiB; sequential ascending.
        assert_eq!(
            offsets,
            vec![256 * 1024, 320 * 1024, 384 * 1024, 448 * 1024]
        );
        assert!(matches!(ops[6], AppOp::Barrier));
        assert!(matches!(ops[11], AppOp::Close { .. }));
    }

    #[test]
    fn random_covers_region_exactly_once() {
        let ops = drain(IorScript::new(cfg(AccessPattern::Random), 2));
        let mut offsets: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                AppOp::Io {
                    kind: IoKind::Write,
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        offsets.sort_unstable();
        assert_eq!(
            offsets,
            vec![512 * 1024, 576 * 1024, 640 * 1024, 704 * 1024],
            "random order still covers every slot once"
        );
    }

    #[test]
    fn read_only_instance_skips_write_phase() {
        let mut c = cfg(AccessPattern::Sequential);
        c.do_write = false;
        let ops = drain(IorScript::new(c, 0));
        // open, barrier, barrier, 4 reads, close
        let writes = ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    AppOp::Io {
                        kind: IoKind::Write,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(writes, 0);
        let reads = ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    AppOp::Io {
                        kind: IoKind::Read,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(reads, 4);
    }

    #[test]
    fn write_only_instance_skips_read_phase() {
        let mut c = cfg(AccessPattern::Sequential);
        c.do_read = false;
        let ops = drain(IorScript::new(c, 0));
        let reads = ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    AppOp::Io {
                        kind: IoKind::Read,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(reads, 0);
    }

    #[test]
    fn paper_default_dimensions() {
        let c = IorConfig::paper_default("f", AccessPattern::Random);
        assert_eq!(c.processes, 32);
        assert_eq!(c.request_size, 16 * 1024);
        assert_eq!(c.file_size, 2 << 30);
        assert_eq!(AccessPattern::Random.to_string(), "random");
        assert_eq!(AccessPattern::Sequential.to_string(), "sequential");
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn rejects_degenerate_geometry() {
        let mut c = cfg(AccessPattern::Sequential);
        c.request_size = 2 * 1024 * 1024;
        c.scripts();
    }
}
