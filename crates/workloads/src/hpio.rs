//! The HPIO benchmark (Northwestern/Sandia), paper §V.C.
//!
//! HPIO generates noncontiguous file access: each process touches
//! `region_count` regions of `region_size` bytes, consecutive regions
//! separated by `region_spacing` bytes of skipped file space. Zero spacing
//! degenerates to a contiguous (sequential) pattern, exactly the knob the
//! paper turns in Fig. 9.

use s4d_mpiio::{AppOp, FileHandle, ProcessScript};
use s4d_storage::IoKind;
use serde::{Deserialize, Serialize};

/// Configuration of one HPIO run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpioConfig {
    /// Shared file name.
    pub file_name: String,
    /// Number of MPI processes.
    pub processes: u32,
    /// Regions each process accesses (the paper uses 4096).
    pub region_count: u64,
    /// Region size in bytes (the paper uses 8 KiB).
    pub region_size: u64,
    /// Hole between consecutive regions (the paper sweeps 0–4 KiB).
    pub region_spacing: u64,
    /// Run the write phase.
    pub do_write: bool,
    /// Run the read phase.
    pub do_read: bool,
}

impl HpioConfig {
    /// The paper's §V.C setup: 16 processes, 4096 regions of 8 KiB.
    pub fn paper_default(file_name: impl Into<String>, region_spacing: u64) -> Self {
        HpioConfig {
            file_name: file_name.into(),
            processes: 16,
            region_count: 4096,
            region_size: 8 * 1024,
            region_spacing,
            do_write: true,
            do_read: true,
        }
    }

    /// File span of one process (regions plus holes).
    pub fn process_span(&self) -> u64 {
        self.region_count * (self.region_size + self.region_spacing)
    }

    /// Data bytes each process moves per phase.
    pub fn process_bytes(&self) -> u64 {
        self.region_count * self.region_size
    }

    /// Builds the per-process scripts.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero processes, regions, or region
    /// size).
    pub fn scripts(&self) -> Vec<HpioScript> {
        assert!(self.processes > 0, "HPIO needs at least one process");
        assert!(self.region_count > 0, "region count must be positive");
        assert!(self.region_size > 0, "region size must be positive");
        (0..self.processes)
            .map(|rank| HpioScript::new(self.clone(), rank))
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Open,
    OpenBarrier,
    Write(u64),
    WriteBarrier,
    Read(u64),
    Close,
    Done,
}

/// The lazy per-process HPIO operation stream.
#[derive(Debug, Clone)]
pub struct HpioScript {
    cfg: HpioConfig,
    rank: u32,
    phase: Phase,
}

impl HpioScript {
    /// Creates the script for one rank.
    pub fn new(cfg: HpioConfig, rank: u32) -> Self {
        HpioScript {
            cfg,
            rank,
            phase: Phase::Open,
        }
    }

    fn offset_for(&self, i: u64) -> u64 {
        self.rank as u64 * self.cfg.process_span()
            + i * (self.cfg.region_size + self.cfg.region_spacing)
    }

    fn io(&self, kind: IoKind, i: u64) -> AppOp {
        AppOp::Io {
            handle: FileHandle(0),
            kind,
            offset: self.offset_for(i),
            len: self.cfg.region_size,
            data: None,
        }
    }
}

impl ProcessScript for HpioScript {
    fn next_op(&mut self) -> Option<AppOp> {
        loop {
            match self.phase {
                Phase::Open => {
                    self.phase = Phase::OpenBarrier;
                    return Some(AppOp::Open {
                        name: self.cfg.file_name.clone(),
                    });
                }
                Phase::OpenBarrier => {
                    self.phase = if self.cfg.do_write {
                        Phase::Write(0)
                    } else {
                        Phase::WriteBarrier
                    };
                    return Some(AppOp::Barrier);
                }
                Phase::Write(i) => {
                    if i < self.cfg.region_count {
                        self.phase = Phase::Write(i + 1);
                        return Some(self.io(IoKind::Write, i));
                    }
                    self.phase = Phase::WriteBarrier;
                }
                Phase::WriteBarrier => {
                    self.phase = if self.cfg.do_read {
                        Phase::Read(0)
                    } else {
                        Phase::Close
                    };
                    return Some(AppOp::Barrier);
                }
                Phase::Read(i) => {
                    if i < self.cfg.region_count {
                        self.phase = Phase::Read(i + 1);
                        return Some(self.io(IoKind::Read, i));
                    }
                    self.phase = Phase::Close;
                }
                Phase::Close => {
                    self.phase = Phase::Done;
                    return Some(AppOp::Close {
                        handle: FileHandle(0),
                    });
                }
                Phase::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: HpioScript) -> Vec<AppOp> {
        let mut ops = Vec::new();
        while let Some(op) = s.next_op() {
            ops.push(op);
        }
        ops
    }

    #[test]
    fn zero_spacing_is_contiguous() {
        let mut c = HpioConfig::paper_default("f", 0);
        c.region_count = 4;
        c.processes = 2;
        let ops = drain(HpioScript::new(c, 0));
        let offsets: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                AppOp::Io {
                    kind: IoKind::Write,
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets, vec![0, 8192, 16384, 24576]);
    }

    #[test]
    fn spacing_creates_holes() {
        let mut c = HpioConfig::paper_default("f", 4096);
        c.region_count = 3;
        let ops = drain(HpioScript::new(c, 0));
        let offsets: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                AppOp::Io {
                    kind: IoKind::Write,
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets, vec![0, 12288, 24576]);
    }

    #[test]
    fn processes_are_disjoint() {
        let mut c = HpioConfig::paper_default("f", 1024);
        c.region_count = 4;
        let span = c.process_span();
        let last_of_rank0 = {
            let s = HpioScript::new(c.clone(), 0);
            s.offset_for(3) + c.region_size
        };
        let first_of_rank1 = HpioScript::new(c, 1).offset_for(0);
        assert!(last_of_rank0 <= first_of_rank1);
        assert_eq!(first_of_rank1, span);
    }

    #[test]
    fn phases_and_counts() {
        let mut c = HpioConfig::paper_default("f", 0);
        c.region_count = 5;
        let ops = drain(HpioScript::new(c, 0));
        let writes = ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    AppOp::Io {
                        kind: IoKind::Write,
                        ..
                    }
                )
            })
            .count();
        let reads = ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    AppOp::Io {
                        kind: IoKind::Read,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(writes, 5);
        assert_eq!(reads, 5);
        assert_eq!(
            ops.iter().filter(|o| matches!(o, AppOp::Barrier)).count(),
            2
        );
    }

    #[test]
    fn paper_defaults() {
        let c = HpioConfig::paper_default("f", 2048);
        assert_eq!(c.processes, 16);
        assert_eq!(c.region_count, 4096);
        assert_eq!(c.region_size, 8 * 1024);
        assert_eq!(c.process_bytes(), 32 * 1024 * 1024);
        assert_eq!(c.scripts().len(), 16);
    }

    #[test]
    #[should_panic(expected = "region size must be positive")]
    fn rejects_zero_region() {
        let mut c = HpioConfig::paper_default("f", 0);
        c.region_size = 0;
        c.scripts();
    }
}
