//! A checkpoint-style mixed workload.
//!
//! The paper's introduction motivates S4D-Cache with data-intensive HPC
//! applications whose I/O mixes bulk output with small scattered records.
//! This generator models that directly: each round, every process computes,
//! writes one large sequential slice of a checkpoint file, and then writes
//! a burst of small records at scattered offsets of a shared state file.
//! It is the cleanest showcase of the selective policy — the two request
//! classes have opposite optimal placements — and is used by the
//! `checkpoint_burst` example and the ablation tests.

use s4d_mpiio::{AppOp, FileHandle, ProcessScript};
use s4d_sim::SimDuration;
use s4d_storage::IoKind;
use serde::{Deserialize, Serialize};

use crate::perm::Permutation;

/// Configuration of the checkpoint workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Bulk checkpoint file name.
    pub dump_file: String,
    /// Scattered-record state file name.
    pub state_file: String,
    /// Number of MPI processes.
    pub processes: u32,
    /// Compute → dump → records rounds.
    pub rounds: u32,
    /// Size of each process's sequential dump slice per round.
    pub dump_slice: u64,
    /// Size of one state record.
    pub record_size: u64,
    /// Records each process scatters per round.
    pub records_per_round: u32,
    /// Span of the state file the records scatter over.
    pub state_span: u64,
    /// Compute time per round.
    pub think: SimDuration,
    /// Seed for the scatter pattern.
    pub seed: u64,
}

impl CheckpointConfig {
    /// A representative configuration: 16 processes, 6 rounds, 8 MiB dump
    /// slices, 64 scattered 16 KiB records per round over a 1 GiB state
    /// file.
    pub fn representative(processes: u32) -> Self {
        CheckpointConfig {
            dump_file: "checkpoint.dat".into(),
            state_file: "state.db".into(),
            processes,
            rounds: 6,
            dump_slice: 8 << 20,
            record_size: 16 * 1024,
            records_per_round: 64,
            state_span: 1 << 30,
            think: SimDuration::from_millis(200),
            seed: 0xC4EC,
        }
    }

    /// Total bytes written by the whole job.
    pub fn total_bytes(&self) -> u64 {
        let per_proc_round = self.dump_slice + self.record_size * self.records_per_round as u64;
        per_proc_round * self.processes as u64 * self.rounds as u64
    }

    /// Bulk (dump) fraction of the bytes, in `[0, 1]`.
    pub fn bulk_fraction(&self) -> f64 {
        let records = self.record_size * self.records_per_round as u64;
        self.dump_slice as f64 / (self.dump_slice + records) as f64
    }

    /// Builds the per-process scripts.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero processes/rounds/sizes, or a
    /// state span smaller than one record).
    pub fn scripts(&self) -> Vec<CheckpointScript> {
        assert!(self.processes > 0, "need at least one process");
        assert!(self.rounds > 0, "need at least one round");
        assert!(
            self.dump_slice > 0 && self.record_size > 0,
            "sizes must be positive"
        );
        assert!(
            self.state_span >= self.record_size,
            "state span must fit a record"
        );
        (0..self.processes)
            .map(|rank| CheckpointScript::new(self.clone(), rank))
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    OpenDump,
    OpenState,
    Think(u32),
    Dump(u32),
    Record(u32, u32),
    RoundBarrier(u32),
    CloseDump,
    CloseState,
    Done,
}

/// The lazy per-process checkpoint stream.
#[derive(Debug, Clone)]
pub struct CheckpointScript {
    cfg: CheckpointConfig,
    rank: u32,
    perm: Permutation,
    phase: Phase,
}

impl CheckpointScript {
    /// Creates the script for one rank.
    pub fn new(cfg: CheckpointConfig, rank: u32) -> Self {
        let slots = (cfg.state_span / cfg.record_size).max(1);
        let perm = Permutation::new(slots, cfg.seed ^ ((rank as u64) << 24));
        CheckpointScript {
            cfg,
            rank,
            perm,
            phase: Phase::OpenDump,
        }
    }

    fn record_offset(&self, round: u32, r: u32) -> u64 {
        let i = (round as u64 * self.cfg.records_per_round as u64 + r as u64) % self.perm.len();
        self.perm.apply(i) * self.cfg.record_size
    }
}

impl ProcessScript for CheckpointScript {
    fn next_op(&mut self) -> Option<AppOp> {
        loop {
            match self.phase {
                Phase::OpenDump => {
                    self.phase = Phase::OpenState;
                    return Some(AppOp::Open {
                        name: self.cfg.dump_file.clone(),
                    });
                }
                Phase::OpenState => {
                    self.phase = Phase::Think(0);
                    return Some(AppOp::Open {
                        name: self.cfg.state_file.clone(),
                    });
                }
                Phase::Think(round) => {
                    self.phase = Phase::Dump(round);
                    return Some(AppOp::Think {
                        duration: self.cfg.think,
                    });
                }
                Phase::Dump(round) => {
                    self.phase = Phase::Record(round, 0);
                    let offset = (round as u64 * self.cfg.processes as u64 + self.rank as u64)
                        * self.cfg.dump_slice;
                    return Some(AppOp::Io {
                        handle: FileHandle(0),
                        kind: IoKind::Write,
                        offset,
                        len: self.cfg.dump_slice,
                        data: None,
                    });
                }
                Phase::Record(round, r) => {
                    if r < self.cfg.records_per_round {
                        self.phase = Phase::Record(round, r + 1);
                        return Some(AppOp::Io {
                            handle: FileHandle(1),
                            kind: IoKind::Write,
                            offset: self.record_offset(round, r),
                            len: self.cfg.record_size,
                            data: None,
                        });
                    }
                    self.phase = Phase::RoundBarrier(round);
                }
                Phase::RoundBarrier(round) => {
                    self.phase = if round + 1 < self.cfg.rounds {
                        Phase::Think(round + 1)
                    } else {
                        Phase::CloseDump
                    };
                    return Some(AppOp::Barrier);
                }
                Phase::CloseDump => {
                    self.phase = Phase::CloseState;
                    return Some(AppOp::Close {
                        handle: FileHandle(0),
                    });
                }
                Phase::CloseState => {
                    self.phase = Phase::Done;
                    return Some(AppOp::Close {
                        handle: FileHandle(1),
                    });
                }
                Phase::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CheckpointConfig {
        let mut c = CheckpointConfig::representative(2);
        c.rounds = 2;
        c.records_per_round = 3;
        c
    }

    fn drain(mut s: CheckpointScript) -> Vec<AppOp> {
        let mut ops = Vec::new();
        while let Some(op) = s.next_op() {
            ops.push(op);
        }
        ops
    }

    #[test]
    fn structure_per_round() {
        let ops = drain(CheckpointScript::new(cfg(), 0));
        // 2 opens, then per round: think + dump + 3 records + barrier,
        // then 2 closes.
        let thinks = ops
            .iter()
            .filter(|o| matches!(o, AppOp::Think { .. }))
            .count();
        let barriers = ops.iter().filter(|o| matches!(o, AppOp::Barrier)).count();
        let writes = ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    AppOp::Io {
                        kind: IoKind::Write,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(thinks, 2);
        assert_eq!(barriers, 2);
        assert_eq!(writes, 2 * (1 + 3));
        assert!(matches!(ops[0], AppOp::Open { .. }));
        assert!(matches!(ops.last(), Some(AppOp::Close { .. })));
    }

    #[test]
    fn dumps_are_disjoint_and_sequential_per_round() {
        let c = cfg();
        for rank in 0..2 {
            let ops = drain(CheckpointScript::new(c.clone(), rank));
            let dumps: Vec<u64> = ops
                .iter()
                .filter_map(|o| match o {
                    AppOp::Io {
                        handle,
                        offset,
                        len,
                        ..
                    } if handle.0 == 0 => {
                        assert_eq!(*len, c.dump_slice);
                        Some(*offset)
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(dumps.len(), 2);
            // Round 1's slice is a full stride later.
            assert_eq!(dumps[1] - dumps[0], c.processes as u64 * c.dump_slice);
        }
    }

    #[test]
    fn records_scatter_without_repeats() {
        let c = cfg();
        let ops = drain(CheckpointScript::new(c.clone(), 1));
        let mut offsets: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                AppOp::Io { handle, offset, .. } if handle.0 == 1 => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets.len(), 6);
        offsets.dedup();
        let unique: std::collections::HashSet<_> = offsets.iter().collect();
        assert_eq!(unique.len(), 6, "permutation avoids repeats");
        for off in offsets {
            assert_eq!(off % c.record_size, 0);
            assert!(off < c.state_span);
        }
    }

    #[test]
    fn accounting() {
        let c = cfg();
        assert_eq!(c.total_bytes(), 2 * 2 * ((8 << 20) + 3 * 16 * 1024));
        assert!(c.bulk_fraction() > 0.9);
        assert_eq!(c.scripts().len(), 2);
    }

    #[test]
    #[should_panic(expected = "state span")]
    fn rejects_tiny_span() {
        let mut c = cfg();
        c.state_span = 1;
        c.scripts();
    }
}
