//! Deterministic random permutations without materialisation.

/// A seeded pseudo-random permutation of `0..n`.
///
/// Implemented as a four-round Feistel network over the smallest even bit
/// width covering `n`, with cycle-walking to stay inside the domain. O(1)
/// memory, so random IOR offsets over multi-gigabyte regions cost nothing.
///
/// ```
/// use s4d_workloads::Permutation;
/// let p = Permutation::new(1000, 42);
/// let mut seen = vec![false; 1000];
/// for i in 0..1000 {
///     let v = p.apply(i) as usize;
///     assert!(!seen[v]);
///     seen[v] = true;
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Permutation {
    n: u64,
    half_bits: u32,
    half_mask: u64,
    keys: [u64; 4],
}

impl Permutation {
    /// Creates a permutation of `0..n` keyed by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "cannot permute an empty domain");
        // Bits needed to cover n-1, rounded up to an even count ≥ 2.
        let bits = (64 - (n - 1).max(1).leading_zeros()).max(2);
        let bits = bits + (bits & 1);
        let half_bits = bits / 2;
        let mut keys = [0u64; 4];
        let mut k = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for key in &mut keys {
            k ^= k >> 33;
            k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            k ^= k >> 33;
            *key = k;
        }
        Permutation {
            n,
            half_bits,
            half_mask: (1u64 << half_bits) - 1,
            keys,
        }
    }

    /// Domain size.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True if the domain is the single element `0`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The image of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn apply(&self, i: u64) -> u64 {
        assert!(i < self.n, "index {i} outside domain of size {}", self.n);
        let mut x = i;
        // Cycle-walk until we land inside the domain again.
        loop {
            x = self.feistel(x);
            if x < self.n {
                return x;
            }
        }
    }

    fn feistel(&self, x: u64) -> u64 {
        let mut left = (x >> self.half_bits) & self.half_mask;
        let mut right = x & self.half_mask;
        for key in self.keys {
            let f = right
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(key)
                .rotate_left(31)
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                & self.half_mask;
            let new_right = left ^ f;
            left = right;
            right = new_right;
        }
        (left << self.half_bits) | right
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_on_singleton() {
        let p = Permutation::new(1, 9);
        assert_eq!(p.apply(0), 0);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Permutation::new(5000, 7);
        let b = Permutation::new(5000, 7);
        let c = Permutation::new(5000, 8);
        let same: Vec<u64> = (0..100).map(|i| a.apply(i)).collect();
        assert_eq!(same, (0..100).map(|i| b.apply(i)).collect::<Vec<_>>());
        let diff = (0..100).filter(|&i| a.apply(i) == c.apply(i)).count();
        assert!(diff < 10, "different seeds should disagree, agreed {diff}");
    }

    #[test]
    fn output_looks_shuffled() {
        let p = Permutation::new(1 << 16, 3);
        // Count how many adjacent inputs map to adjacent outputs: for a
        // random permutation this is vanishingly rare.
        let adjacent = (0..1000u64)
            .filter(|&i| p.apply(i + 1) == p.apply(i) + 1)
            .count();
        assert!(adjacent < 5, "{adjacent} adjacent pairs survived");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_out_of_domain() {
        Permutation::new(10, 0).apply(10);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn rejects_empty_domain() {
        Permutation::new(0, 0);
    }

    proptest! {
        /// The map is a bijection on 0..n for arbitrary (n, seed).
        #[test]
        fn prop_bijection(n in 1u64..5000, seed in any::<u64>()) {
            let p = Permutation::new(n, seed);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let v = p.apply(i);
                prop_assert!(v < n);
                prop_assert!(!seen[v as usize], "collision at {}", v);
                seen[v as usize] = true;
            }
        }
    }
}
