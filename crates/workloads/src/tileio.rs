//! The MPI-Tile-IO benchmark, paper §V.D.
//!
//! The file is a dense 2-D dataset of fixed-size elements. Processes form a
//! `px × py` grid; each owns a tile of `tx × ty` elements and accesses it
//! row by row — a nested-strided pattern: within a row the access is
//! contiguous (`tx` elements), consecutive rows are separated by the full
//! dataset width. Better locality than random IOR, worse than pure
//! sequential — which is why the paper's Fig. 10 gains sit between the two.

use s4d_mpiio::{AppOp, FileHandle, ProcessScript};
use s4d_storage::IoKind;
use serde::{Deserialize, Serialize};

/// Chooses a near-square process grid for `n` processes: the factor pair
/// `(x, y)`, `x ≥ y`, with the smallest difference.
///
/// ```
/// use s4d_workloads::grid_for;
/// assert_eq!(grid_for(100), (10, 10));
/// assert_eq!(grid_for(200), (20, 10));
/// assert_eq!(grid_for(7), (7, 1));
/// ```
pub fn grid_for(n: u32) -> (u32, u32) {
    assert!(n > 0, "cannot grid zero processes");
    let mut best = (n, 1);
    let mut y = 1;
    while y * y <= n {
        if n.is_multiple_of(y) {
            best = (n / y, y);
        }
        y += 1;
    }
    best
}

/// Configuration of one MPI-Tile-IO run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileIoConfig {
    /// Shared dataset file name.
    pub file_name: String,
    /// Number of MPI processes (arranged into a near-square grid).
    pub processes: u32,
    /// Elements per tile in X (the paper uses 10).
    pub tile_elems_x: u64,
    /// Elements per tile in Y (the paper uses 10).
    pub tile_elems_y: u64,
    /// Element size in bytes (the paper uses 32 KiB).
    pub element_size: u64,
    /// Run the write phase.
    pub do_write: bool,
    /// Run the read phase.
    pub do_read: bool,
}

impl TileIoConfig {
    /// The paper's §V.D setup: 10×10-element tiles of 32 KiB elements.
    pub fn paper_default(file_name: impl Into<String>, processes: u32) -> Self {
        TileIoConfig {
            file_name: file_name.into(),
            processes,
            tile_elems_x: 10,
            tile_elems_y: 10,
            element_size: 32 * 1024,
            do_write: true,
            do_read: true,
        }
    }

    /// The process grid `(px, py)`.
    pub fn grid(&self) -> (u32, u32) {
        grid_for(self.processes)
    }

    /// Elements across the whole dataset in X.
    pub fn dataset_elems_x(&self) -> u64 {
        self.grid().0 as u64 * self.tile_elems_x
    }

    /// Total dataset size in bytes.
    pub fn dataset_bytes(&self) -> u64 {
        self.dataset_elems_x() * self.grid().1 as u64 * self.tile_elems_y * self.element_size
    }

    /// Data bytes each process moves per phase.
    pub fn process_bytes(&self) -> u64 {
        self.tile_elems_x * self.tile_elems_y * self.element_size
    }

    /// Builds the per-process scripts.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn scripts(&self) -> Vec<TileIoScript> {
        assert!(self.processes > 0, "Tile-IO needs at least one process");
        assert!(
            self.tile_elems_x > 0 && self.tile_elems_y > 0 && self.element_size > 0,
            "tile geometry must be positive"
        );
        (0..self.processes)
            .map(|rank| TileIoScript::new(self.clone(), rank))
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Open,
    OpenBarrier,
    Write(u64),
    WriteBarrier,
    Read(u64),
    Close,
    Done,
}

/// The lazy per-process Tile-IO operation stream: one op per tile row.
#[derive(Debug, Clone)]
pub struct TileIoScript {
    cfg: TileIoConfig,
    tile_x: u64,
    tile_y: u64,
    phase: Phase,
}

impl TileIoScript {
    /// Creates the script for one rank.
    pub fn new(cfg: TileIoConfig, rank: u32) -> Self {
        let (px, _py) = cfg.grid();
        TileIoScript {
            tile_x: (rank % px) as u64,
            tile_y: (rank / px) as u64,
            cfg,
            phase: Phase::Open,
        }
    }

    /// File offset of row `r` of this process's tile.
    fn row_offset(&self, r: u64) -> u64 {
        let global_row = self.tile_y * self.cfg.tile_elems_y + r;
        let row_start_elem = global_row * self.cfg.dataset_elems_x();
        let elem_in_row = self.tile_x * self.cfg.tile_elems_x;
        (row_start_elem + elem_in_row) * self.cfg.element_size
    }

    fn row_len(&self) -> u64 {
        self.cfg.tile_elems_x * self.cfg.element_size
    }

    fn io(&self, kind: IoKind, r: u64) -> AppOp {
        AppOp::Io {
            handle: FileHandle(0),
            kind,
            offset: self.row_offset(r),
            len: self.row_len(),
            data: None,
        }
    }
}

impl ProcessScript for TileIoScript {
    fn next_op(&mut self) -> Option<AppOp> {
        let rows = self.cfg.tile_elems_y;
        loop {
            match self.phase {
                Phase::Open => {
                    self.phase = Phase::OpenBarrier;
                    return Some(AppOp::Open {
                        name: self.cfg.file_name.clone(),
                    });
                }
                Phase::OpenBarrier => {
                    self.phase = if self.cfg.do_write {
                        Phase::Write(0)
                    } else {
                        Phase::WriteBarrier
                    };
                    return Some(AppOp::Barrier);
                }
                Phase::Write(r) => {
                    if r < rows {
                        self.phase = Phase::Write(r + 1);
                        return Some(self.io(IoKind::Write, r));
                    }
                    self.phase = Phase::WriteBarrier;
                }
                Phase::WriteBarrier => {
                    self.phase = if self.cfg.do_read {
                        Phase::Read(0)
                    } else {
                        Phase::Close
                    };
                    return Some(AppOp::Barrier);
                }
                Phase::Read(r) => {
                    if r < rows {
                        self.phase = Phase::Read(r + 1);
                        return Some(self.io(IoKind::Read, r));
                    }
                    self.phase = Phase::Close;
                }
                Phase::Close => {
                    self.phase = Phase::Done;
                    return Some(AppOp::Close {
                        handle: FileHandle(0),
                    });
                }
                Phase::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_factorisations() {
        assert_eq!(grid_for(1), (1, 1));
        assert_eq!(grid_for(4), (2, 2));
        assert_eq!(grid_for(12), (4, 3));
        assert_eq!(grid_for(100), (10, 10));
        assert_eq!(grid_for(400), (20, 20));
        assert_eq!(grid_for(13), (13, 1));
    }

    fn drain(mut s: TileIoScript) -> Vec<AppOp> {
        let mut ops = Vec::new();
        while let Some(op) = s.next_op() {
            ops.push(op);
        }
        ops
    }

    #[test]
    fn nested_stride_shape() {
        // 4 procs in a 2x2 grid, 2x2-element tiles of 1 KiB elements:
        // dataset is 4 elements wide.
        let cfg = TileIoConfig {
            file_name: "t".into(),
            processes: 4,
            tile_elems_x: 2,
            tile_elems_y: 2,
            element_size: 1024,
            do_write: true,
            do_read: false,
        };
        let ops = drain(TileIoScript::new(cfg.clone(), 0));
        let offsets: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                AppOp::Io { offset, len, .. } => {
                    assert_eq!(*len, 2048, "row = 2 contiguous elements");
                    Some(*offset)
                }
                _ => None,
            })
            .collect();
        // Rank 0 tile rows: row 0 at 0, row 1 one dataset-width later.
        assert_eq!(offsets, vec![0, 4 * 1024]);
        // Rank 3 (tile 1,1): rows 2 and 3, right half.
        let ops = drain(TileIoScript::new(cfg, 3));
        let offsets: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                AppOp::Io { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets, vec![(2 * 4 + 2) * 1024, (3 * 4 + 2) * 1024]);
    }

    #[test]
    fn tiles_cover_dataset_disjointly() {
        let cfg = TileIoConfig {
            file_name: "t".into(),
            processes: 6,
            tile_elems_x: 3,
            tile_elems_y: 2,
            element_size: 64,
            do_write: true,
            do_read: false,
        };
        let mut seen: HashSet<u64> = HashSet::new();
        let mut bytes = 0u64;
        for rank in 0..6 {
            for op in drain(TileIoScript::new(cfg.clone(), rank)) {
                if let AppOp::Io { offset, len, .. } = op {
                    for b in (offset..offset + len).step_by(64) {
                        assert!(seen.insert(b), "element overlap at {b}");
                    }
                    bytes += len;
                }
            }
        }
        assert_eq!(bytes, cfg.dataset_bytes());
        assert_eq!(bytes, 6 * cfg.process_bytes());
    }

    #[test]
    fn paper_default_dimensions() {
        let c = TileIoConfig::paper_default("t", 100);
        assert_eq!(c.grid(), (10, 10));
        assert_eq!(c.process_bytes(), 100 * 32 * 1024);
        assert_eq!(c.dataset_bytes(), 100 * 100 * 32 * 1024);
        assert_eq!(c.scripts().len(), 100);
    }

    #[test]
    #[should_panic(expected = "cannot grid zero")]
    fn rejects_zero_grid() {
        grid_for(0);
    }
}
