//! # s4d-workloads — the paper's benchmark workloads
//!
//! Faithful request-stream generators for the three benchmarks the paper
//! evaluates with (§V), each implementing
//! [`s4d_mpiio::ProcessScript`] so the same generators drive both the stock
//! and the S4D-Cache middleware:
//!
//! * [`IorConfig`] — IOR (LLNL): each of `n` processes owns `1/n` of a
//!   shared file and issues fixed-size requests at sequential or random
//!   offsets (§V.B);
//! * [`HpioConfig`] — HPIO (Northwestern/Sandia): noncontiguous regions
//!   parameterised by region count, size, and spacing (§V.C);
//! * [`TileIoConfig`] — MPI-Tile-IO: a dense 2-D dataset accessed in
//!   nested-strided tiles (§V.D);
//! * [`campaign`] — the paper's "10 IOR instances, six sequential + four
//!   random, created one by one" mix used throughout §V.B;
//! * [`CheckpointConfig`] — a checkpoint-style mixed workload (bulk dump +
//!   scattered records), the scenario the paper's introduction motivates.
//!
//! Scripts are lazy: a 16 GB IOR run never materialises its millions of
//! operations. Random patterns come from a seeded Feistel
//! [`Permutation`], so runs are deterministic and memory-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
mod chain;
mod checkpoint;
mod hpio;
mod ior;
mod perm;
mod tileio;

pub use chain::ChainScript;
pub use checkpoint::{CheckpointConfig, CheckpointScript};
pub use hpio::{HpioConfig, HpioScript};
pub use ior::{AccessPattern, IorConfig, IorScript};
pub use perm::Permutation;
pub use tileio::{grid_for, TileIoConfig, TileIoScript};
