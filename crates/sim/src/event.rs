//! Deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: ordered by time, ties broken by insertion sequence.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// Events scheduled for the same instant are delivered in the order they were
/// pushed, which makes the simulation fully deterministic.
///
/// ```
/// use s4d_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "late");
/// q.push(SimTime::from_nanos(5), "early");
/// q.push(SimTime::from_nanos(5), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of currently pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.scheduled_total)
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 10, 40, 0] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((at, ev)) = q.pop() {
            assert_eq!(at.as_nanos(), ev);
            out.push(ev);
        }
        assert_eq!(out, vec![0, 10, 10, 20, 30, 40]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(3), ());
        q.push(SimTime::from_nanos(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), (t, i));
            }
            let mut prev: Option<(u64, usize)> = None;
            while let Some((at, (t, i))) = q.pop() {
                prop_assert_eq!(at.as_nanos(), t);
                if let Some((pt, pi)) = prev {
                    prop_assert!(pt <= t);
                    if pt == t {
                        prop_assert!(pi < i, "same-instant events must pop in push order");
                    }
                }
                prev = Some((t, i));
            }
        }
    }
}
