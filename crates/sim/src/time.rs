//! Simulated time: instants and durations with nanosecond resolution.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// `SimTime` is a newtype over `u64`; arithmetic with [`SimDuration`] is
/// checked in debug builds and saturating in release builds never occurs in
/// practice because a `u64` of nanoseconds spans ~584 years.
///
/// ```
/// use s4d_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use s4d_sim::SimDuration;
/// assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `secs` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows a `u64` of nanoseconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a lossy `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative or non-finite inputs are clamped to zero: device service-time
    /// models produce tiny negative values only through floating-point error,
    /// and a simulation must never run backwards.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds, as a lossy `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past the u64 nanosecond horizon"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: subtracted duration before simulation start"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let u = t + SimDuration::from_millis(500);
        assert_eq!(u - t, SimDuration::from_millis(500));
        assert_eq!(u.duration_since(t), SimDuration::from_millis(500));
        assert_eq!(t.saturating_duration_since(u), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3) / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(1.5e-3),
            SimDuration::from_micros(1_500)
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let t = SimTime::from_secs(1);
        let _ = SimTime::ZERO.duration_since(t);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_nanos(2).max(SimDuration::from_nanos(7)),
            SimDuration::from_nanos(7)
        );
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }
}
