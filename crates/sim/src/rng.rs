//! Seeded random-number source for deterministic simulations.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number generator.
///
/// Thin wrapper over [`rand::rngs::StdRng`] that (a) is always explicitly
/// seeded — there is deliberately no `from_entropy` constructor — and
/// (b) offers the handful of draw shapes the simulator needs. Forking
/// ([`SimRng::fork`]) derives an independent stream, so components can hold
/// their own RNG without interleaving draws nondeterministically.
///
/// ```
/// use s4d_sim::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator keyed by `stream`.
    ///
    /// Two forks of the same parent with distinct `stream` values produce
    /// unrelated sequences; the parent's own stream is unaffected except for
    /// consuming one draw.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.inner.gen::<u64>();
        SimRng::seed(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        self.inner.gen_range(0..n)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range({lo}, {hi}) is empty");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)` over `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad f64 range");
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent1 = SimRng::seed(9);
        let mut parent2 = SimRng::seed(9);
        let mut f1 = parent1.fork(1);
        let mut f2 = parent2.fork(1);
        for _ in 0..16 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        let mut p = SimRng::seed(9);
        let mut a = p.fork(1);
        let mut b = p.fork(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn draws_respect_bounds() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            let w = r.range(5, 8);
            assert!((5..8).contains(&w));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.f64_range(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
        assert!(!r.chance(-1.0)); // clamped
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed(0).below(0);
    }
}
