//! Lightweight statistics collectors for simulation output.
//!
//! Three collectors cover everything the experiment harness reports:
//!
//! * [`LatencyHistogram`] — logarithmically bucketed request latencies with
//!   quantile queries;
//! * [`BandwidthMeter`] — bytes moved over a measured interval, reported in
//!   MB/s the way the paper reports aggregate I/O throughput;
//! * [`TimeSeries`] — per-window byte counts for plots over time.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// One mebibyte, the unit the paper's throughput figures use.
pub const MIB: f64 = 1024.0 * 1024.0;

/// A log₂-bucketed latency histogram over [`SimDuration`] samples.
///
/// Buckets are powers of two in nanoseconds: bucket `i` covers
/// `[2^i, 2^(i+1))` ns, with bucket 0 covering `[0, 2)` ns. Quantiles are
/// answered at bucket resolution (upper bound of the containing bucket),
/// which is ample for reporting p50/p95/p99 of device latencies.
///
/// ```
/// use s4d_sim::stats::LatencyHistogram;
/// use s4d_sim::SimDuration;
/// let mut h = LatencyHistogram::new();
/// for us in [10, 20, 30, 40, 1000] {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5).unwrap() >= SimDuration::from_micros(16));
/// assert!(h.max().unwrap() >= SimDuration::from_micros(1000));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = if ns < 2 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            None
        } else {
            Some(SimDuration::from_nanos(
                (self.sum_ns / self.count as u128) as u64,
            ))
        }
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos(self.max_ns))
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos(self.min_ns))
    }

    /// Latency at quantile `q ∈ [0, 1]`, at bucket resolution; `None` if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or not finite.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!(
            q.is_finite() && (0.0..=1.0).contains(&q),
            "quantile out of range"
        );
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return Some(SimDuration::from_nanos(upper.min(self.max_ns)));
            }
        }
        Some(SimDuration::from_nanos(self.max_ns))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max(),
        ) {
            (0, ..) => write!(f, "latency: no samples"),
            (n, Some(mean), Some(p50), Some(p99), Some(max)) => write!(
                f,
                "latency: n={n} mean={mean} p50={p50} p99={p99} max={max}"
            ),
            _ => unreachable!("non-empty histogram has all summary stats"),
        }
    }
}

/// Accumulates bytes moved and reports aggregate throughput, MB/s.
///
/// ```
/// use s4d_sim::stats::BandwidthMeter;
/// use s4d_sim::{SimDuration, SimTime};
/// let mut m = BandwidthMeter::new();
/// m.add(64 * 1024 * 1024);
/// let start = SimTime::ZERO;
/// let end = start + SimDuration::from_secs(2);
/// assert!((m.mib_per_sec(end - start) - 32.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthMeter {
    bytes: u64,
    ops: u64,
}

impl BandwidthMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` moved by one operation.
    pub fn add(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.ops += 1;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Aggregate throughput in MiB/s over `elapsed`; zero if `elapsed` is
    /// zero.
    pub fn mib_per_sec(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / MIB / secs
        }
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &BandwidthMeter) {
        self.bytes += other.bytes;
        self.ops += other.ops;
    }
}

/// Per-window byte counts: a bandwidth-over-time series.
///
/// Windows are fixed-width, starting at `t = 0`. Recording at time `t`
/// attributes the bytes to window `t / width`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    width: SimDuration,
    windows: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "window width must be positive");
        TimeSeries {
            width,
            windows: Vec::new(),
        }
    }

    /// Window width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Records `bytes` moved at instant `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        let idx = (at.as_nanos() / self.width.as_nanos()) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, 0);
        }
        self.windows[idx] += bytes;
    }

    /// Bytes recorded in window `idx` (zero if beyond the last write).
    pub fn window_bytes(&self, idx: usize) -> u64 {
        self.windows.get(idx).copied().unwrap_or(0)
    }

    /// Number of windows touched.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Iterator over `(window_start, MiB/s)` pairs.
    pub fn iter_mibs(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let w = self.width;
        self.windows.iter().enumerate().map(move |(i, &b)| {
            (
                SimTime::from_nanos(i as u64 * w.as_nanos()),
                b as f64 / MIB / w.as_secs_f64(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summary() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        for i in 1..=100u64 {
            h.record(SimDuration::from_micros(i));
        }
        assert_eq!(h.count(), 100);
        let mean = h.mean().unwrap();
        assert!(mean >= SimDuration::from_micros(50) && mean <= SimDuration::from_micros(51));
        assert_eq!(h.max().unwrap(), SimDuration::from_micros(100));
        assert_eq!(h.min().unwrap(), SimDuration::from_micros(1));
        // p100 equals max exactly.
        assert_eq!(h.quantile(1.0).unwrap(), SimDuration::from_micros(100));
        // p50 lands in the bucket containing 50us = 51200ns -> [32768, 65536).
        let p50 = h.quantile(0.5).unwrap().as_nanos();
        assert!((32_768..=65_536).contains(&p50), "p50 was {p50}");
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_nanos(10));
        b.record(SimDuration::from_nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max().unwrap(), SimDuration::from_nanos(1_000_000));
        assert_eq!(a.min().unwrap(), SimDuration::from_nanos(10));
    }

    #[test]
    fn histogram_display() {
        let mut h = LatencyHistogram::new();
        assert_eq!(format!("{h}"), "latency: no samples");
        h.record(SimDuration::from_micros(5));
        assert!(format!("{h}").contains("n=1"));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_bad_q() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn bandwidth_meter() {
        let mut m = BandwidthMeter::new();
        assert_eq!(m.mib_per_sec(SimDuration::from_secs(1)), 0.0);
        m.add(1024 * 1024);
        m.add(1024 * 1024);
        assert_eq!(m.bytes(), 2 * 1024 * 1024);
        assert_eq!(m.ops(), 2);
        assert!((m.mib_per_sec(SimDuration::from_secs(2)) - 1.0).abs() < 1e-12);
        assert_eq!(m.mib_per_sec(SimDuration::ZERO), 0.0);
        let mut n = BandwidthMeter::new();
        n.add(512);
        m.merge(&n);
        assert_eq!(m.ops(), 3);
    }

    #[test]
    fn time_series_buckets() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_nanos(100), 10);
        s.record(SimTime::from_secs(1), 20); // second window
        s.record(SimTime::from_secs(3), 5); // fourth window, gap in third
        assert_eq!(s.len(), 4);
        assert_eq!(s.window_bytes(0), 10);
        assert_eq!(s.window_bytes(1), 20);
        assert_eq!(s.window_bytes(2), 0);
        assert_eq!(s.window_bytes(3), 5);
        assert_eq!(s.window_bytes(99), 0);
        let pts: Vec<_> = s.iter_mibs().collect();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[1].0, SimTime::from_secs(1));
        assert!((pts[1].1 - 20.0 / MIB).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn time_series_rejects_zero_width() {
        TimeSeries::new(SimDuration::ZERO);
    }
}
