//! # s4d-sim — deterministic discrete-event simulation engine
//!
//! This crate provides the simulation substrate used by the S4D-Cache
//! reproduction: a nanosecond-resolution simulated clock ([`SimTime`],
//! [`SimDuration`]), a deterministic event queue ([`EventQueue`]), a generic
//! event-loop driver ([`Engine`]), a seeded random-number source ([`SimRng`])
//! and lightweight statistics collectors ([`stats`]).
//!
//! Determinism is a design requirement: two runs with the same configuration
//! and seed produce bit-identical event orders. Ties in event time are broken
//! by a monotonically increasing sequence number assigned at scheduling time.
//!
//! ```
//! use s4d_sim::{Engine, EventQueue, SimDuration, SimTime, World};
//!
//! struct Counter(u32);
//! impl World<u32> for Counter {
//!     fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
//!         self.0 += ev;
//!         if ev < 3 {
//!             q.push(now + SimDuration::from_micros(1), ev + 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.queue_mut().push(SimTime::ZERO, 1u32);
//! let mut world = Counter(0);
//! engine.run(&mut world);
//! assert_eq!(world.0, 1 + 2 + 3);
//! assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_micros(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod event;
mod rng;
pub mod stats;
mod time;

pub use engine::{Engine, World};
pub use event::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
