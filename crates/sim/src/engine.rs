//! The event-loop driver.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A simulation world: everything that reacts to events.
///
/// The engine pops events in time order and hands each to
/// [`World::handle`], which may schedule further events on the queue.
/// Implementations must never schedule events in the past; the engine
/// panics if they do, because a time-travelling event silently corrupts
/// every downstream measurement.
pub trait World<E> {
    /// Reacts to `ev` occurring at instant `now`, scheduling any follow-up
    /// events on `queue`.
    fn handle(&mut self, now: SimTime, ev: E, queue: &mut EventQueue<E>);
}

/// Drives a [`World`] by delivering events from an [`EventQueue`] in time
/// order until the queue drains or a horizon is reached.
///
/// ```
/// use s4d_sim::{Engine, EventQueue, SimDuration, SimTime, World};
///
/// struct Echo(Vec<u8>);
/// impl World<u8> for Echo {
///     fn handle(&mut self, _now: SimTime, ev: u8, _q: &mut EventQueue<u8>) {
///         self.0.push(ev);
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.queue_mut().push(SimTime::from_nanos(2), 2);
/// engine.queue_mut().push(SimTime::from_nanos(1), 1);
/// let mut world = Echo(Vec::new());
/// engine.run(&mut world);
/// assert_eq!(world.0, vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with an empty queue, positioned at `t = 0`.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulated instant (time of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Mutable access to the event queue, e.g. for seeding initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Shared access to the event queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Runs until the queue is empty. Returns the final simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the world schedules an event earlier than the engine's
    /// current time (causality violation).
    pub fn run(&mut self, world: &mut impl World<E>) -> SimTime {
        self.run_until(world, SimTime::MAX)
    }

    /// Runs until the queue is empty or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are delivered. Returns the
    /// final simulated time (never past `horizon`).
    ///
    /// # Panics
    ///
    /// Panics on causality violations, as in [`Engine::run`].
    pub fn run_until(&mut self, world: &mut impl World<E>, horizon: SimTime) -> SimTime {
        while let Some(at) = self.queue.peek_time() {
            if at > horizon {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked event must pop");
            assert!(
                at >= self.now,
                "causality violation: event at {at} delivered when clock is {now}",
                now = self.now
            );
            self.now = at;
            self.processed += 1;
            world.handle(at, ev, &mut self.queue);
        }
        self.now
    }

    /// Delivers exactly one event if one is pending. Returns `true` if an
    /// event was delivered.
    ///
    /// # Panics
    ///
    /// Panics on causality violations, as in [`Engine::run`].
    pub fn step(&mut self, world: &mut impl World<E>) -> bool {
        match self.queue.pop() {
            Some((at, ev)) => {
                assert!(
                    at >= self.now,
                    "causality violation: event at {at} delivered when clock is {now}",
                    now = self.now
                );
                self.now = at;
                self.processed += 1;
                world.handle(at, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Relay {
        hops: u32,
        seen: Vec<(SimTime, u32)>,
    }

    impl World<u32> for Relay {
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.seen.push((now, ev));
            if ev < self.hops {
                q.push(now + SimDuration::from_nanos(10), ev + 1);
            }
        }
    }

    #[test]
    fn run_drains_queue_and_advances_clock() {
        let mut engine = Engine::new();
        engine.queue_mut().push(SimTime::ZERO, 0u32);
        let mut w = Relay {
            hops: 5,
            seen: Vec::new(),
        };
        let end = engine.run(&mut w);
        assert_eq!(w.seen.len(), 6);
        assert_eq!(end, SimTime::from_nanos(50));
        assert_eq!(engine.processed(), 6);
        assert!(engine.queue().is_empty());
    }

    #[test]
    fn run_until_respects_horizon_inclusively() {
        let mut engine = Engine::new();
        engine.queue_mut().push(SimTime::ZERO, 0u32);
        let mut w = Relay {
            hops: 100,
            seen: Vec::new(),
        };
        let end = engine.run_until(&mut w, SimTime::from_nanos(30));
        // Events at t = 0, 10, 20, 30 delivered; t = 40 still pending.
        assert_eq!(w.seen.len(), 4);
        assert_eq!(end, SimTime::from_nanos(30));
        assert_eq!(engine.queue().len(), 1);
        // Resuming picks up where it stopped.
        let end = engine.run_until(&mut w, SimTime::from_nanos(55));
        assert_eq!(w.seen.len(), 6);
        assert_eq!(end, SimTime::from_nanos(50));
    }

    #[test]
    fn step_delivers_one_event() {
        let mut engine = Engine::new();
        engine.queue_mut().push(SimTime::from_nanos(1), 0u32);
        engine.queue_mut().push(SimTime::from_nanos(2), 0u32);
        let mut w = Relay {
            hops: 0,
            seen: Vec::new(),
        };
        assert!(engine.step(&mut w));
        assert_eq!(w.seen.len(), 1);
        assert!(engine.step(&mut w));
        assert!(!engine.step(&mut w));
    }

    struct TimeTraveler;
    impl World<()> for TimeTraveler {
        fn handle(&mut self, now: SimTime, _ev: (), q: &mut EventQueue<()>) {
            if now > SimTime::ZERO {
                q.push(SimTime::ZERO, ());
            }
        }
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics() {
        let mut engine = Engine::new();
        engine.queue_mut().push(SimTime::from_nanos(5), ());
        engine.run(&mut TimeTraveler);
    }
}
