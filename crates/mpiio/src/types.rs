//! Shared types of the middleware layer.

use s4d_pfs::{FileId, Priority};
use s4d_sim::SimDuration;
use s4d_storage::IoKind;
use serde::{Deserialize, Serialize};

/// An MPI process rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// A per-process handle to an opened file (index into the process's open
/// table, in open order — handle 0 is the first file the process opened).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FileHandle(pub usize);

/// Which parallel file system an I/O targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// The original PFS over HDD file servers (the paper's DServers/OPFS).
    DServers,
    /// The cache PFS over SSD file servers (the paper's CServers/CPFS).
    CServers,
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Tier::DServers => "DServers",
            Tier::CServers => "CServers",
        })
    }
}

/// One operation in an application process's script.
#[derive(Debug, Clone, PartialEq)]
pub enum AppOp {
    /// Open (creating if absent) the named file; the process receives the
    /// next [`FileHandle`] slot.
    Open {
        /// File name in the original file system's namespace.
        name: String,
    },
    /// Read or write `len` bytes at absolute `offset` of an open file.
    Io {
        /// Which open file.
        handle: FileHandle,
        /// Read or write.
        kind: IoKind,
        /// Absolute file offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
        /// Write payload for functional (byte-accurate) runs; `None` in
        /// timing-only runs.
        data: Option<Vec<u8>>,
    },
    /// Set the process's file pointer for an open file (the paper's
    /// `MPI_File_seek`, §IV.B). Explicit-offset I/O ignores the pointer;
    /// cursor I/O ([`AppOp::IoAtCursor`]) starts here.
    Seek {
        /// Which open file.
        handle: FileHandle,
        /// New absolute position.
        offset: u64,
    },
    /// Read or write `len` bytes at the file pointer, advancing it —
    /// `MPI_File_read`/`write` in their individual-file-pointer form.
    IoAtCursor {
        /// Which open file.
        handle: FileHandle,
        /// Read or write.
        kind: IoKind,
        /// Length in bytes.
        len: u64,
        /// Write payload for functional runs.
        data: Option<Vec<u8>>,
    },
    /// Close an open file.
    Close {
        /// Which open file.
        handle: FileHandle,
    },
    /// Wait until every process reaches its next barrier.
    Barrier,
    /// Local computation for the given duration.
    Think {
        /// How long the process computes before its next operation.
        duration: SimDuration,
    },
}

/// A fully resolved application I/O request, as seen by middleware.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRequest {
    /// Issuing process.
    pub rank: Rank,
    /// The file, already resolved to the original file system's id.
    pub file: FileId,
    /// Read or write.
    pub kind: IoKind,
    /// Absolute offset in the original file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Write payload (functional runs only).
    pub data: Option<Vec<u8>>,
}

/// One planned physical I/O produced by middleware for a request.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedIo {
    /// Target file system.
    pub tier: Tier,
    /// Target file within that tier (original file, cache file, or
    /// metadata journal).
    pub file: FileId,
    /// Read or write.
    pub kind: IoKind,
    /// Offset within `file`.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Service class at the file servers.
    pub priority: Priority,
    /// Write payload (functional runs only).
    pub data: Option<Vec<u8>>,
    /// For ops that carry a slice of the *application* request: the
    /// absolute offset in the original file where this op's bytes belong.
    /// `None` for overhead traffic such as metadata journal writes.
    pub app_offset: Option<u64>,
}

impl PlannedIo {
    /// A plain foreground data op on the given tier.
    pub fn data_op(
        tier: Tier,
        file: FileId,
        kind: IoKind,
        offset: u64,
        len: u64,
        app_offset: u64,
    ) -> Self {
        PlannedIo {
            tier,
            file,
            kind,
            offset,
            len,
            priority: Priority::Normal,
            data: None,
            app_offset: Some(app_offset),
        }
    }
}

/// An execution plan: phases run sequentially, ops within a phase run
/// concurrently. `tag` (when non-zero) is echoed to
/// [`crate::Middleware::on_plan_complete`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    /// Middleware-private identifier; 0 means "no completion callback".
    pub tag: u64,
    /// CPU time the middleware spent deciding (charged before phase 0;
    /// S4D-Cache uses this for its cost-model/lookup overhead, §V.E.2).
    pub lead_in: s4d_sim::SimDuration,
    /// The phases, outermost sequential, innermost concurrent.
    pub phases: Vec<Vec<PlannedIo>>,
    /// Per-sub-request deadline budget. When set, the runner arms a timer
    /// for every dispatched sub-request; one still outstanding when its
    /// budget lapses is reported to
    /// [`crate::Middleware::on_deadline`], which may hedge or abandon it.
    /// `None` (the default) disables deadline tracking for the plan.
    pub deadline: Option<SimDuration>,
}

impl Plan {
    /// A single-phase plan with no callback.
    pub fn single_phase(ops: Vec<PlannedIo>) -> Self {
        Plan {
            tag: 0,
            lead_in: s4d_sim::SimDuration::ZERO,
            phases: vec![ops],
            deadline: None,
        }
    }

    /// Total bytes across all planned ops (data + overhead).
    pub fn planned_bytes(&self) -> u64 {
        self.phases.iter().flatten().map(|op| op.len).sum()
    }

    /// True if the plan contains no ops at all.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|p| p.is_empty())
    }
}

/// A sub-request that outlived its deadline budget, as reported to the
/// middleware by [`crate::Middleware::on_deadline`]. Carries enough
/// context to plan a hedged replacement against the other tier.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerCtx {
    /// Tier of the straggling server.
    pub tier: Tier,
    /// Index of the straggling server within its tier.
    pub server: usize,
    /// The tier-local file the straggler targets (cache file, original
    /// file, or metadata journal).
    pub file: FileId,
    /// Read or write.
    pub kind: IoKind,
    /// Length of the straggling sub-request in bytes.
    pub len: u64,
    /// The *application* file the plan belongs to, when the plan serves a
    /// process request (`None` for background plans).
    pub app_file: Option<FileId>,
    /// Absolute `(offset, len)` ranges of the application file carried by
    /// the straggler. Empty for overhead traffic (journal writes) — there
    /// is nothing to hedge, only wait or abandon.
    pub app_segments: Vec<(u64, u64)>,
    /// Attempts of the straggling sub-request so far (≥ 1).
    pub attempts: u32,
}

/// The middleware's verdict on a straggling sub-request (see
/// [`crate::Middleware::on_deadline`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum HedgeDirective {
    /// Keep waiting on the straggler (e.g. the cache holds the only copy
    /// of dirty bytes — there is nowhere else to read them from).
    #[default]
    Wait,
    /// Abandon the straggler and run the given replacement ops under the
    /// same plan — a hedged read against the other tier. The straggler's
    /// late completion, if any, is discarded idempotently.
    Hedge {
        /// Replacement ops covering the straggler's application bytes.
        ops: Vec<PlannedIo>,
    },
    /// Abandon the straggler and fail its plan: the request is re-planned
    /// from scratch with middleware state that now reflects the stall
    /// (health demerits, shed admissions), so the new plan routes around
    /// the straggling server.
    Abandon,
}

/// A failed sub-request, as reported to the middleware by the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubIoFailure {
    /// Tier of the failing server.
    pub tier: Tier,
    /// Index of the failing server within its tier.
    pub server: usize,
    /// Read or write.
    pub kind: IoKind,
    /// Length of the failed sub-request in bytes.
    pub len: u64,
    /// What went wrong.
    pub error: s4d_pfs::IoFault,
    /// How many times this sub-request has been attempted (≥ 1).
    pub attempts: u32,
    /// True for overhead traffic (metadata journal writes) rather than
    /// application or Rebuilder data.
    pub overhead: bool,
}

/// The middleware's verdict on a failed sub-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorDirective {
    /// Resubmit the same sub-request to the same server after `delay`.
    Retry {
        /// Backoff before the resubmission.
        delay: SimDuration,
    },
    /// Stop retrying; the plan fails (the runner re-plans process
    /// requests through [`crate::Middleware::plan_io`], whose state now
    /// reflects the failure, and drops background plans).
    GiveUp,
}

/// Errors surfaced by middleware operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiddlewareError {
    /// The process used a handle it never opened.
    BadHandle(Rank, FileHandle),
    /// An underlying file-system error.
    Pfs(s4d_pfs::PfsError),
}

impl std::fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiddlewareError::BadHandle(rank, h) => {
                write!(f, "{rank} used unopened handle {}", h.0)
            }
            MiddlewareError::Pfs(e) => write!(f, "file system error: {e}"),
        }
    }
}

impl std::error::Error for MiddlewareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MiddlewareError::Pfs(e) => Some(e),
            MiddlewareError::BadHandle(..) => None,
        }
    }
}

impl From<s4d_pfs::PfsError> for MiddlewareError {
    fn from(e: s4d_pfs::PfsError) -> Self {
        MiddlewareError::Pfs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(Rank(3).to_string(), "rank3");
        assert_eq!(Tier::DServers.to_string(), "DServers");
        assert_eq!(Tier::CServers.to_string(), "CServers");
        let e = MiddlewareError::BadHandle(Rank(1), FileHandle(2));
        assert!(e.to_string().contains("unopened handle 2"));
        let e: MiddlewareError = s4d_pfs::PfsError::EmptyRequest.into();
        assert!(e.to_string().contains("file system error"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn plan_helpers() {
        let op = PlannedIo::data_op(Tier::DServers, FileId(1), IoKind::Write, 0, 100, 0);
        let plan = Plan::single_phase(vec![op.clone(), op]);
        assert_eq!(plan.planned_bytes(), 200);
        assert!(!plan.is_empty());
        assert_eq!(plan.tag, 0);
        assert!(Plan::default().is_empty());
    }
}
