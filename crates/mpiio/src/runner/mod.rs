//! The discrete-event execution engine.
//!
//! The [`Runner`] owns the [`Cluster`], a [`Middleware`] implementation and
//! one [`ProcessScript`] per simulated MPI process. It drives everything
//! through `s4d-sim`'s event loop:
//!
//! * a process executes its script; opens/closes are instantaneous control
//!   operations, reads/writes become middleware [`Plan`]s;
//! * a plan's phases run sequentially; the ops of a phase are decomposed
//!   into per-server sub-requests and submitted concurrently;
//! * file servers service one sub-request at a time (foreground before
//!   background) — each completion is an event;
//! * the middleware's background hook (the Rebuilder) is polled on the
//!   schedule it requests.
//!
//! This module is the wiring: the shared [`State`], the event alphabet,
//! and the public `Runner` surface. The machinery lives in the
//! submodules — [`exec`] (script advancement and plan execution),
//! [`retry`] (sub-request retries and request re-planning), [`drain`]
//! (background polling and draining), and [`observe`] (tracing hooks and
//! report accounting).

mod drain;
mod exec;
mod hedge;
mod observe;
mod retry;

use std::collections::HashMap;

use s4d_pfs::SubReqId;
use s4d_sim::{Engine, EventQueue, SimDuration, SimTime, World};

use crate::cluster::Cluster;
use crate::middleware::Middleware;
use crate::report::RunReport;
use crate::script::ProcessScript;
use crate::types::{Plan, Rank, Tier};

use exec::{PlanExec, PlanOwner, Proc, ProcStatus, SubMeta};
use retry::{PendingReplan, PendingRetry};

pub use observe::IoObserver;

/// Runner tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Time charged to a process for each `open` (metadata round-trip).
    pub open_cost: SimDuration,
    /// Hard stop: panic if the simulation passes this horizon (guards
    /// against runaway configurations). `SimTime::MAX` disables it.
    pub horizon: SimTime,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            open_cost: SimDuration::from_micros(500),
            horizon: SimTime::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    ProcessWake(usize),
    ServerDone {
        tier: Tier,
        server: usize,
    },
    PlanStart(u64),
    BackgroundWake,
    /// Resubmit a sub-request after a retry backoff.
    Retry(u64),
    /// Re-plan an application request after a plan failure.
    Replan(u64),
    /// A sub-request's deadline budget lapsed. `attempt` pins the timer
    /// to one attempt generation: a retry re-arms a fresh deadline, and
    /// the stale timer for the failed attempt must not fire on it.
    Deadline {
        sub: SubReqId,
        attempt: u32,
    },
}

struct State<M: Middleware> {
    cluster: Cluster,
    middleware: M,
    procs: Vec<Proc>,
    config: RunnerConfig,
    plans: HashMap<u64, PlanExec>,
    next_plan: u64,
    subs: HashMap<SubReqId, SubMeta>,
    next_sub: u64,
    retries: HashMap<u64, PendingRetry>,
    next_retry: u64,
    replans: HashMap<u64, PendingReplan>,
    next_replan: u64,
    barrier_waiting: usize,
    finished: usize,
    background_armed: bool,
    drain_mode: bool,
    report: RunReport,
    observers: Vec<Box<dyn IoObserver>>,
}

/// Drives one simulated run to completion.
///
/// See the crate-level example. After [`Runner::run`], recover the pieces
/// with [`Runner::into_parts`] to inspect middleware state or reuse the
/// cluster for a second run (the paper's "second run" read experiments).
pub struct Runner<M: Middleware> {
    state: State<M>,
}

impl<M: Middleware> Runner<M> {
    /// Creates a runner over `scripts.len()` processes with default config.
    ///
    /// `seed` is reserved for future stochastic components of the runner
    /// itself; determinism currently comes from the cluster and scripts.
    pub fn new(
        cluster: Cluster,
        middleware: M,
        scripts: Vec<impl ProcessScript + 'static>,
        seed: u64,
    ) -> Self {
        let _ = seed;
        let procs = scripts
            .into_iter()
            .enumerate()
            .map(|(i, s)| Proc {
                rank: Rank(i as u32),
                script: Box::new(s) as Box<dyn ProcessScript>,
                handles: Vec::new(),
                cursors: Vec::new(),
                status: ProcStatus::Running,
            })
            .collect();
        Runner {
            state: State {
                cluster,
                middleware,
                procs,
                config: RunnerConfig::default(),
                plans: HashMap::new(),
                next_plan: 1,
                subs: HashMap::new(),
                next_sub: 0,
                retries: HashMap::new(),
                next_retry: 0,
                replans: HashMap::new(),
                next_replan: 0,
                barrier_waiting: 0,
                finished: 0,
                background_armed: false,
                drain_mode: false,
                report: RunReport::default(),
                observers: Vec::new(),
            },
        }
    }

    /// Replaces the default configuration.
    pub fn with_config(mut self, config: RunnerConfig) -> Self {
        self.state.config = config;
        self
    }

    /// Registers a tracing observer.
    pub fn add_observer(&mut self, obs: Box<dyn IoObserver>) {
        self.state.observers.push(obs);
    }

    /// Runs every process script to completion (plus in-flight background
    /// work) and returns the report.
    pub fn run(&mut self) -> RunReport {
        let mut engine: Engine<Event> = Engine::new();
        for i in 0..self.state.procs.len() {
            engine
                .queue_mut()
                .push(SimTime::ZERO, Event::ProcessWake(i));
        }
        engine
            .queue_mut()
            .push(SimTime::ZERO, Event::BackgroundWake);
        self.state.background_armed = true;
        self.state.drain_mode = false;
        let horizon = self.state.config.horizon;
        let end = engine.run_until(&mut self.state, horizon);
        assert!(
            engine.queue().is_empty(),
            "simulation hit the configured horizon with work pending"
        );
        self.state.report.end_time = end;
        self.state.report.events = engine.processed();
        self.state.report.durability = self.state.middleware.durability();
        self.state.report.gray.shed_admissions = self.state.middleware.shed_admissions();
        self.state.report.clone()
    }

    /// Runs only background (Rebuilder) work until the middleware reports
    /// none left. Used between a workload's first and second run.
    pub fn drain_background(&mut self, start: SimTime) -> SimTime {
        let mut engine: Engine<Event> = Engine::new();
        engine.queue_mut().push(start, Event::BackgroundWake);
        self.state.background_armed = true;
        self.state.drain_mode = true;
        let horizon = self.state.config.horizon;
        let end = engine.run_until(&mut self.state, horizon);
        self.state.drain_mode = false;
        end
    }

    /// Takes the runner apart: cluster, middleware, and the latest report.
    pub fn into_parts(self) -> (Cluster, M, RunReport) {
        (self.state.cluster, self.state.middleware, self.state.report)
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.state.report
    }

    /// The cluster (e.g. to pre-create files before running).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.state.cluster
    }

    /// The middleware (e.g. to inspect cache state after running).
    pub fn middleware(&self) -> &M {
        &self.state.middleware
    }
}

impl<M: Middleware> World<Event> for State<M> {
    fn handle(&mut self, now: SimTime, ev: Event, q: &mut EventQueue<Event>) {
        // Scripted crash effects become visible the moment time reaches
        // them, never later — direct store reads (Rebuilder copies) must
        // not observe destroyed data.
        self.cluster.advance_faults(now);
        match ev {
            Event::ProcessWake(i) => self.advance_process(now, i, q),
            Event::ServerDone { tier, server } => self.server_done(now, tier, server, q),
            Event::PlanStart(id) => {
                // A missing entry means the queue replayed a stale id;
                // there is nothing to start.
                if let Some(exec) = self.plans.remove(&id) {
                    self.start_plan(now, id, exec, q);
                }
            }
            Event::BackgroundWake => self.background_wake(now, q),
            Event::Retry(token) => self.fire_retry(now, token, q),
            Event::Replan(token) => self.fire_replan(now, token, q),
            Event::Deadline { sub, attempt } => self.fire_deadline(now, sub, attempt, q),
        }
    }
}

impl<M: Middleware> State<M> {
    /// Process state for an event- or owner-carried index. Indices are
    /// minted from `procs` at construction and the vector never shrinks.
    #[allow(clippy::expect_used)] // invariant documented above
    fn proc(&self, i: usize) -> &Proc {
        self.procs
            .get(i)
            // s4d-lint: allow(panic) — indices are minted from `procs` at construction and the vector never shrinks; a miss is event-queue corruption; panic-path witness: run → run_until → handle → advance_process → proc
            .expect("event names a constructed process")
    }

    /// Mutable variant of [`State::proc`].
    #[allow(clippy::expect_used)] // invariant documented above
    fn proc_mut(&mut self, i: usize) -> &mut Proc {
        self.procs
            .get_mut(i)
            // s4d-lint: allow(panic) — indices are minted from `procs` at construction and the vector never shrinks; a miss is event-queue corruption; panic-path witness: run → run_until → handle → advance_process → proc_mut
            .expect("event names a constructed process")
    }

    /// Launches a plan: charges its decision lead-in, then starts phase 0.
    fn launch_plan(
        &mut self,
        now: SimTime,
        plan: Plan,
        owner: PlanOwner,
        q: &mut EventQueue<Event>,
    ) {
        let plan_id = self.next_plan;
        self.next_plan += 1;
        let exec = PlanExec {
            plan,
            phase: 0,
            outstanding: 0,
            owner,
            failed: false,
        };
        if !exec.plan.lead_in.is_zero() {
            // Charge the middleware's decision time before any I/O starts.
            let starts_at = now + exec.plan.lead_in;
            self.plans.insert(plan_id, exec);
            q.push(starts_at, Event::PlanStart(plan_id));
            return;
        }
        self.start_plan(now, plan_id, exec, q);
    }
}
