//! Background polling and draining: the Rebuilder's wake loop.
//!
//! A single timer event drives all middleware background work. Normal
//! runs keep re-arming it while foreground processes can still create
//! new cache state; drain runs ([`super::Runner::drain_background`])
//! re-arm while the middleware itself reports work pending, so flushes,
//! fetches, and journal stragglers settle between a workload's first
//! and second run.

use s4d_sim::{EventQueue, SimTime};

use crate::middleware::Middleware;

use super::exec::PlanOwner;
use super::{Event, State};

impl<M: Middleware> State<M> {
    pub(super) fn background_wake(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        self.background_armed = false;
        let poll = self.middleware.poll_background(&mut self.cluster, now);
        for plan in poll.plans {
            self.launch_plan(now, plan, PlanOwner::Background, q);
        }
        if let Some(next) = poll.next_wake {
            // Normal runs re-arm while foreground work can still create new
            // cache state; draining re-arms while the middleware reports
            // pending background work.
            let rearm = if self.drain_mode {
                poll.work_pending
            } else {
                self.finished < self.procs.len()
            };
            if rearm {
                assert!(next > now, "background next_wake must move forward");
                q.push(next, Event::BackgroundWake);
                self.background_armed = true;
            }
        }
    }
}
