//! Deadline-budget enforcement: straggler detection, hedged replacement
//! ops, and abandonment.
//!
//! A plan carrying a [`Plan::deadline`](crate::Plan::deadline) budget
//! gets a timer per dispatched sub-request (armed in `submit_phase`,
//! re-armed per attempt in `fire_retry`). When a timer fires with its
//! sub-request still outstanding, the middleware is consulted
//! ([`Middleware::on_deadline`]) and the runner executes the verdict:
//!
//! * **Wait** — nothing happens; the straggler keeps its slot (correct
//!   when the straggler holds the only copy of dirty bytes).
//! * **Hedge** — cancel-and-replace: the straggler is abandoned and the
//!   replacement ops run under the same plan. A straggler genuinely in
//!   device service cannot be recalled; its late completion finds its
//!   metadata already removed and is discarded idempotently (the
//!   `subs.remove` lookup in `server_done`), so whichever path delivers
//!   first is the one the application observes. Re-planned/hedged writes
//!   are safe against late-landing originals because the durability
//!   protocol re-plans a write onto the *same* mapping with the same
//!   payload — a duplicate apply is byte-identical, never half-applied.
//! * **Abandon** — the straggler is abandoned and its plan fails; the
//!   runner re-plans the request once drained, with middleware health
//!   state that now routes around the straggling server.
//!
//! Escalation is bounded: a hedge op that itself misses its deadline is
//! abandoned outright (never re-hedged), and re-plans are capped by the
//! retry module's `MAX_REPLANS`.
//!
//! [`Middleware::on_deadline`]: crate::Middleware::on_deadline

use s4d_pfs::SubReqId;
use s4d_sim::{EventQueue, SimTime};

use crate::middleware::Middleware;
use crate::types::{HedgeDirective, PlannedIo, StragglerCtx};

use super::exec::{PlanOwner, SubMeta};
use super::{Event, State};

impl<M: Middleware> State<M> {
    /// A deadline timer fired: if its sub-request (same attempt) is still
    /// outstanding, record the miss and apply the middleware's verdict.
    pub(super) fn fire_deadline(
        &mut self,
        now: SimTime,
        sub: SubReqId,
        attempt: u32,
        q: &mut EventQueue<Event>,
    ) {
        let Some(meta) = self.subs.get(&sub) else {
            return; // completed (or already abandoned) within budget
        };
        if meta.attempts != attempt {
            return; // stale timer from a previous attempt generation
        }
        self.report.gray.deadline_misses += 1;
        let Some(meta) = self.subs.get(&sub) else {
            return; // unreachable: checked above
        };
        if meta.hedge {
            // A hedge that misses too is abandoned outright — the
            // escalation chain ends at original → hedge → re-plan.
            self.abandon_sub(now, sub, q);
            return;
        }
        let app_file = self.plans.get(&meta.plan_id).and_then(|e| match &e.owner {
            PlanOwner::Process { file, .. } => Some(*file),
            PlanOwner::Background => None,
        });
        let app_segments = match meta.app_offset {
            Some(app_off) => meta
                .segments
                .iter()
                .map(|&(o, l)| (app_off + (o - meta.op_offset), l))
                .collect(),
            None => Vec::new(),
        };
        let ctx = StragglerCtx {
            tier: meta.tier,
            server: meta.server,
            file: meta.file,
            kind: meta.kind,
            len: meta.len(),
            app_file,
            app_segments,
            attempts: meta.attempts,
        };
        match self.middleware.on_deadline(&mut self.cluster, now, &ctx) {
            HedgeDirective::Wait => {}
            HedgeDirective::Hedge { ops } => self.hedge_sub(now, sub, ops, q),
            HedgeDirective::Abandon => self.abandon_sub(now, sub, q),
        }
    }

    /// Cancel-and-replace: abandons the straggler and runs the hedged
    /// replacement ops under the same plan, inheriting the plan's
    /// deadline budget (marked as hedges so their own misses abandon).
    fn hedge_sub(
        &mut self,
        now: SimTime,
        sub: SubReqId,
        ops: Vec<PlannedIo>,
        q: &mut EventQueue<Event>,
    ) {
        if ops.is_empty() {
            return; // nothing to hedge with — equivalent to Wait
        }
        let Some(meta) = self.subs.remove(&sub) else {
            return; // raced with a completion delivered this instant
        };
        self.detach_straggler(now, &meta, sub, q);
        let plan_id = meta.plan_id;
        let Some(mut exec) = self.plans.remove(&plan_id) else {
            return; // an outstanding sub keeps its plan live
        };
        exec.outstanding -= 1;
        self.report.gray.hedges_issued += 1;
        let mut launched = 0;
        for op in &ops {
            if op.len == 0 {
                continue;
            }
            self.account_dispatch(now, &exec, op);
            launched += self.submit_planned_op(now, plan_id, op, meta.deadline, true, q);
        }
        exec.outstanding += launched;
        if exec.outstanding > 0 {
            self.plans.insert(plan_id, exec);
            return;
        }
        self.settle_drained_plan(now, plan_id, exec, q);
    }

    /// Abandons the straggler and fails its plan; once the plan drains,
    /// the owning request is re-planned around the straggling server.
    fn abandon_sub(&mut self, now: SimTime, sub: SubReqId, q: &mut EventQueue<Event>) {
        let Some(meta) = self.subs.remove(&sub) else {
            return; // raced with a completion delivered this instant
        };
        self.detach_straggler(now, &meta, sub, q);
        let plan_id = meta.plan_id;
        let Some(mut exec) = self.plans.remove(&plan_id) else {
            return; // an outstanding sub keeps its plan live
        };
        exec.failed = true;
        exec.outstanding -= 1;
        if exec.outstanding > 0 {
            self.plans.insert(plan_id, exec);
            return;
        }
        self.settle_drained_plan(now, plan_id, exec, q);
    }

    /// Closes the books on an abandoned straggler: balances the dispatch
    /// depth accounting and frees server-side state. A parked or queued
    /// op is physically removed; one genuinely in device service runs to
    /// its promised completion, which then finds its metadata gone and is
    /// discarded.
    fn detach_straggler(
        &mut self,
        now: SimTime,
        meta: &SubMeta,
        sub: SubReqId,
        q: &mut EventQueue<Event>,
    ) {
        self.middleware
            .on_io_abandoned(meta.tier, meta.server, meta.kind, meta.len());
        let Ok(srv) = self.cluster.pfs_mut(meta.tier).server_mut(meta.server) else {
            return; // the sub was dispatched to a server the tier has
        };
        let (freed, next) = srv.abandon(now, sub);
        if freed {
            self.report.gray.stall_abandons += 1;
        }
        if let Some(s) = next {
            q.push(
                s.completes_at,
                Event::ServerDone {
                    tier: meta.tier,
                    server: meta.server,
                },
            );
        }
    }
}
