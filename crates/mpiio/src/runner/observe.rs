//! Tracing hooks and per-dispatch report accounting.

use s4d_sim::SimTime;
use s4d_storage::IoKind;

use crate::middleware::Middleware;
use crate::types::{PlannedIo, Rank, Tier};

use super::exec::{PlanExec, PlanOwner};
use super::State;

/// Observation hooks for tracing tools.
///
/// All methods default to no-ops; implement the ones you need.
pub trait IoObserver {
    /// A planned application-data op was dispatched to a tier.
    fn on_dispatch(
        &mut self,
        _now: SimTime,
        _rank: Rank,
        _tier: Tier,
        _kind: IoKind,
        _app_offset: u64,
        _len: u64,
    ) {
    }

    /// An application request fully completed.
    fn on_request_complete(
        &mut self,
        _now: SimTime,
        _rank: Rank,
        _kind: IoKind,
        _offset: u64,
        _len: u64,
        _issued: SimTime,
    ) {
    }

    /// A completed application *read* with its assembled bytes (functional
    /// runs only; `None` in timing runs).
    fn on_read_data(&mut self, _rank: Rank, _offset: u64, _len: u64, _data: Option<&[u8]>) {}
}

impl<M: Middleware> State<M> {
    /// Books a dispatched op into the report (tier traffic, overhead, or
    /// background bytes) and fans it out to the observers.
    pub(super) fn account_dispatch(&mut self, now: SimTime, exec: &PlanExec, op: &PlannedIo) {
        match (&exec.owner, op.app_offset) {
            (PlanOwner::Process { index, kind, .. }, Some(app_off)) => {
                self.report.tiers.record(op.tier, op.len);
                let rank = self.proc(*index).rank;
                let kind = *kind;
                for obs in &mut self.observers {
                    obs.on_dispatch(now, rank, op.tier, kind, app_off, op.len);
                }
            }
            (PlanOwner::Process { .. }, None) => {
                self.report.overhead_bytes += op.len;
            }
            (PlanOwner::Background, _) => {
                self.report.background_bytes += op.len;
            }
        }
    }
}
