//! Script advancement and plan execution: process bookkeeping, phase
//! submission, sub-request decomposition, and completion assembly.

use s4d_pfs::{Priority, SubReqId, SubRequest};
use s4d_sim::{EventQueue, SimDuration, SimTime};
use s4d_storage::IoKind;

use crate::middleware::Middleware;
use crate::script::ProcessScript;
use crate::types::{
    AppOp, AppRequest, ErrorDirective, FileHandle, Plan, PlannedIo, Rank, SubIoFailure, Tier,
};

use super::{Event, State};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ProcStatus {
    Running,
    AtBarrier,
    Finished,
}

pub(super) struct Proc {
    pub(super) rank: Rank,
    pub(super) script: Box<dyn ProcessScript>,
    /// Open-file slots, MPI-style: close frees a slot, open reuses the
    /// lowest free slot (so a chained workload's `FileHandle(0)` always
    /// names its own current file).
    pub(super) handles: Vec<Option<s4d_pfs::FileId>>,
    /// Per-slot individual file pointers (`MPI_File_seek` state).
    pub(super) cursors: Vec<u64>,
    pub(super) status: ProcStatus,
}

/// Who a plan belongs to.
pub(super) enum PlanOwner {
    Process {
        index: usize,
        issued: SimTime,
        file: s4d_pfs::FileId,
        kind: IoKind,
        offset: u64,
        len: u64,
        read_buf: Option<Vec<u8>>,
        /// Original write payload, kept so a failed plan can be re-planned.
        data: Option<Vec<u8>>,
        /// How many times this request has been re-planned.
        replans: u32,
    },
    Background,
}

pub(super) struct PlanExec {
    pub(super) plan: Plan,
    pub(super) phase: usize,
    pub(super) outstanding: usize,
    pub(super) owner: PlanOwner,
    /// Set when a sub-request gave up: remaining phases are skipped and
    /// the plan fails instead of completing.
    pub(super) failed: bool,
}

pub(super) struct SubMeta {
    pub(super) plan_id: u64,
    /// Tier the sub-request was dispatched to.
    pub(super) tier: Tier,
    /// Server index within the tier.
    pub(super) server: usize,
    /// Tier-local file the sub-request targets.
    pub(super) file: s4d_pfs::FileId,
    /// Read or write.
    pub(super) kind: IoKind,
    /// Offset of the planned op within its file.
    pub(super) op_offset: u64,
    /// Application-file offset the op's bytes belong to, if data-carrying.
    pub(super) app_offset: Option<u64>,
    /// `(file_offset_within_op_file, len)` segments of this sub-request.
    pub(super) segments: Vec<(u64, u64)>,
    /// Service class (needed to rebuild the sub-request on retry).
    pub(super) priority: Priority,
    /// Attempts so far, including the in-flight one.
    pub(super) attempts: u32,
    /// When the current attempt was submitted (latency measurement).
    pub(super) submitted: SimTime,
    /// Deadline budget to re-arm on retries (`None`: never expires).
    pub(super) deadline: Option<SimDuration>,
    /// True for a hedged replacement op: its own deadline miss abandons
    /// outright instead of hedging again, bounding the escalation chain
    /// at original → hedge → abandon/re-plan.
    pub(super) hedge: bool,
}

impl SubMeta {
    /// Total bytes of this sub-request.
    pub(super) fn len(&self) -> u64 {
        self.segments.iter().map(|(_, l)| *l).sum()
    }
}

impl<M: Middleware> State<M> {
    /// Executes control ops until the process blocks on I/O, a barrier,
    /// think time, or finishes.
    pub(super) fn advance_process(&mut self, now: SimTime, i: usize, q: &mut EventQueue<Event>) {
        let mut now = now;
        loop {
            let op = match self.proc_mut(i).script.next_op() {
                Some(op) => op,
                None => {
                    if self.proc(i).status != ProcStatus::Finished {
                        self.proc_mut(i).status = ProcStatus::Finished;
                        self.finished += 1;
                        self.maybe_release_barrier(now, q);
                    }
                    return;
                }
            };
            match op {
                AppOp::Open { name } => {
                    let rank = self.proc(i).rank;
                    let file = self
                        .middleware
                        .open(&mut self.cluster, rank, &name)
                        // s4d-lint: allow(panic) — malformed workload script or broken middleware: fail fast with rank context rather than simulate nonsense; panic-path witness: run → run_until → handle → advance_process
                        .unwrap_or_else(|e| panic!("{rank} failed to open {name:?}: {e}"));
                    let proc = self.proc_mut(i);
                    match proc.handles.iter().position(|h| h.is_none()) {
                        Some(slot) => {
                            if let Some(h) = proc.handles.get_mut(slot) {
                                *h = Some(file);
                            }
                            if let Some(c) = proc.cursors.get_mut(slot) {
                                *c = 0;
                            }
                        }
                        None => {
                            proc.handles.push(Some(file));
                            proc.cursors.push(0);
                        }
                    }
                    now += self.config.open_cost;
                }
                AppOp::Close { handle } => {
                    let rank = self.proc(i).rank;
                    let file = self
                        .proc_mut(i)
                        .handles
                        .get_mut(handle.0)
                        .and_then(Option::take)
                        // s4d-lint: allow(panic) — malformed workload script: fail fast with rank context rather than simulate nonsense; panic-path witness: run → run_until → handle → advance_process
                        .unwrap_or_else(|| panic!("{rank} closed unopened handle {}", handle.0));
                    self.middleware
                        .close(&mut self.cluster, rank, file)
                        // s4d-lint: allow(panic) — malformed workload script or broken middleware: fail fast with rank context rather than simulate nonsense; panic-path witness: run → run_until → handle → advance_process
                        .unwrap_or_else(|e| panic!("{rank} failed to close: {e}"));
                }
                AppOp::Think { duration } => {
                    q.push(now + duration, Event::ProcessWake(i));
                    return;
                }
                AppOp::Barrier => {
                    self.proc_mut(i).status = ProcStatus::AtBarrier;
                    self.barrier_waiting += 1;
                    self.maybe_release_barrier(now, q);
                    return;
                }
                AppOp::Seek { handle, offset } => {
                    let proc = self.proc_mut(i);
                    let rank = proc.rank;
                    let open = proc.handles.get(handle.0).copied().flatten().is_some();
                    match proc.cursors.get_mut(handle.0) {
                        Some(cursor) if open => *cursor = offset,
                        // s4d-lint: allow(panic) — malformed workload script: fail fast with rank context rather than simulate nonsense; panic-path witness: run → run_until → handle → advance_process
                        _ => panic!("{rank} seeked unopened handle {}", handle.0),
                    }
                }
                AppOp::IoAtCursor {
                    handle,
                    kind,
                    len,
                    data,
                } => {
                    let proc = self.proc_mut(i);
                    let rank = proc.rank;
                    let Some(cursor) = proc.cursors.get_mut(handle.0) else {
                        // s4d-lint: allow(panic) — malformed workload script: fail fast with rank context rather than simulate nonsense; panic-path witness: run → run_until → handle → advance_process
                        panic!("{rank} used unopened handle {}", handle.0)
                    };
                    let offset = *cursor;
                    *cursor = offset + len;
                    self.dispatch_io(now, i, handle, kind, offset, len, data, q);
                    return;
                }
                AppOp::Io {
                    handle,
                    kind,
                    offset,
                    len,
                    data,
                } => {
                    self.dispatch_io(now, i, handle, kind, offset, len, data, q);
                    return;
                }
            }
        }
    }

    /// Resolves a handle and launches the middleware plan for one I/O.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_io(
        &mut self,
        now: SimTime,
        i: usize,
        handle: FileHandle,
        kind: IoKind,
        offset: u64,
        len: u64,
        data: Option<Vec<u8>>,
        q: &mut EventQueue<Event>,
    ) {
        let rank = self.proc(i).rank;
        let file = self
            .proc(i)
            .handles
            .get(handle.0)
            .copied()
            .flatten()
            // s4d-lint: allow(panic) — malformed workload script: fail fast with rank context rather than simulate nonsense; panic-path witness: run → run_until → handle → advance_process → dispatch_io
            .unwrap_or_else(|| panic!("{rank} used unopened handle {}", handle.0));
        let req = AppRequest {
            rank,
            file,
            kind,
            offset,
            len,
            data,
        };
        let plan = self.middleware.plan_io(&mut self.cluster, now, &req);
        // Move the payload out of the request (plan_io only borrowed it)
        // instead of cloning the write buffer on the hot path.
        let data = req.data;
        let owner = PlanOwner::Process {
            index: i,
            issued: now,
            file,
            kind,
            offset,
            len,
            read_buf: None,
            data,
            replans: 0,
        };
        self.launch_plan(now, plan, owner, q);
    }

    pub(super) fn maybe_release_barrier(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        if self.barrier_waiting > 0 && self.barrier_waiting + self.finished == self.procs.len() {
            self.barrier_waiting = 0;
            for (j, p) in self.procs.iter_mut().enumerate() {
                if p.status == ProcStatus::AtBarrier {
                    p.status = ProcStatus::Running;
                    q.push(now, Event::ProcessWake(j));
                }
            }
        }
    }

    pub(super) fn start_plan(
        &mut self,
        now: SimTime,
        plan_id: u64,
        mut exec: PlanExec,
        q: &mut EventQueue<Event>,
    ) {
        let launched = self.submit_phase(now, plan_id, &mut exec, q);
        exec.outstanding = launched;
        if launched == 0 {
            // Empty plan (or zero-length ops only): completes instantly.
            self.complete_plan(now, exec, q);
        } else {
            self.plans.insert(plan_id, exec);
        }
    }

    /// Submits every op of the current phase; returns how many sub-requests
    /// were created. Empty phases are skipped (advancing `exec.phase`).
    fn submit_phase(
        &mut self,
        now: SimTime,
        plan_id: u64,
        exec: &mut PlanExec,
        q: &mut EventQueue<Event>,
    ) -> usize {
        while exec.phase < exec.plan.phases.len() {
            let phase_idx = exec.phase;
            let mut created = 0;
            let Some(ops) = exec.plan.phases.get(phase_idx).cloned() else {
                break; // unreachable: the loop guard bounds phase_idx
            };
            let deadline = exec.plan.deadline;
            for op in &ops {
                if op.len == 0 {
                    continue;
                }
                self.account_dispatch(now, exec, op);
                created += self.submit_planned_op(now, plan_id, op, deadline, false, q);
            }
            if created > 0 {
                return created;
            }
            exec.phase += 1;
        }
        0
    }

    /// Decomposes one planned op into per-server sub-requests, registers
    /// their metadata, and submits them; returns how many sub-requests
    /// were created. `deadline` arms a per-sub-request timer; `hedge`
    /// marks replacement ops issued for an abandoned straggler.
    pub(super) fn submit_planned_op(
        &mut self,
        now: SimTime,
        plan_id: u64,
        op: &PlannedIo,
        deadline: Option<SimDuration>,
        hedge: bool,
        q: &mut EventQueue<Event>,
    ) -> usize {
        let mut created = 0;
        let subranges = self
            .cluster
            .pfs_mut(op.tier)
            .plan(op.file, op.kind, op.offset, op.len)
            // s4d-lint: allow(panic) — a plan the middleware just produced names unknown files only if the middleware is broken; fail fast with the op; panic-path witness: run → run_until → handle → server_done → submit_phase → submit_planned_op
            .unwrap_or_else(|e| panic!("planning {op:?}: {e}"));
        let layout = self.cluster.pfs(op.tier).layout();
        for sub in subranges {
            let id = SubReqId(self.next_sub);
            self.next_sub += 1;
            let segments = layout.file_segments(&sub);
            let data = op.data.as_ref().map(|full| {
                let mut buf = Vec::with_capacity(sub.len as usize);
                for (seg_off, seg_len) in &segments {
                    let at = (seg_off - op.offset) as usize;
                    if let Some(seg) = full.get(at..at + *seg_len as usize) {
                        buf.extend_from_slice(seg);
                    }
                }
                buf
            });
            self.subs.insert(
                id,
                SubMeta {
                    plan_id,
                    tier: op.tier,
                    server: sub.server,
                    file: op.file,
                    kind: op.kind,
                    op_offset: op.offset,
                    app_offset: op.app_offset,
                    segments,
                    priority: op.priority,
                    attempts: 1,
                    submitted: now,
                    deadline,
                    hedge,
                },
            );
            let sr = SubRequest {
                id,
                file: op.file,
                kind: op.kind,
                local_offset: sub.local_offset,
                len: sub.len,
                priority: op.priority,
                data,
            };
            let tier = op.tier;
            let server_idx = sub.server;
            let sub_len = sub.len;
            let Ok(server) = self.cluster.pfs_mut(tier).server_mut(server_idx) else {
                self.subs.remove(&id);
                continue; // the layout only names servers in range
            };
            let started = server.submit(now, sr);
            self.middleware
                .on_io_dispatched(tier, server_idx, op.kind, sub_len);
            if let Some(s) = started {
                q.push(
                    s.completes_at,
                    Event::ServerDone {
                        tier,
                        server: server_idx,
                    },
                );
            }
            if let Some(budget) = deadline {
                q.push(
                    now + budget,
                    Event::Deadline {
                        sub: id,
                        attempt: 1,
                    },
                );
            }
            created += 1;
        }
        created
    }

    pub(super) fn server_done(
        &mut self,
        now: SimTime,
        tier: Tier,
        server: usize,
        q: &mut EventQueue<Event>,
    ) {
        let Ok(srv) = self.cluster.pfs_mut(tier).server_mut(server) else {
            return; // ServerDone events only name servers the PFS has
        };
        let (completed, next) = srv.on_complete(now);
        if let Some(s) = next {
            q.push(s.completes_at, Event::ServerDone { tier, server });
        }
        let Some(meta) = self.subs.remove(&completed.id) else {
            return; // every submitted sub-request is registered first
        };
        let plan_id = meta.plan_id;
        let Some(mut exec) = self.plans.remove(&plan_id) else {
            return; // a sub-request's plan stays live until it drains
        };
        if let Some(error) = completed.error {
            self.report.degraded.io_errors += 1;
            let overhead =
                matches!(exec.owner, PlanOwner::Process { .. }) && meta.app_offset.is_none();
            let failure = SubIoFailure {
                tier,
                server,
                kind: completed.kind,
                len: completed.len,
                error,
                attempts: meta.attempts,
                overhead,
            };
            match self
                .middleware
                .on_io_error(&mut self.cluster, now, &failure)
            {
                ErrorDirective::Retry { delay } => {
                    let mut meta = meta;
                    meta.attempts += 1;
                    // A failed write hands its payload back in `data`.
                    let req = SubRequest {
                        id: completed.id,
                        file: completed.file,
                        kind: completed.kind,
                        local_offset: completed.local_offset,
                        len: completed.len,
                        priority: meta.priority,
                        data: completed.data,
                    };
                    self.schedule_retry(now, delay, tier, server, req, meta, q);
                    // The sub-request stays outstanding on its plan.
                    self.plans.insert(plan_id, exec);
                    return;
                }
                ErrorDirective::GiveUp => {
                    if overhead {
                        // A lost metadata write-behind doesn't fail the
                        // application request: recovery treats the missing
                        // records as a torn journal tail.
                        self.report.degraded.overhead_failures += 1;
                    } else {
                        exec.failed = true;
                    }
                }
            }
        } else {
            if meta.hedge {
                self.report.gray.hedges_won += 1;
            }
            self.middleware.on_io_complete(
                tier,
                server,
                completed.kind,
                completed.len,
                now - meta.submitted,
            );
            // Scatter functional read bytes into the owner's buffer.
            if let (Some(data), Some(app_off)) = (&completed.data, meta.app_offset) {
                if let PlanOwner::Process {
                    offset,
                    len,
                    read_buf,
                    ..
                } = &mut exec.owner
                {
                    let buf = read_buf.get_or_insert_with(|| vec![0u8; *len as usize]);
                    let mut cursor = 0usize;
                    for (seg_off, seg_len) in &meta.segments {
                        let app_pos = app_off + (seg_off - meta.op_offset);
                        let at = (app_pos - *offset) as usize;
                        let n = *seg_len as usize;
                        if let (Some(dst), Some(src)) =
                            (buf.get_mut(at..at + n), data.get(cursor..cursor + n))
                        {
                            dst.copy_from_slice(src);
                        }
                        cursor += n;
                    }
                }
            }
        }
        exec.outstanding -= 1;
        if exec.outstanding > 0 {
            self.plans.insert(plan_id, exec);
            return;
        }
        self.settle_drained_plan(now, plan_id, exec, q);
    }

    /// A plan's current phase has fully drained: fail it, advance to the
    /// next phase, or complete it.
    pub(super) fn settle_drained_plan(
        &mut self,
        now: SimTime,
        plan_id: u64,
        mut exec: PlanExec,
        q: &mut EventQueue<Event>,
    ) {
        if exec.failed {
            self.fail_plan(now, exec, q);
            return;
        }
        exec.phase += 1;
        let launched = self.submit_phase(now, plan_id, &mut exec, q);
        if launched > 0 {
            exec.outstanding = launched;
            self.plans.insert(plan_id, exec);
        } else {
            self.complete_plan(now, exec, q);
        }
    }

    pub(super) fn complete_plan(
        &mut self,
        now: SimTime,
        exec: PlanExec,
        q: &mut EventQueue<Event>,
    ) {
        if exec.plan.tag != 0 {
            self.middleware
                .on_plan_complete(&mut self.cluster, now, exec.plan.tag);
        }
        self.finish_plan_owner(now, exec.owner, q);
    }

    pub(super) fn finish_plan_owner(
        &mut self,
        now: SimTime,
        owner: PlanOwner,
        q: &mut EventQueue<Event>,
    ) {
        match owner {
            PlanOwner::Process {
                index,
                issued,
                kind,
                offset,
                len,
                read_buf,
                ..
            } => {
                self.report.kind_mut(kind).record(issued, now, len);
                let rank = self.proc(index).rank;
                for obs in &mut self.observers {
                    obs.on_request_complete(now, rank, kind, offset, len, issued);
                    if kind == IoKind::Read {
                        obs.on_read_data(rank, offset, len, read_buf.as_deref());
                    }
                }
                q.push(now, Event::ProcessWake(index));
            }
            PlanOwner::Background => {
                self.report.background_plans += 1;
            }
        }
    }
}
