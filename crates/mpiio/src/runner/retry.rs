//! Sub-request retry and application-request re-plan machinery.
//!
//! Two recovery levels with different scopes: a *retry* resubmits one
//! failed sub-request to the same server after a middleware-chosen
//! backoff; a *re-plan* throws the whole plan away and asks the
//! middleware for a fresh one once its state reflects the failure
//! (quarantine, invalidated mappings), so the new plan routes around it.

use s4d_pfs::SubRequest;
use s4d_sim::{EventQueue, SimDuration, SimTime};

use crate::middleware::Middleware;
use crate::types::{AppRequest, Tier};

use super::exec::{PlanExec, PlanOwner, SubMeta};
use super::{Event, State};

/// Hard cap on re-planning one application request after plan failures —
/// far above what converging fault scenarios need; hitting it means the
/// middleware can neither serve nor route around a permanently failed
/// resource.
const MAX_REPLANS: u32 = 1000;

/// Backoff before re-planning a failed request: grows with the attempt
/// so a quarantined server's recovery window can pass.
fn replan_delay(replans: u32) -> SimDuration {
    let exp = replans.min(7);
    SimDuration::from_millis(8 << exp).min(SimDuration::from_secs(1))
}

/// A failed sub-request waiting out its retry backoff.
pub(super) struct PendingRetry {
    tier: Tier,
    server: usize,
    req: SubRequest,
    meta: SubMeta,
}

/// A failed application request waiting to be re-planned.
pub(super) struct PendingReplan {
    index: usize,
    issued: SimTime,
    file: s4d_pfs::FileId,
    kind: s4d_storage::IoKind,
    offset: u64,
    len: u64,
    data: Option<Vec<u8>>,
    replans: u32,
}

impl<M: Middleware> State<M> {
    /// Parks a failed sub-request until its backoff elapses.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn schedule_retry(
        &mut self,
        now: SimTime,
        delay: SimDuration,
        tier: Tier,
        server: usize,
        req: SubRequest,
        meta: SubMeta,
        q: &mut EventQueue<Event>,
    ) {
        self.report.degraded.retries += 1;
        let token = self.next_retry;
        self.next_retry += 1;
        self.retries.insert(
            token,
            PendingRetry {
                tier,
                server,
                req,
                meta,
            },
        );
        q.push(now + delay, Event::Retry(token));
    }

    /// Resubmits a retried sub-request after its backoff.
    pub(super) fn fire_retry(&mut self, now: SimTime, token: u64, q: &mut EventQueue<Event>) {
        let Some(PendingRetry {
            tier,
            server,
            req,
            mut meta,
        }) = self.retries.remove(&token)
        else {
            return; // Retry tokens are minted once per pending retry
        };
        meta.submitted = now;
        let id = req.id;
        let kind = req.kind;
        let len = req.len;
        let Ok(srv) = self.cluster.pfs_mut(tier).server_mut(server) else {
            return; // the retried server was valid when the retry was queued
        };
        let started = srv.submit(now, req);
        self.middleware.on_io_dispatched(tier, server, kind, len);
        // Each attempt gets a fresh deadline; the generation check in
        // `fire_deadline` keeps the previous attempt's timer from firing
        // on this one.
        if let Some(budget) = meta.deadline {
            q.push(
                now + budget,
                Event::Deadline {
                    sub: id,
                    attempt: meta.attempts,
                },
            );
        }
        self.subs.insert(id, meta);
        if let Some(s) = started {
            q.push(s.completes_at, Event::ServerDone { tier, server });
        }
    }

    /// A plan failed: notify the middleware, then schedule a re-plan of
    /// the owning application request (background plans are just dropped
    /// and rebuilt by a later poll).
    pub(super) fn fail_plan(&mut self, now: SimTime, exec: PlanExec, q: &mut EventQueue<Event>) {
        if exec.plan.tag != 0 {
            self.middleware
                .on_plan_failed(&mut self.cluster, now, exec.plan.tag);
        }
        match exec.owner {
            PlanOwner::Process {
                index,
                issued,
                file,
                kind,
                offset,
                len,
                data,
                replans,
                ..
            } => {
                assert!(
                    replans < MAX_REPLANS,
                    "request (offset {offset}, len {len}) re-planned {MAX_REPLANS} times \
                     without succeeding — the middleware cannot route around the failure"
                );
                self.report.degraded.replans += 1;
                let token = self.next_replan;
                self.next_replan += 1;
                self.replans.insert(
                    token,
                    PendingReplan {
                        index,
                        issued,
                        file,
                        kind,
                        offset,
                        len,
                        data,
                        replans: replans + 1,
                    },
                );
                q.push(now + replan_delay(replans), Event::Replan(token));
            }
            PlanOwner::Background => {
                self.report.degraded.failed_background_plans += 1;
            }
        }
    }

    /// Re-plans a failed application request from scratch: the middleware's
    /// state now reflects the failure (quarantine, invalidated mappings),
    /// so the new plan routes around it.
    pub(super) fn fire_replan(&mut self, now: SimTime, token: u64, q: &mut EventQueue<Event>) {
        let Some(e) = self.replans.remove(&token) else {
            return; // Replan tokens are minted once per pending replan
        };
        let rank = self.proc(e.index).rank;
        let req = AppRequest {
            rank,
            file: e.file,
            kind: e.kind,
            offset: e.offset,
            len: e.len,
            data: e.data.clone(),
        };
        let plan = self.middleware.plan_io(&mut self.cluster, now, &req);
        let owner = PlanOwner::Process {
            index: e.index,
            issued: e.issued,
            file: e.file,
            kind: e.kind,
            offset: e.offset,
            len: e.len,
            read_buf: None,
            data: e.data,
            replans: e.replans,
        };
        self.launch_plan(now, plan, owner, q);
    }
}
