//! The middleware plug-in interface and the stock (baseline) middleware.

use std::collections::HashMap;

use s4d_pfs::FileId;
use s4d_sim::SimTime;
use s4d_storage::IoKind;

use crate::cluster::Cluster;
use crate::report::DurabilityCounts;
use crate::types::{
    AppRequest, ErrorDirective, HedgeDirective, MiddlewareError, Plan, PlannedIo, Rank,
    StragglerCtx, SubIoFailure, Tier,
};

/// Work returned by [`Middleware::poll_background`].
#[derive(Debug, Default)]
pub struct BackgroundPoll {
    /// Plans to execute as background activity (not tied to a process).
    pub plans: Vec<Plan>,
    /// When to poll again; `None` stops background polling.
    pub next_wake: Option<SimTime>,
    /// True while flushable/fetchable work remains or completions are in
    /// flight — drives [`crate::Runner::drain_background`] termination.
    pub work_pending: bool,
}

/// The seam where S4D-Cache plugs into MPI-IO.
///
/// The paper modifies `MPI_File_open`, `MPI_File_read`, `MPI_File_write`,
/// `MPI_File_close` (§IV.B); this trait mirrors those interception points:
///
/// * [`open`](Middleware::open) / [`close`](Middleware::close) — file
///   lifecycle (S4D-Cache opens/closes the companion cache file here);
/// * [`plan_io`](Middleware::plan_io) — for each application read/write,
///   decide where the bytes physically go and return the execution plan;
/// * [`poll_background`](Middleware::poll_background) — the Rebuilder's
///   periodic trigger (the paper's background I/O helper thread);
/// * [`on_plan_complete`](Middleware::on_plan_complete) — invoked when a
///   tagged plan finishes, for metadata state transitions (mark flushed
///   data clean, mark fetched data cached).
pub trait Middleware {
    /// Resolves (creating if necessary) `name` for `rank`, returning the
    /// id of the file in the *original* file system.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError`] if the underlying file system refuses.
    fn open(
        &mut self,
        cluster: &mut Cluster,
        rank: Rank,
        name: &str,
    ) -> Result<FileId, MiddlewareError>;

    /// Plans the physical I/O for one application request.
    fn plan_io(&mut self, cluster: &mut Cluster, now: SimTime, req: &AppRequest) -> Plan;

    /// Closes a file for `rank`.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError`] on invalid handles.
    fn close(
        &mut self,
        cluster: &mut Cluster,
        rank: Rank,
        file: FileId,
    ) -> Result<(), MiddlewareError>;

    /// Called when a plan with a non-zero tag has fully completed.
    fn on_plan_complete(&mut self, _cluster: &mut Cluster, _now: SimTime, _tag: u64) {}

    /// Called when a sub-request fails with an I/O fault; decides whether
    /// the runner retries it. The default gives up immediately (failing
    /// the plan) — a health-aware middleware retries transient errors and
    /// quarantines repeatedly-failing servers here.
    fn on_io_error(
        &mut self,
        _cluster: &mut Cluster,
        _now: SimTime,
        _failure: &SubIoFailure,
    ) -> ErrorDirective {
        ErrorDirective::GiveUp
    }

    /// Called for every successfully completed sub-request with its
    /// submit-to-completion latency — the health monitor's signal for
    /// detecting degraded (slow) servers. Default: ignored.
    fn on_io_complete(
        &mut self,
        _tier: Tier,
        _server: usize,
        _kind: IoKind,
        _len: u64,
        _latency: s4d_sim::SimDuration,
    ) {
    }

    /// Called for every sub-request the runner submits to a server
    /// (including retries) — the health monitor's outstanding-op depth
    /// signal. Balanced by exactly one of
    /// [`on_io_complete`](Middleware::on_io_complete),
    /// [`on_io_error`](Middleware::on_io_error), or
    /// [`on_io_abandoned`](Middleware::on_io_abandoned). Default: ignored.
    fn on_io_dispatched(&mut self, _tier: Tier, _server: usize, _kind: IoKind, _len: u64) {}

    /// Called when the runner abandons an outstanding sub-request (after
    /// a [`HedgeDirective::Hedge`] or [`HedgeDirective::Abandon`]); the
    /// depth accounting opened by
    /// [`on_io_dispatched`](Middleware::on_io_dispatched) must close here
    /// because neither a completion nor an error will be delivered.
    /// Default: ignored.
    fn on_io_abandoned(&mut self, _tier: Tier, _server: usize, _kind: IoKind, _len: u64) {}

    /// Called when a dispatched sub-request outlives its plan's deadline
    /// budget without completing. The verdict decides whether the runner
    /// keeps waiting, issues hedged replacement ops, or abandons the
    /// straggler and re-plans. The default waits forever (deadline-blind
    /// middleware behaves exactly as before this hook existed).
    fn on_deadline(
        &mut self,
        _cluster: &mut Cluster,
        _now: SimTime,
        _ctx: &StragglerCtx,
    ) -> HedgeDirective {
        HedgeDirective::Wait
    }

    /// Admissions the middleware declined under backpressure (shed to
    /// OPFS because the cache tier was slow or overloaded), for the final
    /// report. Default: 0.
    fn shed_admissions(&self) -> u64 {
        0
    }

    /// Called when a tagged plan *fails* (a sub-request gave up) instead
    /// of completing: release any state held for `tag`. The runner then
    /// re-plans process requests and drops background plans.
    fn on_plan_failed(&mut self, _cluster: &mut Cluster, _now: SimTime, _tag: u64) {}

    /// Background (Rebuilder) trigger. The default implementation has no
    /// background activity.
    fn poll_background(&mut self, _cluster: &mut Cluster, _now: SimTime) -> BackgroundPoll {
        BackgroundPoll::default()
    }

    /// Journal/checkpoint durability counters, when the middleware keeps
    /// a persistent journal. The runner copies the final values into
    /// [`crate::RunReport::durability`]. Default: `None` (no journal).
    fn durability(&self) -> Option<DurabilityCounts> {
        None
    }

    /// A short name for reports ("stock", "s4d").
    fn name(&self) -> &str;
}

/// The baseline: unmodified MPI-IO over the original file system. Every
/// request goes to the DServers untouched; the CServers sit idle.
#[derive(Debug, Default)]
pub struct StockMiddleware {
    open_counts: HashMap<FileId, usize>,
}

impl StockMiddleware {
    /// Creates the baseline middleware.
    pub fn new() -> Self {
        StockMiddleware::default()
    }
}

impl Middleware for StockMiddleware {
    fn open(
        &mut self,
        cluster: &mut Cluster,
        _rank: Rank,
        name: &str,
    ) -> Result<FileId, MiddlewareError> {
        let id = cluster.opfs_mut().create_or_open(name);
        *self.open_counts.entry(id).or_insert(0) += 1;
        Ok(id)
    }

    fn plan_io(&mut self, _cluster: &mut Cluster, _now: SimTime, req: &AppRequest) -> Plan {
        let mut op = PlannedIo::data_op(
            Tier::DServers,
            req.file,
            req.kind,
            req.offset,
            req.len,
            req.offset,
        );
        if req.kind == IoKind::Write {
            op.data = req.data.clone();
        }
        Plan::single_phase(vec![op])
    }

    fn close(
        &mut self,
        _cluster: &mut Cluster,
        _rank: Rank,
        file: FileId,
    ) -> Result<(), MiddlewareError> {
        if let Some(n) = self.open_counts.get_mut(&file) {
            *n = n.saturating_sub(1);
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "stock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_passes_straight_through() {
        let mut cluster = Cluster::paper_testbed_small(1);
        let mut mw = StockMiddleware::new();
        let f = mw.open(&mut cluster, Rank(0), "a.dat").unwrap();
        let req = AppRequest {
            rank: Rank(0),
            file: f,
            kind: IoKind::Write,
            offset: 4096,
            len: 8192,
            data: None,
        };
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &req);
        assert_eq!(plan.phases.len(), 1);
        assert_eq!(plan.phases[0].len(), 1);
        let op = &plan.phases[0][0];
        assert_eq!(op.tier, Tier::DServers);
        assert_eq!(op.offset, 4096);
        assert_eq!(op.len, 8192);
        assert_eq!(op.app_offset, Some(4096));
        assert_eq!(plan.tag, 0);
        mw.close(&mut cluster, Rank(0), f).unwrap();
        assert_eq!(mw.name(), "stock");
    }

    #[test]
    fn stock_open_is_idempotent_per_name() {
        let mut cluster = Cluster::paper_testbed_small(1);
        let mut mw = StockMiddleware::new();
        let a = mw.open(&mut cluster, Rank(0), "same").unwrap();
        let b = mw.open(&mut cluster, Rank(1), "same").unwrap();
        assert_eq!(a, b, "all ranks share one file");
    }

    #[test]
    fn default_background_poll_is_inert() {
        let mut cluster = Cluster::paper_testbed_small(1);
        let mut mw = StockMiddleware::new();
        let poll = mw.poll_background(&mut cluster, SimTime::ZERO);
        assert!(poll.plans.is_empty());
        assert!(poll.next_wake.is_none());
    }
}
