//! Run metrics and the final report.

use s4d_sim::stats::{BandwidthMeter, LatencyHistogram};
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;

use crate::types::Tier;

/// Per-tier request/byte counters for application-visible traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounts {
    /// Application I/Os (or fragments thereof) dispatched to DServers.
    pub d_ops: u64,
    /// Bytes dispatched to DServers.
    pub d_bytes: u64,
    /// Application I/Os (or fragments thereof) dispatched to CServers.
    pub c_ops: u64,
    /// Bytes dispatched to CServers.
    pub c_bytes: u64,
}

impl TierCounts {
    /// Records one dispatched op.
    pub fn record(&mut self, tier: Tier, bytes: u64) {
        match tier {
            Tier::DServers => {
                self.d_ops += 1;
                self.d_bytes += bytes;
            }
            Tier::CServers => {
                self.c_ops += 1;
                self.c_bytes += bytes;
            }
        }
    }

    /// Percentage of ops that went to CServers (the paper's Table III),
    /// or 0 when nothing was dispatched.
    pub fn cserver_op_share(&self) -> f64 {
        let total = self.d_ops + self.c_ops;
        if total == 0 {
            0.0
        } else {
            self.c_ops as f64 * 100.0 / total as f64
        }
    }
}

/// Per-direction (read/write) application-level metrics.
#[derive(Debug, Clone, Default)]
pub struct KindReport {
    /// Bytes and op counts.
    pub meter: BandwidthMeter,
    /// Per-request latency distribution.
    pub latency: LatencyHistogram,
    /// Time of the first request issue, if any.
    pub first_issue: Option<SimTime>,
    /// Time of the last request completion, if any.
    pub last_completion: Option<SimTime>,
}

impl KindReport {
    /// Records one completed application request.
    pub fn record(&mut self, issued: SimTime, completed: SimTime, bytes: u64) {
        self.meter.add(bytes);
        self.latency.record(completed - issued);
        self.first_issue = Some(match self.first_issue {
            Some(t) => t.min(issued),
            None => issued,
        });
        self.last_completion = Some(match self.last_completion {
            Some(t) => t.max(completed),
            None => completed,
        });
    }

    /// The active span from first issue to last completion.
    pub fn span(&self) -> SimDuration {
        match (self.first_issue, self.last_completion) {
            (Some(a), Some(b)) => b - a,
            _ => SimDuration::ZERO,
        }
    }

    /// Aggregate application throughput over the active span, MiB/s.
    pub fn throughput_mibs(&self) -> f64 {
        self.meter.mib_per_sec(self.span())
    }
}

/// Degraded-mode counters observed by the runner (server faults and the
/// recovery machinery they triggered). All zero on a healthy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedCounts {
    /// Sub-requests that completed with an I/O fault (every attempt
    /// counts, so this is ≥ the number of distinct failing operations).
    pub io_errors: u64,
    /// Sub-request retries granted by the middleware.
    pub retries: u64,
    /// Process requests re-planned after a plan failure. Re-dispatched
    /// ops are counted again in [`TierCounts`].
    pub replans: u64,
    /// Background (Rebuilder) plans dropped because a sub-request gave
    /// up; the middleware rebuilds the work on a later poll.
    pub failed_background_plans: u64,
    /// Overhead (journal) write failures that were tolerated without
    /// failing their plan — recovery treats the lost records as a torn
    /// journal tail.
    pub overhead_failures: u64,
}

/// Gray-failure (fail-slow) counters: deadline misses and what the
/// hedging/backpressure machinery did about them. All zero on a healthy
/// run or when the middleware sets no deadlines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrayFailureCounts {
    /// Sub-requests still outstanding when their deadline budget lapsed
    /// (each fired deadline timer counts once).
    pub deadline_misses: u64,
    /// Stragglers replaced by hedged ops against the other tier.
    pub hedges_issued: u64,
    /// Hedged ops that completed successfully (delivered the bytes the
    /// straggler never did).
    pub hedges_won: u64,
    /// Straggling sub-requests physically removed from a server (freed
    /// from a stall park or pulled out of the queue).
    pub stall_abandons: u64,
    /// Admissions the middleware shed under backpressure (copied from
    /// `Middleware::shed_admissions` when the run ends).
    pub shed_admissions: u64,
}

/// Journal/checkpoint durability counters reported by a middleware that
/// persists its metadata (see `Middleware::durability`). All zero for
/// middlewares without a journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityCounts {
    /// Journal writes issued (planned group commits and synchronous
    /// appends).
    pub journal_writes: u64,
    /// Journal bytes written.
    pub journal_bytes: u64,
    /// Checkpoint snapshots installed.
    pub checkpoints: u64,
    /// Bytes of checkpoint snapshots written.
    pub checkpoint_bytes: u64,
    /// Journal records compacted away by checkpointing.
    pub records_compacted: u64,
    /// Records the middleware replayed when it was built by crash
    /// recovery (zero for a fresh instance).
    pub recovery_records_replayed: u64,
    /// Journal bytes recovery dropped as a torn/corrupt suffix.
    pub recovery_dropped_bytes: u64,
}

/// The result of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Write-side application metrics.
    pub writes: KindReport,
    /// Read-side application metrics.
    pub reads: KindReport,
    /// Where application traffic was dispatched (Table III's measurement).
    pub tiers: TierCounts,
    /// Bytes moved by background (Rebuilder) plans.
    pub background_bytes: u64,
    /// Background plans completed.
    pub background_plans: u64,
    /// Overhead (journal/metadata) bytes written by middleware plans.
    pub overhead_bytes: u64,
    /// Fault/retry/re-plan counters (all zero on a healthy run).
    pub degraded: DegradedCounts,
    /// Deadline/hedging/backpressure counters (all zero on a healthy run
    /// or with deadlines disabled).
    pub gray: GrayFailureCounts,
    /// Journal/checkpoint durability counters, when the middleware keeps
    /// a persistent journal (`None` for e.g. the stock middleware).
    pub durability: Option<DurabilityCounts>,
    /// Simulated instant at which the run finished.
    pub end_time: SimTime,
    /// Total events processed by the engine.
    pub events: u64,
}

impl RunReport {
    /// Metrics for one direction.
    pub fn kind(&self, kind: IoKind) -> &KindReport {
        match kind {
            IoKind::Write => &self.writes,
            IoKind::Read => &self.reads,
        }
    }

    /// Mutable metrics for one direction.
    pub(crate) fn kind_mut(&mut self, kind: IoKind) -> &mut KindReport {
        match kind {
            IoKind::Write => &mut self.writes,
            IoKind::Read => &mut self.reads,
        }
    }

    /// Number of completed application requests in one direction.
    pub fn app_ops(&self, kind: IoKind) -> u64 {
        self.kind(kind).meter.ops()
    }

    /// Aggregate throughput over both directions' union span, MiB/s.
    pub fn total_throughput_mibs(&self) -> f64 {
        let bytes = self.writes.meter.bytes() + self.reads.meter.bytes();
        let first = match (self.writes.first_issue, self.reads.first_issue) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let last = match (self.writes.last_completion, self.reads.last_completion) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        match (first, last) {
            (Some(a), Some(b)) if b > a => {
                bytes as f64 / s4d_sim::stats::MIB / (b - a).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_counts_and_share() {
        let mut t = TierCounts::default();
        assert_eq!(t.cserver_op_share(), 0.0);
        t.record(Tier::DServers, 100);
        t.record(Tier::CServers, 50);
        t.record(Tier::CServers, 50);
        assert_eq!(t.d_ops, 1);
        assert_eq!(t.c_ops, 2);
        assert_eq!(t.d_bytes, 100);
        assert_eq!(t.c_bytes, 100);
        assert!((t.cserver_op_share() - 66.666).abs() < 0.01);
    }

    #[test]
    fn kind_report_spans_and_throughput() {
        let mut k = KindReport::default();
        assert_eq!(k.span(), SimDuration::ZERO);
        assert_eq!(k.throughput_mibs(), 0.0);
        let t0 = SimTime::from_secs(1);
        let t1 = SimTime::from_secs(3);
        k.record(t0, t1, 2 * 1024 * 1024);
        k.record(t0, SimTime::from_secs(2), 2 * 1024 * 1024);
        assert_eq!(k.span(), SimDuration::from_secs(2));
        assert!((k.throughput_mibs() - 2.0).abs() < 1e-9);
        assert_eq!(k.meter.ops(), 2);
    }

    #[test]
    fn run_report_total_throughput() {
        let mut r = RunReport::default();
        r.writes
            .record(SimTime::ZERO, SimTime::from_secs(1), 1024 * 1024);
        r.reads
            .record(SimTime::from_secs(1), SimTime::from_secs(2), 1024 * 1024);
        assert!((r.total_throughput_mibs() - 1.0).abs() < 1e-9);
        assert_eq!(r.app_ops(IoKind::Write), 1);
        assert_eq!(r.app_ops(IoKind::Read), 1);
    }
}
