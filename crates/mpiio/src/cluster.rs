//! The two parallel file systems as one unit.

use s4d_pfs::FileId;
use s4d_pfs::{NetworkConfig, Pfs, StripeLayout};
use s4d_storage::{presets, HddConfig, SsdConfig, StoreMode};

use crate::types::Tier;

/// The simulated I/O cluster: OPFS over DServers and CPFS over CServers.
///
/// Matches the paper's architecture (Fig. 2): the two file systems are
/// independent PVFS2 instances over disjoint server sets; only the
/// middleware sees both.
#[derive(Debug)]
pub struct Cluster {
    opfs: Pfs,
    cpfs: Pfs,
}

impl Cluster {
    /// Assembles a cluster from two prebuilt file systems.
    pub fn new(opfs: Pfs, cpfs: Pfs) -> Self {
        Cluster { opfs, cpfs }
    }

    /// The paper's testbed (§V.A): 8 HDD DServers + 4 SSD CServers, 64 KiB
    /// stripes, Gigabit Ethernet, timing-only stores.
    pub fn paper_testbed(seed: u64) -> Self {
        Cluster::build(
            8,
            4,
            64 * 1024,
            presets::hdd_seagate_st3250(),
            presets::ssd_ocz_revodrive_x2(),
            NetworkConfig::gigabit_ethernet(),
            StoreMode::Timing,
            seed,
        )
    }

    /// A small functional-mode cluster (2 DServers + 1 CServer) holding
    /// real bytes — for integrity tests and doc examples.
    pub fn paper_testbed_small(seed: u64) -> Self {
        Cluster::build(
            2,
            1,
            64 * 1024,
            presets::hdd_seagate_st3250(),
            presets::ssd_ocz_revodrive_x2(),
            NetworkConfig::gigabit_ethernet(),
            StoreMode::Functional,
            seed,
        )
    }

    /// Fully parameterised construction.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        d_servers: usize,
        c_servers: usize,
        stripe: u64,
        hdd: HddConfig,
        ssd: SsdConfig,
        net: NetworkConfig,
        mode: StoreMode,
        seed: u64,
    ) -> Self {
        let opfs = Pfs::hdd_cluster(
            "opfs",
            StripeLayout::new(stripe, d_servers),
            hdd,
            net,
            mode,
            seed.wrapping_mul(2).wrapping_add(1),
        );
        let cpfs = Pfs::ssd_cluster(
            "cpfs",
            StripeLayout::new(stripe, c_servers),
            ssd,
            net,
            mode,
            seed.wrapping_mul(2).wrapping_add(2),
        );
        Cluster::new(opfs, cpfs)
    }

    /// The file system for a tier.
    pub fn pfs(&self, tier: Tier) -> &Pfs {
        match tier {
            Tier::DServers => &self.opfs,
            Tier::CServers => &self.cpfs,
        }
    }

    /// Mutable file system for a tier.
    pub fn pfs_mut(&mut self, tier: Tier) -> &mut Pfs {
        match tier {
            Tier::DServers => &mut self.opfs,
            Tier::CServers => &mut self.cpfs,
        }
    }

    /// The original file system (DServers).
    pub fn opfs(&self) -> &Pfs {
        &self.opfs
    }

    /// The original file system, mutable.
    pub fn opfs_mut(&mut self) -> &mut Pfs {
        &mut self.opfs
    }

    /// The cache file system (CServers).
    pub fn cpfs(&self) -> &Pfs {
        &self.cpfs
    }

    /// The cache file system, mutable.
    pub fn cpfs_mut(&mut self) -> &mut Pfs {
        &mut self.cpfs
    }

    /// Applies scripted crash effects due by `now` on every server of
    /// both tiers, so direct store access (e.g. [`Cluster::copy_range`])
    /// never observes data a crash should already have destroyed.
    pub fn advance_faults(&mut self, now: s4d_sim::SimTime) {
        self.opfs.advance_faults(now);
        self.cpfs.advance_faults(now);
    }

    /// Copies `len` bytes between tiers at store level (used at Rebuilder
    /// plan completion: the timed I/O has already been simulated; this
    /// applies the data effect). In timing mode this only transfers extent
    /// coverage.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors for unknown files.
    pub fn copy_range(
        &mut self,
        from: (Tier, FileId, u64),
        to: (Tier, FileId, u64),
        len: u64,
    ) -> Result<(), s4d_pfs::PfsError> {
        if len == 0 {
            return Ok(());
        }
        let (src_tier, src_file, src_off) = from;
        let (dst_tier, dst_file, dst_off) = to;
        // Read each source sub-range from its server store.
        let src_plan =
            self.pfs_mut(src_tier)
                .plan(src_file, s4d_storage::IoKind::Read, src_off, len)?;
        let src_layout = self.pfs(src_tier).layout();
        let mut gathered: Vec<(u64, u64, Option<Vec<u8>>)> = Vec::new();
        let mut coverage: Vec<(u64, u64, u64)> = Vec::new();
        for sub in src_plan {
            let mut local = sub.local_offset;
            for (file_off, seg_len) in src_layout.file_segments(&sub) {
                let (outcome, covered) = {
                    let server = self.pfs_mut(src_tier).server_mut(sub.server)?;
                    // Access the store through a read-shaped completion:
                    // servers expose stores only via I/O, so use a direct
                    // store read helper below.
                    (
                        server.peek_store(src_file, local, seg_len),
                        server.peek_coverage(src_file, local, seg_len),
                    )
                };
                gathered.push((file_off, seg_len, outcome));
                coverage.push((file_off, seg_len, covered));
                local += seg_len;
            }
        }
        // Write into the destination.
        let dst_plan =
            self.pfs_mut(dst_tier)
                .plan(dst_file, s4d_storage::IoKind::Write, dst_off, len)?;
        let dst_layout = self.pfs(dst_tier).layout();
        for sub in dst_plan {
            let mut local = sub.local_offset;
            for (file_off, seg_len) in dst_layout.file_segments(&sub) {
                // Map this destination segment back to source bytes. If
                // the source holds nothing there (never written, or wiped
                // by a server crash), don't fabricate zero coverage in the
                // destination.
                let rel = file_off - dst_off;
                if source_covered(&coverage, src_off + rel, seg_len) {
                    let data = assemble(&gathered, src_off + rel, seg_len);
                    let server = self.pfs_mut(dst_tier).server_mut(sub.server)?;
                    server.poke_store(dst_file, local, seg_len, data.as_deref());
                }
                local += seg_len;
            }
        }
        Ok(())
    }
}

/// Assembles `len` bytes starting at absolute source offset `at` from
/// gathered `(file_off, len, data)` pieces; `None` if any piece is
/// metadata-only (timing mode).
/// True if any source piece overlapping `[at, at+len)` had stored bytes.
fn source_covered(coverage: &[(u64, u64, u64)], at: u64, len: u64) -> bool {
    coverage
        .iter()
        .any(|(p_off, p_len, covered)| *covered > 0 && at < p_off + p_len && *p_off < at + len)
}

fn assemble(pieces: &[(u64, u64, Option<Vec<u8>>)], at: u64, len: u64) -> Option<Vec<u8>> {
    let mut out = vec![0u8; len as usize];
    for (p_off, p_len, data) in pieces {
        let data = match data {
            Some(d) => d,
            None => return None,
        };
        let lo = at.max(*p_off);
        let hi = (at + len).min(p_off + p_len);
        if lo < hi {
            let dst = (lo - at) as usize;
            let src = (lo - p_off) as usize;
            let n = (hi - lo) as usize;
            if let (Some(to), Some(from)) = (out.get_mut(dst..dst + n), data.get(src..src + n)) {
                to.copy_from_slice(from);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_dimensions() {
        let c = Cluster::paper_testbed(1);
        assert_eq!(c.pfs(Tier::DServers).server_count(), 8);
        assert_eq!(c.pfs(Tier::CServers).server_count(), 4);
        assert_eq!(c.opfs().name(), "opfs");
        assert_eq!(c.cpfs().name(), "cpfs");
    }

    #[test]
    fn tier_accessors_are_consistent() {
        let mut c = Cluster::paper_testbed_small(2);
        let f = c.pfs_mut(Tier::DServers).create("x").unwrap();
        assert!(c.opfs().meta(f).is_ok());
        assert!(c.cpfs().meta(f).is_err());
    }

    #[test]
    fn copy_range_moves_bytes_between_tiers() {
        let mut c = Cluster::paper_testbed_small(7);
        let orig = c.opfs_mut().create("o").unwrap();
        let cache = c.cpfs_mut().create("c").unwrap();
        // Seed the original file directly through the stores.
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
        let plan = c
            .pfs_mut(Tier::DServers)
            .plan(
                orig,
                s4d_storage::IoKind::Write,
                64 * 1024,
                payload.len() as u64,
            )
            .unwrap();
        let layout = c.pfs(Tier::DServers).layout();
        for sub in plan {
            let mut local = sub.local_offset;
            let mut cursor = 0usize;
            for (file_off, seg_len) in layout.file_segments(&sub) {
                let at = (file_off - 64 * 1024) as usize;
                let server = c.pfs_mut(Tier::DServers).server_mut(sub.server).unwrap();
                server.poke_store(
                    orig,
                    local,
                    seg_len,
                    Some(&payload[at..at + seg_len as usize]),
                );
                local += seg_len;
                cursor += seg_len as usize;
            }
            let _ = cursor;
        }
        // Copy into the cache file at a different offset, then read back.
        c.copy_range(
            (Tier::DServers, orig, 64 * 1024),
            (Tier::CServers, cache, 12_345),
            payload.len() as u64,
        )
        .unwrap();
        let plan = c
            .pfs_mut(Tier::CServers)
            .plan(
                cache,
                s4d_storage::IoKind::Read,
                12_345,
                payload.len() as u64,
            )
            .unwrap();
        let layout = c.pfs(Tier::CServers).layout();
        let mut got = vec![0u8; payload.len()];
        for sub in plan {
            let mut local = sub.local_offset;
            for (file_off, seg_len) in layout.file_segments(&sub) {
                let server = c.pfs(Tier::CServers).server(sub.server).unwrap();
                let data = server
                    .peek_store(cache, local, seg_len)
                    .expect("functional");
                let at = (file_off - 12_345) as usize;
                got[at..at + seg_len as usize].copy_from_slice(&data);
                local += seg_len;
            }
        }
        assert_eq!(got, payload, "bytes survive the cross-tier copy");
    }

    #[test]
    fn copy_range_in_timing_mode_transfers_coverage() {
        let mut c = Cluster::paper_testbed(8); // timing mode
        let orig = c.opfs_mut().create("o").unwrap();
        let cache = c.cpfs_mut().create("c").unwrap();
        // Mark coverage on the original.
        let plan = c
            .pfs_mut(Tier::DServers)
            .plan(orig, s4d_storage::IoKind::Write, 0, 256 * 1024)
            .unwrap();
        for sub in plan {
            let server = c.pfs_mut(Tier::DServers).server_mut(sub.server).unwrap();
            server.poke_store(orig, sub.local_offset, sub.len, None);
        }
        c.copy_range(
            (Tier::DServers, orig, 0),
            (Tier::CServers, cache, 0),
            256 * 1024,
        )
        .unwrap();
        assert_eq!(c.cpfs().stored_bytes(), 256 * 1024);
        // Zero-length copies are no-ops.
        c.copy_range((Tier::DServers, orig, 0), (Tier::CServers, cache, 0), 0)
            .unwrap();
        // Unknown files error.
        assert!(c
            .copy_range(
                (Tier::DServers, s4d_pfs::FileId(99), 0),
                (Tier::CServers, cache, 0),
                10
            )
            .is_err());
    }

    #[test]
    fn assemble_merges_pieces() {
        let pieces = vec![
            (0u64, 4u64, Some(b"abcd".to_vec())),
            (4u64, 4u64, Some(b"efgh".to_vec())),
        ];
        assert_eq!(assemble(&pieces, 2, 4).unwrap(), b"cdef");
        assert_eq!(assemble(&pieces, 0, 8).unwrap(), b"abcdefgh");
        let timing = vec![(0u64, 4u64, None)];
        assert_eq!(assemble(&timing, 0, 4), None);
    }
}
