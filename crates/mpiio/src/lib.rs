//! # s4d-mpiio — the middleware layer and simulation runner
//!
//! The paper integrates S4D-Cache into the MPI-IO library: every
//! `MPI_File_open/read/write/close` is intercepted and may be redirected.
//! This crate provides the equivalent seam for the simulated stack:
//!
//! * [`AppOp`] — the operations an application process issues
//!   (open / read / write / close / barrier / think);
//! * [`Middleware`] — the plug-in interface: given an application request,
//!   produce an execution [`Plan`] of per-tier I/O, plus hooks for
//!   background work (the Rebuilder) and completion callbacks;
//! * [`StockMiddleware`] — the baseline: every request passes straight
//!   through to the original (HDD) parallel file system, exactly like
//!   unmodified MPI-IO over PVFS2;
//! * [`Cluster`] — the two parallel file systems (OPFS over DServers,
//!   CPFS over CServers) as one addressable unit;
//! * [`Runner`] — the discrete-event execution engine that drives
//!   application processes, middleware plans, and file-server state
//!   machines to completion and produces a [`RunReport`].
//!
//! ```
//! use s4d_mpiio::{AppOp, Cluster, Runner, StockMiddleware, script};
//! use s4d_storage::IoKind;
//!
//! let cluster = Cluster::paper_testbed_small(42);
//! let scripts = vec![
//!     script()
//!         .open("shared.dat")
//!         .write(0, 0, 64 * 1024)
//!         .read(0, 0, 64 * 1024)
//!         .close(0)
//!         .build(),
//! ];
//! let mut runner = Runner::new(cluster, StockMiddleware::new(), scripts, 7);
//! let report = runner.run();
//! assert_eq!(report.app_ops(IoKind::Write), 1);
//! assert_eq!(report.app_ops(IoKind::Read), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cluster;
mod middleware;
mod report;
mod runner;
mod script;
mod types;

pub use cluster::Cluster;
pub use middleware::{BackgroundPoll, Middleware, StockMiddleware};
pub use report::{
    DegradedCounts, DurabilityCounts, GrayFailureCounts, KindReport, RunReport, TierCounts,
};
pub use runner::{IoObserver, Runner, RunnerConfig};
pub use script::{script, ProcessScript, ScriptBuilder, VecScript};
pub use types::{
    AppOp, AppRequest, ErrorDirective, FileHandle, HedgeDirective, MiddlewareError, Plan,
    PlannedIo, Rank, StragglerCtx, SubIoFailure, Tier,
};
