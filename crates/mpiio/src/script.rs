//! Process scripts: the operation streams application processes execute.

use s4d_sim::SimDuration;
use s4d_storage::IoKind;

use crate::types::{AppOp, FileHandle};

/// A stream of operations for one process.
///
/// Implementations are pulled lazily — one op at a time — so workloads with
/// millions of requests (the paper's 16 GB IOR runs) never materialise in
/// memory. Workload generators in `s4d-workloads` implement this trait.
pub trait ProcessScript {
    /// The next operation, or `None` when the process is done.
    fn next_op(&mut self) -> Option<AppOp>;
}

/// A script backed by a pre-built vector of operations.
#[derive(Debug, Clone)]
pub struct VecScript {
    ops: std::vec::IntoIter<AppOp>,
}

impl VecScript {
    /// Wraps a vector of operations.
    pub fn new(ops: Vec<AppOp>) -> Self {
        VecScript {
            ops: ops.into_iter(),
        }
    }
}

impl ProcessScript for VecScript {
    fn next_op(&mut self) -> Option<AppOp> {
        self.ops.next()
    }
}

impl<S: ProcessScript + ?Sized> ProcessScript for Box<S> {
    fn next_op(&mut self) -> Option<AppOp> {
        (**self).next_op()
    }
}

/// Starts a [`ScriptBuilder`].
pub fn script() -> ScriptBuilder {
    ScriptBuilder::default()
}

/// Convenience builder for explicit scripts (tests, examples).
///
/// ```
/// use s4d_mpiio::{script, ProcessScript};
/// let mut s = script().open("f").write(0, 0, 4096).close(0).build();
/// assert!(s.next_op().is_some());
/// ```
#[derive(Debug, Default, Clone)]
pub struct ScriptBuilder {
    ops: Vec<AppOp>,
}

impl ScriptBuilder {
    /// Appends an open of `name`.
    pub fn open(mut self, name: impl Into<String>) -> Self {
        self.ops.push(AppOp::Open { name: name.into() });
        self
    }

    /// Appends a write of `len` bytes at `offset` on handle `h`.
    pub fn write(mut self, h: usize, offset: u64, len: u64) -> Self {
        self.ops.push(AppOp::Io {
            handle: FileHandle(h),
            kind: IoKind::Write,
            offset,
            len,
            data: None,
        });
        self
    }

    /// Appends a write carrying explicit bytes (functional runs).
    pub fn write_bytes(mut self, h: usize, offset: u64, data: Vec<u8>) -> Self {
        self.ops.push(AppOp::Io {
            handle: FileHandle(h),
            kind: IoKind::Write,
            offset,
            len: data.len() as u64,
            data: Some(data),
        });
        self
    }

    /// Appends a read of `len` bytes at `offset` on handle `h`.
    pub fn read(mut self, h: usize, offset: u64, len: u64) -> Self {
        self.ops.push(AppOp::Io {
            handle: FileHandle(h),
            kind: IoKind::Read,
            offset,
            len,
            data: None,
        });
        self
    }

    /// Appends a seek of handle `h` to `offset`.
    pub fn seek(mut self, h: usize, offset: u64) -> Self {
        self.ops.push(AppOp::Seek {
            handle: FileHandle(h),
            offset,
        });
        self
    }

    /// Appends a write of `len` bytes at handle `h`'s file pointer.
    pub fn write_cur(mut self, h: usize, len: u64) -> Self {
        self.ops.push(AppOp::IoAtCursor {
            handle: FileHandle(h),
            kind: IoKind::Write,
            len,
            data: None,
        });
        self
    }

    /// Appends a read of `len` bytes at handle `h`'s file pointer.
    pub fn read_cur(mut self, h: usize, len: u64) -> Self {
        self.ops.push(AppOp::IoAtCursor {
            handle: FileHandle(h),
            kind: IoKind::Read,
            len,
            data: None,
        });
        self
    }

    /// Appends a close of handle `h`.
    pub fn close(mut self, h: usize) -> Self {
        self.ops.push(AppOp::Close {
            handle: FileHandle(h),
        });
        self
    }

    /// Appends a global barrier.
    pub fn barrier(mut self) -> Self {
        self.ops.push(AppOp::Barrier);
        self
    }

    /// Appends compute time.
    pub fn think(mut self, duration: SimDuration) -> Self {
        self.ops.push(AppOp::Think { duration });
        self
    }

    /// Finishes the script.
    pub fn build(self) -> VecScript {
        VecScript::new(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_in_order() {
        let mut s = script()
            .open("f")
            .write(0, 10, 20)
            .read(0, 10, 20)
            .barrier()
            .think(SimDuration::from_millis(1))
            .close(0)
            .build();
        assert!(matches!(s.next_op(), Some(AppOp::Open { .. })));
        match s.next_op() {
            Some(AppOp::Io {
                kind, offset, len, ..
            }) => {
                assert_eq!(kind, IoKind::Write);
                assert_eq!((offset, len), (10, 20));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(s.next_op(), Some(AppOp::Io { .. })));
        assert!(matches!(s.next_op(), Some(AppOp::Barrier)));
        assert!(matches!(s.next_op(), Some(AppOp::Think { .. })));
        assert!(matches!(s.next_op(), Some(AppOp::Close { .. })));
        assert!(s.next_op().is_none());
        assert!(s.next_op().is_none(), "stays exhausted");
    }

    #[test]
    fn cursor_ops_emit() {
        let mut s = script()
            .open("f")
            .seek(0, 4096)
            .write_cur(0, 100)
            .read_cur(0, 50)
            .build();
        s.next_op();
        assert!(matches!(
            s.next_op(),
            Some(AppOp::Seek { offset: 4096, .. })
        ));
        assert!(matches!(
            s.next_op(),
            Some(AppOp::IoAtCursor {
                kind: IoKind::Write,
                len: 100,
                ..
            })
        ));
        assert!(matches!(
            s.next_op(),
            Some(AppOp::IoAtCursor {
                kind: IoKind::Read,
                len: 50,
                ..
            })
        ));
    }

    #[test]
    fn write_bytes_sets_len() {
        let mut s = script().write_bytes(0, 5, vec![1, 2, 3]).build();
        match s.next_op() {
            Some(AppOp::Io { len, data, .. }) => {
                assert_eq!(len, 3);
                assert_eq!(data, Some(vec![1, 2, 3]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boxed_scripts_work() {
        let mut b: Box<dyn ProcessScript> = Box::new(script().barrier().build());
        assert!(matches!(b.next_op(), Some(AppOp::Barrier)));
        assert!(b.next_op().is_none());
    }
}
