//! The discrete-event execution engine.
//!
//! The [`Runner`] owns the [`Cluster`], a [`Middleware`] implementation and
//! one [`ProcessScript`] per simulated MPI process. It drives everything
//! through `s4d-sim`'s event loop:
//!
//! * a process executes its script; opens/closes are instantaneous control
//!   operations, reads/writes become middleware [`Plan`]s;
//! * a plan's phases run sequentially; the ops of a phase are decomposed
//!   into per-server sub-requests and submitted concurrently;
//! * file servers service one sub-request at a time (foreground before
//!   background) — each completion is an event;
//! * the middleware's background hook (the Rebuilder) is polled on the
//!   schedule it requests.

use std::collections::HashMap;

use s4d_pfs::{Priority, SubReqId, SubRequest};
use s4d_sim::{Engine, EventQueue, SimDuration, SimTime, World};
use s4d_storage::IoKind;

use crate::cluster::Cluster;
use crate::middleware::Middleware;
use crate::report::RunReport;
use crate::script::ProcessScript;
use crate::types::{AppOp, AppRequest, ErrorDirective, Plan, Rank, SubIoFailure, Tier};

/// Hard cap on re-planning one application request after plan failures —
/// far above what converging fault scenarios need; hitting it means the
/// middleware can neither serve nor route around a permanently failed
/// resource.
const MAX_REPLANS: u32 = 1000;

/// Backoff before re-planning a failed request: grows with the attempt
/// so a quarantined server's recovery window can pass.
fn replan_delay(replans: u32) -> SimDuration {
    let exp = replans.min(7);
    SimDuration::from_millis(8 << exp).min(SimDuration::from_secs(1))
}

/// Observation hooks for tracing tools.
///
/// All methods default to no-ops; implement the ones you need.
pub trait IoObserver {
    /// A planned application-data op was dispatched to a tier.
    fn on_dispatch(
        &mut self,
        _now: SimTime,
        _rank: Rank,
        _tier: Tier,
        _kind: IoKind,
        _app_offset: u64,
        _len: u64,
    ) {
    }

    /// An application request fully completed.
    fn on_request_complete(
        &mut self,
        _now: SimTime,
        _rank: Rank,
        _kind: IoKind,
        _offset: u64,
        _len: u64,
        _issued: SimTime,
    ) {
    }

    /// A completed application *read* with its assembled bytes (functional
    /// runs only; `None` in timing runs).
    fn on_read_data(&mut self, _rank: Rank, _offset: u64, _len: u64, _data: Option<&[u8]>) {}
}

/// Runner tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Time charged to a process for each `open` (metadata round-trip).
    pub open_cost: SimDuration,
    /// Hard stop: panic if the simulation passes this horizon (guards
    /// against runaway configurations). `SimTime::MAX` disables it.
    pub horizon: SimTime,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            open_cost: SimDuration::from_micros(500),
            horizon: SimTime::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    ProcessWake(usize),
    ServerDone {
        tier: Tier,
        server: usize,
    },
    PlanStart(u64),
    BackgroundWake,
    /// Resubmit a sub-request after a retry backoff.
    Retry(u64),
    /// Re-plan an application request after a plan failure.
    Replan(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcStatus {
    Running,
    AtBarrier,
    Finished,
}

struct Proc {
    rank: Rank,
    script: Box<dyn ProcessScript>,
    /// Open-file slots, MPI-style: close frees a slot, open reuses the
    /// lowest free slot (so a chained workload's `FileHandle(0)` always
    /// names its own current file).
    handles: Vec<Option<s4d_pfs::FileId>>,
    /// Per-slot individual file pointers (`MPI_File_seek` state).
    cursors: Vec<u64>,
    status: ProcStatus,
}

/// Who a plan belongs to.
enum PlanOwner {
    Process {
        index: usize,
        issued: SimTime,
        file: s4d_pfs::FileId,
        kind: IoKind,
        offset: u64,
        len: u64,
        read_buf: Option<Vec<u8>>,
        /// Original write payload, kept so a failed plan can be re-planned.
        data: Option<Vec<u8>>,
        /// How many times this request has been re-planned.
        replans: u32,
    },
    Background,
}

struct PlanExec {
    plan: Plan,
    phase: usize,
    outstanding: usize,
    owner: PlanOwner,
    /// Set when a sub-request gave up: remaining phases are skipped and
    /// the plan fails instead of completing.
    failed: bool,
}

struct SubMeta {
    plan_id: u64,
    /// Offset of the planned op within its file.
    op_offset: u64,
    /// Application-file offset the op's bytes belong to, if data-carrying.
    app_offset: Option<u64>,
    /// `(file_offset_within_op_file, len)` segments of this sub-request.
    segments: Vec<(u64, u64)>,
    /// Service class (needed to rebuild the sub-request on retry).
    priority: Priority,
    /// Attempts so far, including the in-flight one.
    attempts: u32,
    /// When the current attempt was submitted (latency measurement).
    submitted: SimTime,
}

/// A failed sub-request waiting out its retry backoff.
struct PendingRetry {
    tier: Tier,
    server: usize,
    req: SubRequest,
    meta: SubMeta,
}

/// A failed application request waiting to be re-planned.
struct PendingReplan {
    index: usize,
    issued: SimTime,
    file: s4d_pfs::FileId,
    kind: IoKind,
    offset: u64,
    len: u64,
    data: Option<Vec<u8>>,
    replans: u32,
}

struct State<M: Middleware> {
    cluster: Cluster,
    middleware: M,
    procs: Vec<Proc>,
    config: RunnerConfig,
    plans: HashMap<u64, PlanExec>,
    next_plan: u64,
    subs: HashMap<SubReqId, SubMeta>,
    next_sub: u64,
    retries: HashMap<u64, PendingRetry>,
    next_retry: u64,
    replans: HashMap<u64, PendingReplan>,
    next_replan: u64,
    barrier_waiting: usize,
    finished: usize,
    background_armed: bool,
    drain_mode: bool,
    report: RunReport,
    observers: Vec<Box<dyn IoObserver>>,
}

/// Drives one simulated run to completion.
///
/// See the crate-level example. After [`Runner::run`], recover the pieces
/// with [`Runner::into_parts`] to inspect middleware state or reuse the
/// cluster for a second run (the paper's "second run" read experiments).
pub struct Runner<M: Middleware> {
    state: State<M>,
}

impl<M: Middleware> Runner<M> {
    /// Creates a runner over `scripts.len()` processes with default config.
    ///
    /// `seed` is reserved for future stochastic components of the runner
    /// itself; determinism currently comes from the cluster and scripts.
    pub fn new(
        cluster: Cluster,
        middleware: M,
        scripts: Vec<impl ProcessScript + 'static>,
        seed: u64,
    ) -> Self {
        let _ = seed;
        let procs = scripts
            .into_iter()
            .enumerate()
            .map(|(i, s)| Proc {
                rank: Rank(i as u32),
                script: Box::new(s) as Box<dyn ProcessScript>,
                handles: Vec::new(),
                cursors: Vec::new(),
                status: ProcStatus::Running,
            })
            .collect();
        Runner {
            state: State {
                cluster,
                middleware,
                procs,
                config: RunnerConfig::default(),
                plans: HashMap::new(),
                next_plan: 1,
                subs: HashMap::new(),
                next_sub: 0,
                retries: HashMap::new(),
                next_retry: 0,
                replans: HashMap::new(),
                next_replan: 0,
                barrier_waiting: 0,
                finished: 0,
                background_armed: false,
                drain_mode: false,
                report: RunReport::default(),
                observers: Vec::new(),
            },
        }
    }

    /// Replaces the default configuration.
    pub fn with_config(mut self, config: RunnerConfig) -> Self {
        self.state.config = config;
        self
    }

    /// Registers a tracing observer.
    pub fn add_observer(&mut self, obs: Box<dyn IoObserver>) {
        self.state.observers.push(obs);
    }

    /// Runs every process script to completion (plus in-flight background
    /// work) and returns the report.
    pub fn run(&mut self) -> RunReport {
        let mut engine: Engine<Event> = Engine::new();
        for i in 0..self.state.procs.len() {
            engine
                .queue_mut()
                .push(SimTime::ZERO, Event::ProcessWake(i));
        }
        engine
            .queue_mut()
            .push(SimTime::ZERO, Event::BackgroundWake);
        self.state.background_armed = true;
        self.state.drain_mode = false;
        let horizon = self.state.config.horizon;
        let end = engine.run_until(&mut self.state, horizon);
        assert!(
            engine.queue().is_empty(),
            "simulation hit the configured horizon with work pending"
        );
        self.state.report.end_time = end;
        self.state.report.events = engine.processed();
        self.state.report.durability = self.state.middleware.durability();
        self.state.report.clone()
    }

    /// Runs only background (Rebuilder) work until the middleware reports
    /// none left. Used between a workload's first and second run.
    pub fn drain_background(&mut self, start: SimTime) -> SimTime {
        let mut engine: Engine<Event> = Engine::new();
        engine.queue_mut().push(start, Event::BackgroundWake);
        self.state.background_armed = true;
        self.state.drain_mode = true;
        let horizon = self.state.config.horizon;
        let end = engine.run_until(&mut self.state, horizon);
        self.state.drain_mode = false;
        end
    }

    /// Takes the runner apart: cluster, middleware, and the latest report.
    pub fn into_parts(self) -> (Cluster, M, RunReport) {
        (self.state.cluster, self.state.middleware, self.state.report)
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.state.report
    }

    /// The cluster (e.g. to pre-create files before running).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.state.cluster
    }

    /// The middleware (e.g. to inspect cache state after running).
    pub fn middleware(&self) -> &M {
        &self.state.middleware
    }
}

impl<M: Middleware> World<Event> for State<M> {
    fn handle(&mut self, now: SimTime, ev: Event, q: &mut EventQueue<Event>) {
        // Scripted crash effects become visible the moment time reaches
        // them, never later — direct store reads (Rebuilder copies) must
        // not observe destroyed data.
        self.cluster.advance_faults(now);
        match ev {
            Event::ProcessWake(i) => self.advance_process(now, i, q),
            Event::ServerDone { tier, server } => self.server_done(now, tier, server, q),
            Event::PlanStart(id) => {
                // A missing entry means the queue replayed a stale id;
                // there is nothing to start.
                if let Some(exec) = self.plans.remove(&id) {
                    self.start_plan(now, id, exec, q);
                }
            }
            Event::BackgroundWake => self.background_wake(now, q),
            Event::Retry(token) => self.fire_retry(now, token, q),
            Event::Replan(token) => self.fire_replan(now, token, q),
        }
    }
}

impl<M: Middleware> State<M> {
    /// Process state for an event- or owner-carried index. Indices are
    /// minted from `procs` at construction and the vector never shrinks.
    fn proc(&self, i: usize) -> &Proc {
        self.procs
            .get(i)
            // s4d-lint: allow(panic) — indices are minted from `procs` at construction and the vector never shrinks; a miss is event-queue corruption
            .expect("event names a constructed process")
    }

    /// Mutable variant of [`State::proc`].
    fn proc_mut(&mut self, i: usize) -> &mut Proc {
        self.procs
            .get_mut(i)
            // s4d-lint: allow(panic) — indices are minted from `procs` at construction and the vector never shrinks; a miss is event-queue corruption
            .expect("event names a constructed process")
    }

    /// Executes control ops until the process blocks on I/O, a barrier,
    /// think time, or finishes.
    fn advance_process(&mut self, now: SimTime, i: usize, q: &mut EventQueue<Event>) {
        let mut now = now;
        loop {
            let op = match self.proc_mut(i).script.next_op() {
                Some(op) => op,
                None => {
                    if self.proc(i).status != ProcStatus::Finished {
                        self.proc_mut(i).status = ProcStatus::Finished;
                        self.finished += 1;
                        self.maybe_release_barrier(now, q);
                    }
                    return;
                }
            };
            match op {
                AppOp::Open { name } => {
                    let rank = self.proc(i).rank;
                    let file = self
                        .middleware
                        .open(&mut self.cluster, rank, &name)
                        // s4d-lint: allow(panic) — malformed workload script or broken middleware: fail fast with rank context rather than simulate nonsense
                        .unwrap_or_else(|e| panic!("{rank} failed to open {name:?}: {e}"));
                    let proc = self.proc_mut(i);
                    match proc.handles.iter().position(|h| h.is_none()) {
                        Some(slot) => {
                            if let Some(h) = proc.handles.get_mut(slot) {
                                *h = Some(file);
                            }
                            if let Some(c) = proc.cursors.get_mut(slot) {
                                *c = 0;
                            }
                        }
                        None => {
                            proc.handles.push(Some(file));
                            proc.cursors.push(0);
                        }
                    }
                    now += self.config.open_cost;
                }
                AppOp::Close { handle } => {
                    let rank = self.proc(i).rank;
                    let file = self
                        .proc_mut(i)
                        .handles
                        .get_mut(handle.0)
                        .and_then(Option::take)
                        // s4d-lint: allow(panic) — malformed workload script: fail fast with rank context rather than simulate nonsense
                        .unwrap_or_else(|| panic!("{rank} closed unopened handle {}", handle.0));
                    self.middleware
                        .close(&mut self.cluster, rank, file)
                        // s4d-lint: allow(panic) — malformed workload script or broken middleware: fail fast with rank context rather than simulate nonsense
                        .unwrap_or_else(|e| panic!("{rank} failed to close: {e}"));
                }
                AppOp::Think { duration } => {
                    q.push(now + duration, Event::ProcessWake(i));
                    return;
                }
                AppOp::Barrier => {
                    self.proc_mut(i).status = ProcStatus::AtBarrier;
                    self.barrier_waiting += 1;
                    self.maybe_release_barrier(now, q);
                    return;
                }
                AppOp::Seek { handle, offset } => {
                    let proc = self.proc_mut(i);
                    let rank = proc.rank;
                    let open = proc.handles.get(handle.0).copied().flatten().is_some();
                    match proc.cursors.get_mut(handle.0) {
                        Some(cursor) if open => *cursor = offset,
                        // s4d-lint: allow(panic) — malformed workload script: fail fast with rank context rather than simulate nonsense
                        _ => panic!("{rank} seeked unopened handle {}", handle.0),
                    }
                }
                AppOp::IoAtCursor {
                    handle,
                    kind,
                    len,
                    data,
                } => {
                    let proc = self.proc_mut(i);
                    let rank = proc.rank;
                    let Some(cursor) = proc.cursors.get_mut(handle.0) else {
                        // s4d-lint: allow(panic) — malformed workload script: fail fast with rank context rather than simulate nonsense
                        panic!("{rank} used unopened handle {}", handle.0)
                    };
                    let offset = *cursor;
                    *cursor = offset + len;
                    self.dispatch_io(now, i, handle, kind, offset, len, data, q);
                    return;
                }
                AppOp::Io {
                    handle,
                    kind,
                    offset,
                    len,
                    data,
                } => {
                    self.dispatch_io(now, i, handle, kind, offset, len, data, q);
                    return;
                }
            }
        }
    }

    /// Resolves a handle and launches the middleware plan for one I/O.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_io(
        &mut self,
        now: SimTime,
        i: usize,
        handle: crate::types::FileHandle,
        kind: IoKind,
        offset: u64,
        len: u64,
        data: Option<Vec<u8>>,
        q: &mut EventQueue<Event>,
    ) {
        let rank = self.proc(i).rank;
        let file = self
            .proc(i)
            .handles
            .get(handle.0)
            .copied()
            .flatten()
            // s4d-lint: allow(panic) — malformed workload script: fail fast with rank context rather than simulate nonsense
            .unwrap_or_else(|| panic!("{rank} used unopened handle {}", handle.0));
        let req = AppRequest {
            rank,
            file,
            kind,
            offset,
            len,
            data,
        };
        let data = req.data.clone();
        let plan = self.middleware.plan_io(&mut self.cluster, now, &req);
        let owner = PlanOwner::Process {
            index: i,
            issued: now,
            file,
            kind,
            offset,
            len,
            read_buf: None,
            data,
            replans: 0,
        };
        self.launch_plan(now, plan, owner, q);
    }

    fn maybe_release_barrier(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        if self.barrier_waiting > 0 && self.barrier_waiting + self.finished == self.procs.len() {
            self.barrier_waiting = 0;
            for (j, p) in self.procs.iter_mut().enumerate() {
                if p.status == ProcStatus::AtBarrier {
                    p.status = ProcStatus::Running;
                    q.push(now, Event::ProcessWake(j));
                }
            }
        }
    }

    fn launch_plan(
        &mut self,
        now: SimTime,
        plan: Plan,
        owner: PlanOwner,
        q: &mut EventQueue<Event>,
    ) {
        let plan_id = self.next_plan;
        self.next_plan += 1;
        let exec = PlanExec {
            plan,
            phase: 0,
            outstanding: 0,
            owner,
            failed: false,
        };
        if !exec.plan.lead_in.is_zero() {
            // Charge the middleware's decision time before any I/O starts.
            let starts_at = now + exec_lead_in(&exec);
            self.plans.insert(plan_id, exec);
            q.push(starts_at, Event::PlanStart(plan_id));
            return;
        }
        self.start_plan(now, plan_id, exec, q);
    }

    fn start_plan(
        &mut self,
        now: SimTime,
        plan_id: u64,
        mut exec: PlanExec,
        q: &mut EventQueue<Event>,
    ) {
        let launched = self.submit_phase(now, plan_id, &mut exec, q);
        exec.outstanding = launched;
        if launched == 0 {
            // Empty plan (or zero-length ops only): completes instantly.
            self.complete_plan(now, exec, q);
        } else {
            self.plans.insert(plan_id, exec);
        }
    }

    /// Submits every op of the current phase; returns how many sub-requests
    /// were created. Empty phases are skipped (advancing `exec.phase`).
    fn submit_phase(
        &mut self,
        now: SimTime,
        plan_id: u64,
        exec: &mut PlanExec,
        q: &mut EventQueue<Event>,
    ) -> usize {
        while exec.phase < exec.plan.phases.len() {
            let phase_idx = exec.phase;
            let mut created = 0;
            let Some(ops) = exec.plan.phases.get(phase_idx).cloned() else {
                break; // unreachable: the loop guard bounds phase_idx
            };
            for op in &ops {
                if op.len == 0 {
                    continue;
                }
                self.account_dispatch(now, exec, op);
                let subranges = self
                    .cluster
                    .pfs_mut(op.tier)
                    .plan(op.file, op.kind, op.offset, op.len)
                    // s4d-lint: allow(panic) — a plan the middleware just produced names unknown files only if the middleware is broken; fail fast with the op
                    .unwrap_or_else(|e| panic!("planning {op:?}: {e}"));
                let layout = self.cluster.pfs(op.tier).layout();
                for sub in subranges {
                    let id = SubReqId(self.next_sub);
                    self.next_sub += 1;
                    let segments = layout.file_segments(&sub);
                    let data = op.data.as_ref().map(|full| {
                        let mut buf = Vec::with_capacity(sub.len as usize);
                        for (seg_off, seg_len) in &segments {
                            let at = (seg_off - op.offset) as usize;
                            if let Some(seg) = full.get(at..at + *seg_len as usize) {
                                buf.extend_from_slice(seg);
                            }
                        }
                        buf
                    });
                    self.subs.insert(
                        id,
                        SubMeta {
                            plan_id,
                            op_offset: op.offset,
                            app_offset: op.app_offset,
                            segments,
                            priority: op.priority,
                            attempts: 1,
                            submitted: now,
                        },
                    );
                    let sr = SubRequest {
                        id,
                        file: op.file,
                        kind: op.kind,
                        local_offset: sub.local_offset,
                        len: sub.len,
                        priority: op.priority,
                        data,
                    };
                    let tier = op.tier;
                    let server_idx = sub.server;
                    let Ok(server) = self.cluster.pfs_mut(tier).server_mut(server_idx) else {
                        self.subs.remove(&id);
                        continue; // the layout only names servers in range
                    };
                    let started = server.submit(now, sr);
                    if let Some(s) = started {
                        q.push(
                            s.completes_at,
                            Event::ServerDone {
                                tier,
                                server: server_idx,
                            },
                        );
                    }
                    created += 1;
                }
            }
            if created > 0 {
                return created;
            }
            exec.phase += 1;
        }
        0
    }

    fn account_dispatch(&mut self, now: SimTime, exec: &PlanExec, op: &crate::types::PlannedIo) {
        match (&exec.owner, op.app_offset) {
            (PlanOwner::Process { index, kind, .. }, Some(app_off)) => {
                self.report.tiers.record(op.tier, op.len);
                let rank = self.proc(*index).rank;
                let kind = *kind;
                for obs in &mut self.observers {
                    obs.on_dispatch(now, rank, op.tier, kind, app_off, op.len);
                }
            }
            (PlanOwner::Process { .. }, None) => {
                self.report.overhead_bytes += op.len;
            }
            (PlanOwner::Background, _) => {
                self.report.background_bytes += op.len;
            }
        }
    }

    fn server_done(&mut self, now: SimTime, tier: Tier, server: usize, q: &mut EventQueue<Event>) {
        let Ok(srv) = self.cluster.pfs_mut(tier).server_mut(server) else {
            return; // ServerDone events only name servers the PFS has
        };
        let (completed, next) = srv.on_complete(now);
        if let Some(s) = next {
            q.push(s.completes_at, Event::ServerDone { tier, server });
        }
        let Some(meta) = self.subs.remove(&completed.id) else {
            return; // every submitted sub-request is registered first
        };
        let plan_id = meta.plan_id;
        let Some(mut exec) = self.plans.remove(&plan_id) else {
            return; // a sub-request's plan stays live until it drains
        };
        if let Some(error) = completed.error {
            self.report.degraded.io_errors += 1;
            let overhead =
                matches!(exec.owner, PlanOwner::Process { .. }) && meta.app_offset.is_none();
            let failure = SubIoFailure {
                tier,
                server,
                kind: completed.kind,
                len: completed.len,
                error,
                attempts: meta.attempts,
                overhead,
            };
            match self
                .middleware
                .on_io_error(&mut self.cluster, now, &failure)
            {
                ErrorDirective::Retry { delay } => {
                    self.report.degraded.retries += 1;
                    let mut meta = meta;
                    meta.attempts += 1;
                    // A failed write hands its payload back in `data`.
                    let req = SubRequest {
                        id: completed.id,
                        file: completed.file,
                        kind: completed.kind,
                        local_offset: completed.local_offset,
                        len: completed.len,
                        priority: meta.priority,
                        data: completed.data,
                    };
                    let token = self.next_retry;
                    self.next_retry += 1;
                    self.retries.insert(
                        token,
                        PendingRetry {
                            tier,
                            server,
                            req,
                            meta,
                        },
                    );
                    q.push(now + delay, Event::Retry(token));
                    // The sub-request stays outstanding on its plan.
                    self.plans.insert(plan_id, exec);
                    return;
                }
                ErrorDirective::GiveUp => {
                    if overhead {
                        // A lost metadata write-behind doesn't fail the
                        // application request: recovery treats the missing
                        // records as a torn journal tail.
                        self.report.degraded.overhead_failures += 1;
                    } else {
                        exec.failed = true;
                    }
                }
            }
        } else {
            self.middleware.on_io_complete(
                tier,
                server,
                completed.kind,
                completed.len,
                now - meta.submitted,
            );
            // Scatter functional read bytes into the owner's buffer.
            if let (Some(data), Some(app_off)) = (&completed.data, meta.app_offset) {
                if let PlanOwner::Process {
                    offset,
                    len,
                    read_buf,
                    ..
                } = &mut exec.owner
                {
                    let buf = read_buf.get_or_insert_with(|| vec![0u8; *len as usize]);
                    let mut cursor = 0usize;
                    for (seg_off, seg_len) in &meta.segments {
                        let app_pos = app_off + (seg_off - meta.op_offset);
                        let at = (app_pos - *offset) as usize;
                        let n = *seg_len as usize;
                        if let (Some(dst), Some(src)) =
                            (buf.get_mut(at..at + n), data.get(cursor..cursor + n))
                        {
                            dst.copy_from_slice(src);
                        }
                        cursor += n;
                    }
                }
            }
        }
        exec.outstanding -= 1;
        if exec.outstanding > 0 {
            self.plans.insert(plan_id, exec);
            return;
        }
        if exec.failed {
            self.fail_plan(now, exec, q);
            return;
        }
        // Phase finished: next phase or plan completion.
        exec.phase += 1;
        let launched = self.submit_phase(now, plan_id, &mut exec, q);
        if launched > 0 {
            exec.outstanding = launched;
            self.plans.insert(plan_id, exec);
        } else {
            self.complete_plan(now, exec, q);
        }
    }

    /// Resubmits a retried sub-request after its backoff.
    fn fire_retry(&mut self, now: SimTime, token: u64, q: &mut EventQueue<Event>) {
        let Some(PendingRetry {
            tier,
            server,
            req,
            mut meta,
        }) = self.retries.remove(&token)
        else {
            return; // Retry tokens are minted once per pending retry
        };
        meta.submitted = now;
        let id = req.id;
        let Ok(srv) = self.cluster.pfs_mut(tier).server_mut(server) else {
            return; // the retried server was valid when the retry was queued
        };
        let started = srv.submit(now, req);
        self.subs.insert(id, meta);
        if let Some(s) = started {
            q.push(s.completes_at, Event::ServerDone { tier, server });
        }
    }

    /// A plan failed: notify the middleware, then schedule a re-plan of
    /// the owning application request (background plans are just dropped
    /// and rebuilt by a later poll).
    fn fail_plan(&mut self, now: SimTime, exec: PlanExec, q: &mut EventQueue<Event>) {
        if exec.plan.tag != 0 {
            self.middleware
                .on_plan_failed(&mut self.cluster, now, exec.plan.tag);
        }
        match exec.owner {
            PlanOwner::Process {
                index,
                issued,
                file,
                kind,
                offset,
                len,
                data,
                replans,
                ..
            } => {
                assert!(
                    replans < MAX_REPLANS,
                    "request (offset {offset}, len {len}) re-planned {MAX_REPLANS} times \
                     without succeeding — the middleware cannot route around the failure"
                );
                self.report.degraded.replans += 1;
                let token = self.next_replan;
                self.next_replan += 1;
                self.replans.insert(
                    token,
                    PendingReplan {
                        index,
                        issued,
                        file,
                        kind,
                        offset,
                        len,
                        data,
                        replans: replans + 1,
                    },
                );
                q.push(now + replan_delay(replans), Event::Replan(token));
            }
            PlanOwner::Background => {
                self.report.degraded.failed_background_plans += 1;
            }
        }
    }

    /// Re-plans a failed application request from scratch: the middleware's
    /// state now reflects the failure (quarantine, invalidated mappings),
    /// so the new plan routes around it.
    fn fire_replan(&mut self, now: SimTime, token: u64, q: &mut EventQueue<Event>) {
        let Some(e) = self.replans.remove(&token) else {
            return; // Replan tokens are minted once per pending replan
        };
        let rank = self.proc(e.index).rank;
        let req = AppRequest {
            rank,
            file: e.file,
            kind: e.kind,
            offset: e.offset,
            len: e.len,
            data: e.data.clone(),
        };
        let plan = self.middleware.plan_io(&mut self.cluster, now, &req);
        let owner = PlanOwner::Process {
            index: e.index,
            issued: e.issued,
            file: e.file,
            kind: e.kind,
            offset: e.offset,
            len: e.len,
            read_buf: None,
            data: e.data,
            replans: e.replans,
        };
        self.launch_plan(now, plan, owner, q);
    }

    fn complete_plan(&mut self, now: SimTime, exec: PlanExec, q: &mut EventQueue<Event>) {
        if exec.plan.tag != 0 {
            self.middleware
                .on_plan_complete(&mut self.cluster, now, exec.plan.tag);
        }
        self.finish_plan_owner(now, exec.owner, q);
    }

    fn finish_plan_owner(&mut self, now: SimTime, owner: PlanOwner, q: &mut EventQueue<Event>) {
        match owner {
            PlanOwner::Process {
                index,
                issued,
                kind,
                offset,
                len,
                read_buf,
                ..
            } => {
                self.report.kind_mut(kind).record(issued, now, len);
                let rank = self.proc(index).rank;
                for obs in &mut self.observers {
                    obs.on_request_complete(now, rank, kind, offset, len, issued);
                    if kind == IoKind::Read {
                        obs.on_read_data(rank, offset, len, read_buf.as_deref());
                    }
                }
                q.push(now, Event::ProcessWake(index));
            }
            PlanOwner::Background => {
                self.report.background_plans += 1;
            }
        }
    }

    fn background_wake(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        self.background_armed = false;
        let poll = self.middleware.poll_background(&mut self.cluster, now);
        for plan in poll.plans {
            self.launch_plan(now, plan, PlanOwner::Background, q);
        }
        if let Some(next) = poll.next_wake {
            // Normal runs re-arm while foreground work can still create new
            // cache state; draining re-arms while the middleware reports
            // pending background work.
            let rearm = if self.drain_mode {
                poll.work_pending
            } else {
                self.finished < self.procs.len()
            };
            if rearm {
                assert!(next > now, "background next_wake must move forward");
                q.push(next, Event::BackgroundWake);
                self.background_armed = true;
            }
        }
    }
}

fn exec_lead_in(exec: &PlanExec) -> s4d_sim::SimDuration {
    exec.plan.lead_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::StockMiddleware;
    use crate::script::script;
    use s4d_sim::stats::MIB;

    fn small_cluster() -> Cluster {
        Cluster::paper_testbed_small(3)
    }

    #[test]
    fn single_process_write_read_roundtrip_timing() {
        let scripts = vec![script()
            .open("f")
            .write(0, 0, 128 * 1024)
            .read(0, 0, 128 * 1024)
            .close(0)
            .build()];
        let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 1);
        let rep = r.run();
        assert_eq!(rep.app_ops(IoKind::Write), 1);
        assert_eq!(rep.app_ops(IoKind::Read), 1);
        assert!(rep.writes.throughput_mibs() > 0.0);
        assert!(rep.end_time > SimTime::ZERO);
        assert_eq!(rep.tiers.c_ops, 0, "stock never touches CServers");
        assert_eq!(rep.tiers.d_ops, 2);
        assert_eq!(rep.tiers.d_bytes, 2 * 128 * 1024);
    }

    #[test]
    fn functional_data_round_trips_through_servers() {
        struct Capture(std::rc::Rc<std::cell::RefCell<Vec<Vec<u8>>>>);
        impl IoObserver for Capture {
            fn on_read_data(&mut self, _r: Rank, _o: u64, _l: u64, data: Option<&[u8]>) {
                self.0
                    .borrow_mut()
                    .push(data.expect("functional data").to_vec());
            }
        }
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let scripts = vec![script()
            .open("f")
            .write_bytes(0, 64 * 1024, payload.clone())
            .read(0, 64 * 1024, payload.len() as u64)
            .close(0)
            .build()];
        let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 2);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        r.add_observer(Box::new(Capture(got.clone())));
        r.run();
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(
            got[0], payload,
            "bytes must survive striping and reassembly"
        );
    }

    #[test]
    fn barrier_synchronises_processes() {
        // Process 0 does a long write before the barrier; process 1 reaches
        // the barrier immediately. Both must finish their post-barrier ops
        // no earlier than the long write's completion.
        let scripts = vec![
            script()
                .open("a")
                .write(0, 0, 8 * MIB as u64)
                .barrier()
                .write(0, 8 * MIB as u64, 4096)
                .build(),
            script().open("b").barrier().write(0, 0, 4096).build(),
        ];
        let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 3);
        let rep = r.run();
        assert_eq!(rep.app_ops(IoKind::Write), 3);
        // The two post-barrier writes complete after the big one started.
        assert!(rep.writes.span() > SimDuration::ZERO);
    }

    #[test]
    fn many_processes_share_servers() {
        let scripts: Vec<_> = (0..8)
            .map(|p| {
                script()
                    .open("shared")
                    .write(0, p as u64 * MIB as u64, 256 * 1024)
                    .close(0)
                    .build()
            })
            .collect();
        let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 4);
        let rep = r.run();
        assert_eq!(rep.app_ops(IoKind::Write), 8);
        // Queueing must make the span exceed any single service time.
        assert!(rep.writes.span() > SimDuration::from_millis(1));
    }

    #[test]
    fn think_time_delays_processes() {
        let scripts = vec![script()
            .open("f")
            .think(SimDuration::from_secs(1))
            .write(0, 0, 4096)
            .build()];
        let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 5);
        let rep = r.run();
        assert!(rep.writes.first_issue.unwrap() >= SimTime::from_secs(1));
    }

    #[test]
    fn deterministic_runs() {
        let make = || {
            let scripts: Vec<_> = (0..4)
                .map(|p| {
                    script()
                        .open("shared")
                        .write(0, p as u64 * 1_000_000, 100_000)
                        .read(0, ((p + 1) % 4) as u64 * 1_000_000, 100_000)
                        .build()
                })
                .collect();
            let mut r = Runner::new(
                Cluster::paper_testbed(77),
                StockMiddleware::new(),
                scripts,
                6,
            );
            r.run()
        };
        let a = make();
        let b = make();
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.events, b.events);
        assert_eq!(a.writes.meter, b.writes.meter);
    }

    #[test]
    fn seek_and_cursor_io_follow_mpi_semantics() {
        struct Capture(std::rc::Rc<std::cell::RefCell<Vec<(u64, u64)>>>);
        impl IoObserver for Capture {
            fn on_request_complete(
                &mut self,
                _now: SimTime,
                _rank: Rank,
                _kind: IoKind,
                offset: u64,
                len: u64,
                _issued: SimTime,
            ) {
                self.0.borrow_mut().push((offset, len));
            }
        }
        // seek(4096); write_cur(100); write_cur(50): cursor advances;
        // an explicit-offset write does NOT move the cursor (MPI
        // individual-file-pointer semantics); read_cur resumes after it.
        let scripts = vec![script()
            .open("f")
            .seek(0, 4096)
            .write_cur(0, 100)
            .write_cur(0, 50)
            .write(0, 0, 10)
            .read_cur(0, 20)
            .close(0)
            .build()];
        let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 8);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        r.add_observer(Box::new(Capture(got.clone())));
        r.run();
        assert_eq!(
            *got.borrow(),
            vec![(4096, 100), (4196, 50), (0, 10), (4246, 20)]
        );
    }

    #[test]
    fn reopened_slot_resets_cursor() {
        let scripts = vec![script()
            .open("a")
            .seek(0, 1_000_000)
            .close(0)
            .open("b") // reuses slot 0: cursor must restart at 0
            .write_cur(0, 64)
            .build()];
        struct Capture(std::rc::Rc<std::cell::RefCell<Vec<u64>>>);
        impl IoObserver for Capture {
            fn on_request_complete(
                &mut self,
                _n: SimTime,
                _r: Rank,
                _k: IoKind,
                offset: u64,
                _l: u64,
                _i: SimTime,
            ) {
                self.0.borrow_mut().push(offset);
            }
        }
        let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 9);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        r.add_observer(Box::new(Capture(got.clone())));
        r.run();
        assert_eq!(*got.borrow(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "used unopened handle")]
    fn bad_handle_panics() {
        let scripts = vec![script().write(0, 0, 4096).build()];
        Runner::new(small_cluster(), StockMiddleware::new(), scripts, 7).run();
    }

    /// Stock middleware plus a fixed retry policy — exercises the
    /// runner's retry and re-plan machinery without the cache layer.
    struct RetryingStock {
        inner: StockMiddleware,
        max_attempts: u32,
    }

    impl Middleware for RetryingStock {
        fn open(
            &mut self,
            cluster: &mut Cluster,
            rank: Rank,
            name: &str,
        ) -> Result<s4d_pfs::FileId, crate::types::MiddlewareError> {
            self.inner.open(cluster, rank, name)
        }

        fn plan_io(&mut self, cluster: &mut Cluster, now: SimTime, req: &AppRequest) -> Plan {
            self.inner.plan_io(cluster, now, req)
        }

        fn close(
            &mut self,
            cluster: &mut Cluster,
            rank: Rank,
            file: s4d_pfs::FileId,
        ) -> Result<(), crate::types::MiddlewareError> {
            self.inner.close(cluster, rank, file)
        }

        fn on_io_error(
            &mut self,
            _cluster: &mut Cluster,
            _now: SimTime,
            failure: &crate::types::SubIoFailure,
        ) -> ErrorDirective {
            if failure.attempts < self.max_attempts {
                ErrorDirective::Retry {
                    delay: SimDuration::from_millis(1),
                }
            } else {
                ErrorDirective::GiveUp
            }
        }

        fn name(&self) -> &str {
            "retrying-stock"
        }
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        use s4d_pfs::{FaultPlan, ServerFault};
        let mut cluster = small_cluster();
        for s in 0..cluster.opfs().server_count() {
            cluster
                .opfs_mut()
                .set_fault_plan(
                    s,
                    FaultPlan::new().with(ServerFault::TransientErrors {
                        from: SimTime::ZERO,
                        until: SimTime::from_secs(10_000),
                        error_rate: 0.3,
                    }),
                )
                .unwrap();
        }
        let payload: Vec<u8> = (0..300_000u32).map(|i| (i % 241) as u8).collect();
        let scripts = vec![script()
            .open("f")
            .write_bytes(0, 0, payload.clone())
            .read(0, 0, payload.len() as u64)
            .close(0)
            .build()];
        let mw = RetryingStock {
            inner: StockMiddleware::new(),
            max_attempts: 50,
        };
        let mut r = Runner::new(cluster, mw, scripts, 11);
        struct Capture(std::rc::Rc<std::cell::RefCell<Vec<Vec<u8>>>>);
        impl IoObserver for Capture {
            fn on_read_data(&mut self, _r: Rank, _o: u64, _l: u64, data: Option<&[u8]>) {
                self.0
                    .borrow_mut()
                    .push(data.expect("functional data").to_vec());
            }
        }
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        r.add_observer(Box::new(Capture(got.clone())));
        let rep = r.run();
        assert!(rep.degraded.io_errors > 0, "30% error rate must bite");
        assert_eq!(
            rep.degraded.retries, rep.degraded.io_errors,
            "every error was retried, none gave up"
        );
        assert_eq!(rep.degraded.replans, 0);
        assert_eq!(got.borrow()[0], payload, "retries must preserve bytes");
    }

    #[test]
    fn plan_failure_replans_until_the_outage_ends() {
        use s4d_pfs::{FaultPlan, ServerFault};
        let mut cluster = small_cluster();
        // Every DServer is down for the first 2 seconds; the write issued
        // at t≈0 must fail, re-plan with backoff, and succeed afterwards.
        for s in 0..cluster.opfs().server_count() {
            cluster
                .opfs_mut()
                .set_fault_plan(
                    s,
                    FaultPlan::new().with(ServerFault::Crash {
                        at: SimTime::ZERO,
                        recover_at: SimTime::from_secs(2),
                    }),
                )
                .unwrap();
        }
        let scripts = vec![script().open("f").write(0, 0, 64 * 1024).close(0).build()];
        let mw = RetryingStock {
            inner: StockMiddleware::new(),
            max_attempts: 1, // offline: retrying the same server is futile
        };
        let mut r = Runner::new(cluster, mw, scripts, 12);
        let rep = r.run();
        assert_eq!(
            rep.app_ops(IoKind::Write),
            1,
            "request completes eventually"
        );
        assert!(rep.degraded.replans > 0);
        assert!(
            rep.end_time >= SimTime::from_secs(2),
            "success only after recovery"
        );
    }
}
