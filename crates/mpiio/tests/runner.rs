//! Integration tests for the discrete-event runner: script execution,
//! barriers, functional data round-trips, determinism, and the retry /
//! re-plan machinery — all through the public crate surface.

use std::cell::RefCell;
use std::rc::Rc;

use s4d_mpiio::{
    script, AppRequest, Cluster, ErrorDirective, IoObserver, Middleware, MiddlewareError, Plan,
    Rank, Runner, StockMiddleware, SubIoFailure,
};
use s4d_pfs::FileId;
use s4d_sim::stats::MIB;
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;

fn small_cluster() -> Cluster {
    Cluster::paper_testbed_small(3)
}

#[test]
fn single_process_write_read_roundtrip_timing() {
    let scripts = vec![script()
        .open("f")
        .write(0, 0, 128 * 1024)
        .read(0, 0, 128 * 1024)
        .close(0)
        .build()];
    let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 1);
    let rep = r.run();
    assert_eq!(rep.app_ops(IoKind::Write), 1);
    assert_eq!(rep.app_ops(IoKind::Read), 1);
    assert!(rep.writes.throughput_mibs() > 0.0);
    assert!(rep.end_time > SimTime::ZERO);
    assert_eq!(rep.tiers.c_ops, 0, "stock never touches CServers");
    assert_eq!(rep.tiers.d_ops, 2);
    assert_eq!(rep.tiers.d_bytes, 2 * 128 * 1024);
}

#[test]
fn functional_data_round_trips_through_servers() {
    struct Capture(Rc<RefCell<Vec<Vec<u8>>>>);
    impl IoObserver for Capture {
        fn on_read_data(&mut self, _r: Rank, _o: u64, _l: u64, data: Option<&[u8]>) {
            self.0
                .borrow_mut()
                .push(data.expect("functional data").to_vec());
        }
    }
    let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    let scripts = vec![script()
        .open("f")
        .write_bytes(0, 64 * 1024, payload.clone())
        .read(0, 64 * 1024, payload.len() as u64)
        .close(0)
        .build()];
    let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 2);
    let got = Rc::new(RefCell::new(Vec::new()));
    r.add_observer(Box::new(Capture(got.clone())));
    r.run();
    let got = got.borrow();
    assert_eq!(got.len(), 1);
    assert_eq!(
        got[0], payload,
        "bytes must survive striping and reassembly"
    );
}

#[test]
fn barrier_synchronises_processes() {
    // Process 0 does a long write before the barrier; process 1 reaches
    // the barrier immediately. Both must finish their post-barrier ops
    // no earlier than the long write's completion.
    let scripts = vec![
        script()
            .open("a")
            .write(0, 0, 8 * MIB as u64)
            .barrier()
            .write(0, 8 * MIB as u64, 4096)
            .build(),
        script().open("b").barrier().write(0, 0, 4096).build(),
    ];
    let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 3);
    let rep = r.run();
    assert_eq!(rep.app_ops(IoKind::Write), 3);
    // The two post-barrier writes complete after the big one started.
    assert!(rep.writes.span() > SimDuration::ZERO);
}

#[test]
fn many_processes_share_servers() {
    let scripts: Vec<_> = (0..8)
        .map(|p| {
            script()
                .open("shared")
                .write(0, p as u64 * MIB as u64, 256 * 1024)
                .close(0)
                .build()
        })
        .collect();
    let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 4);
    let rep = r.run();
    assert_eq!(rep.app_ops(IoKind::Write), 8);
    // Queueing must make the span exceed any single service time.
    assert!(rep.writes.span() > SimDuration::from_millis(1));
}

#[test]
fn think_time_delays_processes() {
    let scripts = vec![script()
        .open("f")
        .think(SimDuration::from_secs(1))
        .write(0, 0, 4096)
        .build()];
    let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 5);
    let rep = r.run();
    assert!(rep.writes.first_issue.unwrap() >= SimTime::from_secs(1));
}

#[test]
fn deterministic_runs() {
    let make = || {
        let scripts: Vec<_> = (0..4)
            .map(|p| {
                script()
                    .open("shared")
                    .write(0, p as u64 * 1_000_000, 100_000)
                    .read(0, ((p + 1) % 4) as u64 * 1_000_000, 100_000)
                    .build()
            })
            .collect();
        let mut r = Runner::new(
            Cluster::paper_testbed(77),
            StockMiddleware::new(),
            scripts,
            6,
        );
        r.run()
    };
    let a = make();
    let b = make();
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.writes.meter, b.writes.meter);
}

#[test]
fn seek_and_cursor_io_follow_mpi_semantics() {
    struct Capture(Rc<RefCell<Vec<(u64, u64)>>>);
    impl IoObserver for Capture {
        fn on_request_complete(
            &mut self,
            _now: SimTime,
            _rank: Rank,
            _kind: IoKind,
            offset: u64,
            len: u64,
            _issued: SimTime,
        ) {
            self.0.borrow_mut().push((offset, len));
        }
    }
    // seek(4096); write_cur(100); write_cur(50): cursor advances;
    // an explicit-offset write does NOT move the cursor (MPI
    // individual-file-pointer semantics); read_cur resumes after it.
    let scripts = vec![script()
        .open("f")
        .seek(0, 4096)
        .write_cur(0, 100)
        .write_cur(0, 50)
        .write(0, 0, 10)
        .read_cur(0, 20)
        .close(0)
        .build()];
    let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 8);
    let got = Rc::new(RefCell::new(Vec::new()));
    r.add_observer(Box::new(Capture(got.clone())));
    r.run();
    assert_eq!(
        *got.borrow(),
        vec![(4096, 100), (4196, 50), (0, 10), (4246, 20)]
    );
}

#[test]
fn reopened_slot_resets_cursor() {
    let scripts = vec![script()
        .open("a")
        .seek(0, 1_000_000)
        .close(0)
        .open("b") // reuses slot 0: cursor must restart at 0
        .write_cur(0, 64)
        .build()];
    struct Capture(Rc<RefCell<Vec<u64>>>);
    impl IoObserver for Capture {
        fn on_request_complete(
            &mut self,
            _n: SimTime,
            _r: Rank,
            _k: IoKind,
            offset: u64,
            _l: u64,
            _i: SimTime,
        ) {
            self.0.borrow_mut().push(offset);
        }
    }
    let mut r = Runner::new(small_cluster(), StockMiddleware::new(), scripts, 9);
    let got = Rc::new(RefCell::new(Vec::new()));
    r.add_observer(Box::new(Capture(got.clone())));
    r.run();
    assert_eq!(*got.borrow(), vec![0]);
}

#[test]
#[should_panic(expected = "used unopened handle")]
fn bad_handle_panics() {
    let scripts = vec![script().write(0, 0, 4096).build()];
    Runner::new(small_cluster(), StockMiddleware::new(), scripts, 7).run();
}

/// Stock middleware plus a fixed retry policy — exercises the
/// runner's retry and re-plan machinery without the cache layer.
struct RetryingStock {
    inner: StockMiddleware,
    max_attempts: u32,
}

impl Middleware for RetryingStock {
    fn open(
        &mut self,
        cluster: &mut Cluster,
        rank: Rank,
        name: &str,
    ) -> Result<FileId, MiddlewareError> {
        self.inner.open(cluster, rank, name)
    }

    fn plan_io(&mut self, cluster: &mut Cluster, now: SimTime, req: &AppRequest) -> Plan {
        self.inner.plan_io(cluster, now, req)
    }

    fn close(
        &mut self,
        cluster: &mut Cluster,
        rank: Rank,
        file: FileId,
    ) -> Result<(), MiddlewareError> {
        self.inner.close(cluster, rank, file)
    }

    fn on_io_error(
        &mut self,
        _cluster: &mut Cluster,
        _now: SimTime,
        failure: &SubIoFailure,
    ) -> ErrorDirective {
        if failure.attempts < self.max_attempts {
            ErrorDirective::Retry {
                delay: SimDuration::from_millis(1),
            }
        } else {
            ErrorDirective::GiveUp
        }
    }

    fn name(&self) -> &str {
        "retrying-stock"
    }
}

#[test]
fn transient_errors_are_retried_to_success() {
    use s4d_pfs::{FaultPlan, ServerFault};
    let mut cluster = small_cluster();
    for s in 0..cluster.opfs().server_count() {
        cluster
            .opfs_mut()
            .set_fault_plan(
                s,
                FaultPlan::new().with(ServerFault::TransientErrors {
                    from: SimTime::ZERO,
                    until: SimTime::from_secs(10_000),
                    error_rate: 0.3,
                }),
            )
            .unwrap();
    }
    let payload: Vec<u8> = (0..300_000u32).map(|i| (i % 241) as u8).collect();
    let scripts = vec![script()
        .open("f")
        .write_bytes(0, 0, payload.clone())
        .read(0, 0, payload.len() as u64)
        .close(0)
        .build()];
    let mw = RetryingStock {
        inner: StockMiddleware::new(),
        max_attempts: 50,
    };
    let mut r = Runner::new(cluster, mw, scripts, 11);
    struct Capture(Rc<RefCell<Vec<Vec<u8>>>>);
    impl IoObserver for Capture {
        fn on_read_data(&mut self, _r: Rank, _o: u64, _l: u64, data: Option<&[u8]>) {
            self.0
                .borrow_mut()
                .push(data.expect("functional data").to_vec());
        }
    }
    let got = Rc::new(RefCell::new(Vec::new()));
    r.add_observer(Box::new(Capture(got.clone())));
    let rep = r.run();
    assert!(rep.degraded.io_errors > 0, "30% error rate must bite");
    assert_eq!(
        rep.degraded.retries, rep.degraded.io_errors,
        "every error was retried, none gave up"
    );
    assert_eq!(rep.degraded.replans, 0);
    assert_eq!(got.borrow()[0], payload, "retries must preserve bytes");
}

#[test]
fn plan_failure_replans_until_the_outage_ends() {
    use s4d_pfs::{FaultPlan, ServerFault};
    let mut cluster = small_cluster();
    // Every DServer is down for the first 2 seconds; the write issued
    // at t≈0 must fail, re-plan with backoff, and succeed afterwards.
    for s in 0..cluster.opfs().server_count() {
        cluster
            .opfs_mut()
            .set_fault_plan(
                s,
                FaultPlan::new().with(ServerFault::Crash {
                    at: SimTime::ZERO,
                    recover_at: SimTime::from_secs(2),
                }),
            )
            .unwrap();
    }
    let scripts = vec![script().open("f").write(0, 0, 64 * 1024).close(0).build()];
    let mw = RetryingStock {
        inner: StockMiddleware::new(),
        max_attempts: 1, // offline: retrying the same server is futile
    };
    let mut r = Runner::new(cluster, mw, scripts, 12);
    let rep = r.run();
    assert_eq!(
        rep.app_ops(IoKind::Write),
        1,
        "request completes eventually"
    );
    assert!(rep.degraded.replans > 0);
    assert!(
        rep.end_time >= SimTime::from_secs(2),
        "success only after recovery"
    );
}
