//! Hand-rolled JSON rendering for chaos reports and sweep summaries.
//!
//! The workspace deliberately carries no JSON dependency; the report
//! shapes are flat and fully known, so the writer below covers exactly
//! what the CI consumers parse: string escaping, integers, booleans, and
//! arrays of the two.

use crate::exec::ChaosReport;

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn string_array(items: &[String]) -> String {
    let parts: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", parts.join(","))
}

/// Renders one run's report as a single JSON object.
pub fn report_json(r: &ChaosReport) -> String {
    let violations: Vec<String> = r
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"invariant\":{},\"detail\":{}}}",
                json_string(&v.invariant),
                json_string(&v.detail)
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"seed\":{},\"injected_bug\":{},\"ok\":{},",
            "\"events\":{},\"ops\":{},\"crashes\":{},\"recoveries\":{},",
            "\"plan_failures\":{},\"reads_checked\":{},\"dirty_bytes_lost\":{},",
            "\"fingerprint\":\"{:016x}\",\"violations\":[{}]}}"
        ),
        r.seed,
        r.injected_bug,
        !r.failed(),
        string_array(&r.events),
        r.ops,
        r.crashes,
        r.recoveries,
        r.plan_failures,
        r.reads_checked,
        r.dirty_bytes_lost,
        r.fingerprint,
        violations.join(",")
    )
}

/// Renders a sweep summary: per-seed one-line reports plus totals.
pub fn sweep_json(reports: &[ChaosReport]) -> String {
    let failed: Vec<u64> = reports
        .iter()
        .filter(|r| r.failed())
        .map(|r| r.seed)
        .collect();
    let lines: Vec<String> = reports.iter().map(report_json).collect();
    let failed_list: Vec<String> = failed.iter().map(|s| s.to_string()).collect();
    format!(
        concat!(
            "{{\"runs\":{},\"failures\":{},\"failed_seeds\":[{}],",
            "\"reports\":[\n{}\n]}}"
        ),
        reports.len(),
        failed.len(),
        failed_list.join(","),
        lines.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ChaosReport;
    use crate::oracle::Violation;

    fn sample(seed: u64, fail: bool) -> ChaosReport {
        ChaosReport {
            seed,
            injected_bug: false,
            events: vec!["mw-crash@3 budget=512".to_owned()],
            ops: 10,
            crashes: 1,
            recoveries: 2,
            plan_failures: 0,
            reads_checked: 4096,
            dirty_bytes_lost: 0,
            fingerprint: 0xdead_beef,
            violations: if fail {
                vec![Violation {
                    invariant: "read-consistency".to_owned(),
                    detail: "byte 5: got 1, acknowledged 2, \"quoted\"".to_owned(),
                }]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn escapes_and_renders() {
        let j = report_json(&sample(3, true));
        assert!(j.contains("\"seed\":3"));
        assert!(j.contains("\"ok\":false"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"fingerprint\":\"00000000deadbeef\""));
    }

    #[test]
    fn sweep_counts_failures() {
        let j = sweep_json(&[sample(1, false), sample(2, true)]);
        assert!(j.contains("\"runs\":2"));
        assert!(j.contains("\"failures\":1"));
        assert!(j.contains("\"failed_seeds\":[2]"));
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
