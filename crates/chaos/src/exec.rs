//! The chaos executor: drives one seeded [`Schedule`] through the
//! middleware as a manual functional runner — every planned op applied
//! byte-for-byte against the cluster stores — while firing the schedule's
//! fault events and checking the [`Oracle`] continuously.
//!
//! The driver mirrors the crash-torture idiom: application data payloads
//! and plan-carried journal frames route through the incarnation's
//! [`CrashFuse`]; the middleware's own internal durable effects (sync
//! appends, eviction discards, flush/fetch copies, checkpoints) charge
//! the same fuse through its attached hooks. When the fuse dies the
//! middleware is discarded and rebuilt from nothing but the cluster's
//! persisted bytes — twice, to prove recovery re-enterable — and the run
//! continues on the recovered instance. ENOSPC and media faults surface
//! through the real [`Middleware::on_io_error`] seam; a fail-stop wipes a
//! CServer's stores and notifies the middleware with a synthetic
//! `Offline` failure, exactly as the timed runner would.

use std::cell::RefCell;
use std::rc::Rc;

use s4d_cache::{CrashFuse, CrashSite, RecoveryReport, S4dCache, S4dConfig};
use s4d_cost::CostParams;
use s4d_mpiio::{
    AppOp, AppRequest, Cluster, ErrorDirective, Middleware, Plan, PlannedIo, Rank, SubIoFailure,
    Tier,
};
use s4d_pfs::{FaultPlan, FileId, IoFault, PfsError, ServerFault};
use s4d_sim::SimTime;
use s4d_storage::{presets, IoKind};

use crate::oracle::{Oracle, Violation};
use crate::schedule::{ChaosEvent, Schedule};

const KIB: u64 = 1024;
/// "Never recovers" horizon for fail-stop crash windows.
const FAR_FUTURE: u64 = 1_000_000_000;

/// Cost parameters for chaos runs: the paper's small testbed, matching
/// the crash-torture suite so fault behavior is comparable.
fn params() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
    .with_cserver_op_overhead(300.0e-6, 16 * KIB)
}

/// The outcome of one chaos run — everything the CLI report and the
/// minimizer need, and nothing nondeterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The schedule seed.
    pub seed: u64,
    /// Whether the deliberate durability bug was injected.
    pub injected_bug: bool,
    /// The fault script, in firing order (described).
    pub events: Vec<String>,
    /// Application I/O operations executed.
    pub ops: u32,
    /// Middleware crashes taken (fuse deaths).
    pub crashes: u32,
    /// Recovered instances adopted (each crash plus the final power cut).
    pub recoveries: u32,
    /// Plans that failed through the error path (ENOSPC / media / offline).
    pub plan_failures: u32,
    /// Bytes verified against the shadow model.
    pub reads_checked: u64,
    /// Dirty bytes reported lost across all incarnations (re-derived
    /// drops can repeat across recoveries; this is an observation count,
    /// not a deduplicated total).
    pub dirty_bytes_lost: u64,
    /// Deterministic digest of every applied op, read result, and
    /// recovery report — byte-identical across replays of the same seed.
    pub fingerprint: u64,
    /// Invariant violations (empty for a healthy run).
    pub violations: Vec<Violation>,
}

impl ChaosReport {
    /// True when any invariant was violated.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Runs one schedule to completion and returns its report.
pub fn run(schedule: &Schedule, inject_bug: bool) -> ChaosReport {
    let cluster = Cluster::paper_testbed_small(schedule.workload.cluster_seed);
    let n_servers = cluster.cpfs().server_count();
    let fuse = CrashFuse::unlimited().shared();
    let wl = &schedule.workload;
    let mut config = S4dConfig::new(wl.capacity)
        .with_journal_batch(1)
        .with_shards(wl.shards);
    if wl.ckpt_records != u64::MAX {
        config = config.with_checkpoint_thresholds(wl.ckpt_records, u64::MAX);
    }
    config.chaos_bug_skip_journal = inject_bug;
    let mut mw = S4dCache::new(config, params());
    mw.attach_crash_fuse(fuse.clone());
    let mut ex = Executor {
        schedule: schedule.clone(),
        cluster,
        mw,
        fuse,
        oracle: Oracle::new(Vec::new()),
        file: None,
        now_s: 0,
        fired: vec![false; schedule.events.len()],
        scripted: vec![Vec::new(); n_servers],
        pending_recovery_budget: None,
        media_fired: false,
        enospc_fired: false,
        crash_events_fired: false,
        journal_device_lost: false,
        ops: 0,
        crashes: 0,
        recoveries: 0,
        plan_failures: 0,
        dirty_lost: 0,
        nospace_seen: 0,
        media_seen: 0,
        inject_bug,
        fp: Fp::new(),
    };
    ex.drive();
    ex.finish()
}

/// [`run`] with engine panics converted into a violation, so one broken
/// seed cannot abort a sweep (and the minimizer can shrink panicking
/// schedules too).
pub fn run_caught(schedule: &Schedule, inject_bug: bool) -> ChaosReport {
    let sched = schedule.clone();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run(&sched, inject_bug)
    })) {
        Ok(report) => report,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            ChaosReport {
                seed: schedule.seed,
                injected_bug: inject_bug,
                events: schedule.events.iter().map(|e| e.describe()).collect(),
                ops: 0,
                crashes: 0,
                recoveries: 0,
                plan_failures: 0,
                reads_checked: 0,
                dirty_bytes_lost: 0,
                fingerprint: 0,
                violations: vec![Violation {
                    invariant: "engine-panic".to_owned(),
                    detail: msg,
                }],
            }
        }
    }
}

/// FNV-1a fold for the run fingerprint.
struct Fp(u64);

impl Fp {
    fn new() -> Self {
        Fp(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }
    fn word(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

enum ExecStatus {
    /// Every op applied in full.
    Done,
    /// The crash fuse died mid-plan; remaining ops never ran.
    Died,
    /// A sub-request failed and the middleware gave up: the plan failed.
    Failed(String),
}

struct Executor {
    schedule: Schedule,
    cluster: Cluster,
    /// The live incarnation; replaced wholesale at every recovery.
    mw: S4dCache,
    fuse: Rc<RefCell<CrashFuse>>,
    oracle: Oracle,
    file: Option<FileId>,
    now_s: u64,
    fired: Vec<bool>,
    /// Accumulated scripted faults per CServer (`set_fault_plan`
    /// replaces, so compound events must rebuild the whole plan).
    scripted: Vec<Vec<ServerFault>>,
    pending_recovery_budget: Option<u64>,
    media_fired: bool,
    enospc_fired: bool,
    crash_events_fired: bool,
    /// A fail-stop wiped a CServer hosting the journal: any *later*
    /// recovery reads a destroyed journal prefix, so dirty data acked
    /// since then may legitimately revert to OPFS content.
    journal_device_lost: bool,
    ops: u32,
    crashes: u32,
    recoveries: u32,
    plan_failures: u32,
    dirty_lost: u64,
    nospace_seen: u64,
    media_seen: u64,
    inject_bug: bool,
    fp: Fp,
}

impl Executor {
    fn config(&self) -> S4dConfig {
        let wl = &self.schedule.workload;
        let mut c = S4dConfig::new(wl.capacity)
            .with_journal_batch(1)
            .with_shards(wl.shards);
        if wl.ckpt_records != u64::MAX {
            c = c.with_checkpoint_thresholds(wl.ckpt_records, u64::MAX);
        }
        c.chaos_bug_skip_journal = self.inject_bug;
        c
    }

    fn now(&self) -> SimTime {
        SimTime::from_secs(self.now_s)
    }

    fn advance(&mut self) {
        let now = self.now();
        self.cluster.advance_faults(now);
    }

    /// Deterministic payload of the write at the current op index.
    fn payload(&self, offset: u64, len: u64) -> Vec<u8> {
        let tag = self.schedule.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (self.ops as u64).wrapping_mul(0x0100_0000_01b3)
            ^ offset;
        (0..len)
            .map(|j| (tag.wrapping_add(j.wrapping_mul(131)) % 251) as u8 ^ 0x5a)
            .collect()
    }

    // ---- fault-event machinery ------------------------------------------

    fn fire_due_events(&mut self) {
        for i in 0..self.schedule.events.len() {
            if self.fired[i] || self.schedule.events[i].at_op() > self.ops {
                continue;
            }
            self.fired[i] = true;
            let ev = self.schedule.events[i];
            self.fire(&ev);
        }
    }

    fn fire(&mut self, ev: &ChaosEvent) {
        let n = self.cluster.cpfs().server_count();
        match *ev {
            ChaosEvent::MwCrash { budget, .. } => {
                self.fuse = CrashFuse::armed(budget).shared();
                self.mw.attach_crash_fuse(self.fuse.clone());
            }
            ChaosEvent::RecoveryCrash { budget } => {
                self.pending_recovery_budget = Some(budget);
            }
            ChaosEvent::FailStop { server, .. } => {
                self.fail_stop(server as usize % n);
            }
            ChaosEvent::SpaceExhausted {
                server, for_ops, ..
            } => {
                let server = server as usize % n;
                let from = self.now();
                self.scripted[server].push(ServerFault::SpaceExhausted {
                    from,
                    until: SimTime::from_secs(self.now_s + for_ops as u64 + 1),
                });
                self.install(server);
                self.enospc_fired = true;
            }
            ChaosEvent::MediaErrors {
                server,
                map_seed,
                bad_ppm,
                ..
            } => {
                let server = server as usize % n;
                let from = self.now();
                self.scripted[server].push(ServerFault::MediaErrors {
                    from,
                    seed: map_seed,
                    bad_ppm,
                });
                self.install(server);
                self.media_fired = true;
                self.oracle.set_media_active();
            }
            ChaosEvent::Stall { secs, .. } => {
                self.now_s += secs as u64;
                self.advance();
            }
        }
    }

    fn install(&mut self, server: usize) {
        let mut plan = FaultPlan::new();
        for f in &self.scripted[server] {
            plan = plan.with(*f);
        }
        let _ = self.cluster.cpfs_mut().set_fault_plan(server, plan);
    }

    /// A CServer hard-crash: wipe its stores, mark the acked-but-dirty
    /// ranges it doomed as ambiguous (they may revert to OPFS content),
    /// and deliver the `Offline` failure the timed runner would.
    fn fail_stop(&mut self, server: usize) {
        let layout = self.cluster.cpfs().layout();
        let stripe = layout.stripe_size();
        let n = layout.server_count() as u64;
        let file = self.file;
        let doomed: Vec<(u64, u64)> = self
            .mw
            .plane()
            .iter_extents()
            .filter(|(f, _, e)| {
                Some(*f) == file && e.dirty && {
                    let first = e.c_offset / stripe;
                    let last = (e.c_offset + e.len - 1) / stripe;
                    last - first + 1 >= n || (first..=last).any(|k| (k % n) as usize == server)
                }
            })
            .map(|(_, o, e)| (o, e.len))
            .collect();
        if let Some(f) = file {
            for (o, len) in doomed {
                if let Ok(Some(bytes)) = self.cluster.opfs().read_bytes(f, o, len) {
                    self.oracle.mark_wild(o, bytes);
                }
            }
        }
        let at = self.now();
        self.scripted[server].push(ServerFault::Crash {
            at,
            recover_at: SimTime::from_secs(FAR_FUTURE),
        });
        self.install(server);
        // Step past the crash instant so the wipe applies regardless of
        // how the window-edge predicate treats an exact hit.
        self.now_s += 1;
        self.advance();
        let failure = SubIoFailure {
            tier: Tier::CServers,
            server,
            kind: IoKind::Write,
            len: 1,
            error: IoFault::Offline,
            attempts: 1,
            overhead: false,
        };
        let now = self.now();
        let _ = self.mw.on_io_error(&mut self.cluster, now, &failure);
        self.crash_events_fired = true;
        self.journal_device_lost = true;
        if self.fuse.borrow().is_dead() {
            self.crash_and_recover();
        }
    }

    // ---- plan execution --------------------------------------------------

    /// Applies a plan's ops against the functional stores, routing
    /// durable effects through the fuse and faults through
    /// `on_io_error`. `out` receives application read bytes.
    fn exec_plan(&mut self, plan: &Plan, mut out: Option<(&mut [u8], u64)>) -> ExecStatus {
        for phase in &plan.phases {
            for op in phase {
                if self.fuse.borrow().is_dead() {
                    return ExecStatus::Died;
                }
                match op.kind {
                    IoKind::Write => {
                        let Some(data) = &op.data else {
                            // Flush/fetch copy: the engine moves these
                            // bytes itself at plan completion.
                            continue;
                        };
                        let site = if op.app_offset.is_some() {
                            CrashSite::DataWrite
                        } else {
                            CrashSite::JournalWrite
                        };
                        let allowed = self.fuse.borrow_mut().consume(site, op.len);
                        match self.cluster.pfs_mut(op.tier).apply_bytes(
                            op.file,
                            op.offset,
                            allowed,
                            Some(data),
                        ) {
                            Ok(()) => {
                                self.fp.word(op.offset);
                                self.fp.word(allowed);
                                if allowed < op.len {
                                    return ExecStatus::Died;
                                }
                            }
                            Err(e) => {
                                if let Some(st) = self.report_io_error(op, e) {
                                    return st;
                                }
                            }
                        }
                    }
                    IoKind::Read => {
                        match self
                            .cluster
                            .pfs(op.tier)
                            .read_bytes(op.file, op.offset, op.len)
                        {
                            Ok(Some(bytes)) => {
                                if let (Some((buf, base)), Some(app)) = (&mut out, op.app_offset) {
                                    let at = (app - *base) as usize;
                                    buf[at..at + op.len as usize].copy_from_slice(&bytes);
                                }
                            }
                            Ok(None) => {}
                            Err(e) => {
                                if let Some(st) = self.report_io_error(op, e) {
                                    return st;
                                }
                            }
                        }
                    }
                }
            }
        }
        ExecStatus::Done
    }

    /// Reports a faulted sub-request through the middleware's error seam
    /// and maps the directive. Deterministic window faults make
    /// same-instant retries pointless, so both directives fail the plan.
    fn report_io_error(&mut self, op: &PlannedIo, err: PfsError) -> Option<ExecStatus> {
        let (server, fault) = match err {
            PfsError::NoSpace { server } => (server, IoFault::NoSpace),
            PfsError::MediaError { server } => (server, IoFault::Media),
            other => return Some(ExecStatus::Failed(other.to_string())),
        };
        let failure = SubIoFailure {
            tier: op.tier,
            server,
            kind: op.kind,
            len: op.len,
            error: fault,
            attempts: 1,
            overhead: op.app_offset.is_none() && op.kind == IoKind::Write,
        };
        let now = self.now();
        let directive = self.mw.on_io_error(&mut self.cluster, now, &failure);
        match directive {
            ErrorDirective::GiveUp | ErrorDirective::Retry { .. } => Some(ExecStatus::Failed(
                format!("{fault} on {} server {server}", op.tier),
            )),
        }
    }

    fn complete_plan(&mut self, tag: u64) {
        if tag != 0 {
            let now = self.now();
            self.mw.on_plan_complete(&mut self.cluster, now, tag);
        }
    }

    fn fail_plan(&mut self, tag: u64) {
        self.plan_failures += 1;
        if tag != 0 {
            let now = self.now();
            self.mw.on_plan_failed(&mut self.cluster, now, tag);
        }
    }

    // ---- application operations -----------------------------------------

    fn app_write(&mut self, rank: u32, offset: u64, len: u64) {
        let Some(file) = self.file else { return };
        let payload = self.payload(offset, len);
        self.fp.byte(b'w');
        self.fp.word(offset);
        self.fp.word(len);
        for _attempt in 0..2 {
            let req = AppRequest {
                rank: Rank(rank),
                file,
                kind: IoKind::Write,
                offset,
                len,
                data: Some(payload.clone()),
            };
            let now = self.now();
            let plan = self.mw.plan_io(&mut self.cluster, now, &req);
            match self.exec_plan(&plan, None) {
                ExecStatus::Done => {
                    self.complete_plan(plan.tag);
                    if self.fuse.borrow().is_dead() {
                        self.oracle.mark_wild(offset, payload);
                        self.crash_and_recover();
                    } else {
                        self.oracle.ack_write(offset, &payload);
                    }
                    return;
                }
                ExecStatus::Died => {
                    self.oracle.mark_wild(offset, payload);
                    self.crash_and_recover();
                    return;
                }
                ExecStatus::Failed(_) => {
                    self.fail_plan(plan.tag);
                    self.oracle.mark_wild(offset, payload.clone());
                    if self.fuse.borrow().is_dead() {
                        self.crash_and_recover();
                        return;
                    }
                    // Retry once: the health layer may route around the
                    // fault (quarantine, OPFS fallback) on the re-plan.
                }
            }
        }
    }

    fn app_read(&mut self, rank: u32, offset: u64, len: u64) {
        let Some(file) = self.file else { return };
        self.fp.byte(b'r');
        self.fp.word(offset);
        self.fp.word(len);
        let mut last_err = String::new();
        for _attempt in 0..3 {
            let req = AppRequest {
                rank: Rank(rank),
                file,
                kind: IoKind::Read,
                offset,
                len,
                data: None,
            };
            let now = self.now();
            let plan = self.mw.plan_io(&mut self.cluster, now, &req);
            let mut out = vec![0u8; len as usize];
            match self.exec_plan(&plan, Some((&mut out, offset))) {
                ExecStatus::Done => {
                    self.complete_plan(plan.tag);
                    if self.fuse.borrow().is_dead() {
                        self.crash_and_recover();
                        return;
                    }
                    let opfs_now = self
                        .cluster
                        .opfs()
                        .read_bytes(file, offset, len)
                        .ok()
                        .flatten();
                    self.oracle.check_read(offset, &out, opfs_now.as_deref());
                    self.fp.bytes(&out);
                    return;
                }
                ExecStatus::Died => {
                    self.crash_and_recover();
                    return;
                }
                ExecStatus::Failed(e) => {
                    self.fail_plan(plan.tag);
                    last_err = e;
                    if self.fuse.borrow().is_dead() {
                        self.crash_and_recover();
                        return;
                    }
                }
            }
        }
        self.oracle.read_errored(offset, len, &last_err);
    }

    // ---- background draining --------------------------------------------

    fn drain(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.now_s += 1;
            self.advance();
            let now = self.now();
            let poll = self.mw.poll_background(&mut self.cluster, now);
            if self.fuse.borrow().is_dead() {
                self.crash_and_recover();
                continue;
            }
            let mut incarnation_died = false;
            for plan in &poll.plans {
                match self.exec_plan(plan, None) {
                    ExecStatus::Done => {
                        self.complete_plan(plan.tag);
                        if self.fuse.borrow().is_dead() {
                            self.crash_and_recover();
                            incarnation_died = true;
                            break;
                        }
                    }
                    ExecStatus::Died => {
                        self.crash_and_recover();
                        incarnation_died = true;
                        break;
                    }
                    ExecStatus::Failed(_) => {
                        self.fail_plan(plan.tag);
                        if self.fuse.borrow().is_dead() {
                            self.crash_and_recover();
                            incarnation_died = true;
                            break;
                        }
                    }
                }
            }
            if incarnation_died {
                // Remaining plans belonged to the dead incarnation.
                continue;
            }
            if !poll.work_pending {
                break;
            }
        }
    }

    // ---- crash and recovery ---------------------------------------------

    fn crash_and_recover(&mut self) {
        self.crashes += 1;
        self.crash_events_fired = true;
        self.recover_pair();
    }

    /// Recover from cluster state alone — twice — proving re-entry
    /// converges, then adopt the recovered instance. A pending
    /// [`ChaosEvent::RecoveryCrash`] budget makes the first attempt a
    /// fused recovery that may itself die mid-effect.
    fn recover_pair(&mut self) {
        self.harvest_metrics();
        if self.journal_device_lost {
            // The journal prefix predates the wiped store: dirty data
            // acked since the fail-stop may honestly revert to OPFS.
            self.oracle.set_media_active();
        }
        if self.journal_device_lost || self.media_fired {
            // Recovery over a damaged metadata device may read a
            // truncated journal and honestly revert mappings: reads may
            // serve older acked values from here on.
            self.oracle.allow_stale();
        }
        if let Some(budget) = self.pending_recovery_budget.take() {
            let fused = CrashFuse::armed(budget).shared();
            if let Some((mw, report)) = S4dCache::recover_from_cluster_fused(
                self.config(),
                params(),
                &mut self.cluster,
                Some(fused),
            ) {
                // The budget outlived recovery's effects: this IS the
                // recovery; no second crash happened.
                self.adopt(mw, report);
                return;
            }
            // Re-crash mid-recovery: the partial instance is lost and
            // recovery re-enters below from the mutated cluster.
            self.fp.byte(b'R');
        }
        let (mw1, report1) =
            S4dCache::recover_from_cluster(self.config(), params(), &mut self.cluster);
        let e1 = extents_of(&mw1);
        let (mw2, report2) =
            S4dCache::recover_from_cluster(self.config(), params(), &mut self.cluster);
        let e2 = extents_of(&mw2);
        if e1 != e2 {
            self.oracle.violate(
                "recovery-idempotent",
                format!(
                    "extent sets diverge across re-entry ({} vs {} extents)",
                    e1.len(),
                    e2.len()
                ),
            );
        }
        if report2.orphan_bytes_discarded != 0 {
            self.oracle.violate(
                "recovery-idempotent",
                format!(
                    "second recovery swept {} orphan bytes the first left behind",
                    report2.orphan_bytes_discarded
                ),
            );
        }
        drop(mw1);
        self.adopt(mw2, report1);
    }

    fn adopt(&mut self, mut mw: S4dCache, report: RecoveryReport) {
        self.recoveries += 1;
        self.fp.byte(b'V');
        self.fp.word(report.records_replayed());
        self.fp.word(report.dropped_journal_bytes);
        self.fp.word(report.dropped_extents);
        self.fp.word(report.dirty_bytes_lost);
        self.fp.word(report.orphan_bytes_discarded);
        self.fuse = CrashFuse::unlimited().shared();
        mw.attach_crash_fuse(self.fuse.clone());
        self.mw = mw;
        self.check_structure();
        if self.file.is_some() {
            // Applications re-open their files after a middleware restart;
            // this re-associates the cache file.
            let name = self.schedule.workload.ior.file_name.clone();
            for r in 0..self.schedule.workload.ior.processes {
                let _ = self.mw.open(&mut self.cluster, Rank(r), &name);
            }
        }
    }

    /// Structural invariants of the live instance: space accounting
    /// matches the mapping, and every mapped cache byte is present. Reads
    /// the plane's routed aggregates, so the identities hold across every
    /// shard at any shard count (the shard-0 views would miss mutations
    /// the router sent elsewhere).
    fn check_structure(&mut self) {
        let sum: u64 = self.mw.plane().iter_extents().map(|(_, _, e)| e.len).sum();
        if sum != self.mw.plane().mapped_bytes() {
            let mapped = self.mw.plane().mapped_bytes();
            self.oracle.violate(
                "space-identity",
                format!("extent sum {sum} != mapped_bytes {mapped}"),
            );
        }
        if self.mw.plane().allocated() != sum {
            let allocated = self.mw.plane().allocated();
            self.oracle.violate(
                "space-identity",
                format!("allocator reports {allocated} allocated but extents sum to {sum}"),
            );
        }
        if self.mw.plane().allocated() > self.mw.plane().capacity() {
            let (a, c) = (self.mw.plane().allocated(), self.mw.plane().capacity());
            self.oracle.violate(
                "space-identity",
                format!("allocated {a} exceeds capacity {c}"),
            );
        }
        let extents: Vec<_> = self
            .mw
            .plane()
            .iter_extents()
            .map(|(f, o, e)| (f, o, e.c_file, e.c_offset, e.len))
            .collect();
        for (f, o, c_file, c_offset, len) in extents {
            let covered = self
                .cluster
                .cpfs()
                .covered_bytes(c_file, c_offset, len)
                .unwrap_or(0);
            if covered != len {
                self.oracle.violate(
                    "mapping-coverage",
                    format!(
                        "extent ({f:?},{o}) maps {len} cache bytes but only {covered} are present"
                    ),
                );
            }
        }
    }

    /// Folds the outgoing incarnation's counters into the run totals and
    /// checks the metric invariants that must hold at every instant.
    fn harvest_metrics(&mut self) {
        let m = self.mw.metrics();
        let (dirty, over, nospace, media) = (
            m.dirty_bytes_lost,
            m.space_over_releases,
            m.nospace_failures,
            m.media_failures,
        );
        self.dirty_lost += dirty;
        self.nospace_seen += nospace;
        self.media_seen += media;
        if over != 0 {
            self.oracle.violate(
                "space-release",
                format!("{over} space releases exceeded their allocation"),
            );
        }
    }

    // ---- top-level drive -------------------------------------------------

    fn drive(&mut self) {
        let stream = self.schedule.op_stream();
        for (rank, op) in stream {
            match op {
                AppOp::Open { name } => {
                    let opened = self.mw.open(&mut self.cluster, Rank(rank), &name);
                    let Ok(f) = opened else { continue };
                    if self.file.is_none() {
                        self.file = Some(f);
                        let size = self.schedule.workload.ior.file_size;
                        let initial: Vec<u8> = (0..size).map(|i| (i % 241) as u8).collect();
                        let _ = self
                            .cluster
                            .opfs_mut()
                            .apply_bytes(f, 0, size, Some(&initial));
                        self.oracle = Oracle::new(initial);
                        if self.media_fired {
                            self.oracle.set_media_active();
                        }
                    }
                }
                AppOp::Barrier if rank == 0 => {
                    self.drain(40);
                }
                AppOp::Close { .. } => {
                    if let Some(f) = self.file {
                        let _ = self.mw.close(&mut self.cluster, Rank(rank), f);
                    }
                }
                AppOp::Io {
                    kind, offset, len, ..
                } => {
                    self.fire_due_events();
                    self.now_s += 1;
                    self.advance();
                    match kind {
                        IoKind::Write => self.app_write(rank, offset, len),
                        IoKind::Read => self.app_read(rank, offset, len),
                    }
                    self.ops += 1;
                    if self.ops.is_multiple_of(4) {
                        self.drain(1);
                    }
                }
                _ => {}
            }
        }
    }

    /// Final drain, power-cut recovery, full read-back, and the metric
    /// reconciliation, producing the report.
    fn finish(mut self) -> ChaosReport {
        self.drain(60);
        // Power cut: recover from cluster state even if nothing crashed,
        // and verify the whole file through the recovered instance.
        self.recover_pair();
        if self.file.is_some() {
            let size = self.schedule.workload.ior.file_size;
            let step = (64 * KIB).min(size);
            let mut offset = 0;
            while offset < size {
                let len = step.min(size - offset);
                self.app_read(0, offset, len);
                offset += len;
            }
        }
        self.harvest_metrics();
        if self.dirty_lost > 0 && !self.crash_events_fired {
            self.oracle.violate(
                "metrics-reconcile",
                format!(
                    "{} dirty bytes reported lost but no crash event fired",
                    self.dirty_lost
                ),
            );
        }
        if self.media_seen > 0 && !self.media_fired {
            self.oracle.violate(
                "metrics-reconcile",
                format!("{} media failures without a media event", self.media_seen),
            );
        }
        if self.nospace_seen > 0 && !self.enospc_fired {
            self.oracle.violate(
                "metrics-reconcile",
                format!(
                    "{} ENOSPC failures without a space-exhaustion event",
                    self.nospace_seen
                ),
            );
        }
        self.fp.word(self.ops as u64);
        self.fp.word(self.crashes as u64);
        self.fp.word(self.recoveries as u64);
        self.fp.word(self.plan_failures as u64);
        for v in self.oracle.violations() {
            self.fp.bytes(v.invariant.as_bytes());
        }
        ChaosReport {
            seed: self.schedule.seed,
            injected_bug: self.inject_bug,
            events: self.schedule.events.iter().map(|e| e.describe()).collect(),
            ops: self.ops,
            crashes: self.crashes,
            recoveries: self.recoveries,
            plan_failures: self.plan_failures,
            reads_checked: self.oracle.reads_checked,
            dirty_bytes_lost: self.dirty_lost,
            fingerprint: self.fp.0,
            violations: self.oracle.violations().to_vec(),
        }
    }
}

/// The recovered mapping as a comparable value (across every shard).
fn extents_of(mw: &S4dCache) -> Vec<(u64, u64, u64, u64, u64, bool)> {
    let mut v: Vec<_> = mw
        .plane()
        .iter_extents()
        .map(|(f, o, e)| (f.0, o, e.len, e.c_file.0, e.c_offset, e.dirty))
        .collect();
    v.sort_unstable();
    v
}
