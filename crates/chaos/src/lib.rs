//! `s4d-chaos` — deterministic compound-fault simulation for the S4D
//! middleware.
//!
//! One chaos run draws a random workload and a fault script from a
//! single seed ([`Schedule::generate`]), drives the workload through the
//! real middleware as a manual functional runner while firing the faults
//! ([`run`]), and checks a global invariant [`Oracle`] continuously:
//! acknowledged clean data is never lost, reads are byte-exact or
//! correctly ambiguous, recovery converges and is idempotent, space
//! accounting holds, and metrics reconcile with the faults actually
//! fired. Failing seeds shrink to a 1-minimal event list with a
//! replayable repro file ([`minimize()`]).
//!
//! Everything is a pure function of the seed: the same seed produces a
//! byte-identical run and report (compare [`ChaosReport::fingerprint`]),
//! which is what CI's determinism check asserts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod minimize;
pub mod oracle;
pub mod report;
pub mod rng;
pub mod schedule;

pub use exec::{run, run_caught, ChaosReport};
pub use minimize::{minimize, MinimizeResult, Repro};
pub use oracle::{Oracle, Violation};
pub use report::{report_json, sweep_json};
pub use rng::ChaosRng;
pub use schedule::{ChaosEvent, Schedule, WorkloadSpec};
