//! The global invariant oracle: a shadow model of what the middleware
//! has promised, checked against what it actually serves.
//!
//! The shadow holds the *acknowledged* content of the application file.
//! Operations whose outcome the fault script made ambiguous — a write in
//! flight at a crash, a plan that failed mid-apply, dirty bytes doomed by
//! a CServer fail-stop — are tracked as *wild ranges* carrying the set of
//! byte values an honest middleware could still serve there. A read
//! violates the oracle only when it returns a byte that is neither the
//! acknowledged value nor any wild candidate: a byte the system
//! *invented*. That is exactly the symptom of a durability bug (a stale
//! mapping resurrected over reused space), and never of an honest crash.

/// One invariant violation, with enough detail to debug the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke (a stable short name).
    pub invariant: String,
    /// Human-readable specifics.
    pub detail: String,
}

/// An alternative acceptable content for a byte range.
#[derive(Debug, Clone)]
struct WildRange {
    offset: u64,
    bytes: Vec<u8>,
}

/// The shadow model for one application file.
#[derive(Debug)]
pub struct Oracle {
    /// Acknowledged file content.
    shadow: Vec<u8>,
    /// Ranges whose content is legitimately ambiguous, with the
    /// candidate alternative bytes.
    wild: Vec<WildRange>,
    /// True once a media-error event has fired: surviving reads may then
    /// also serve the current OPFS content (cache-tier state — including
    /// the journal — can be silently destroyed by bad sectors).
    media_active: bool,
    /// True once a recovery ran while the metadata device was damaged
    /// (media errors or a fail-stop wipe under the journal): the journal
    /// may be truncated *mid-stream*, honestly resurrecting old mappings
    /// over cache space that was since reused — reads may then serve
    /// foreign bytes no honest run could distinguish from data. Byte
    /// checks are disabled from that point; the strict invariant lives
    /// in runs without metadata-device damage.
    stale_ok: bool,
    violations: Vec<Violation>,
    /// Bytes verified against the shadow.
    pub reads_checked: u64,
}

/// Cap on stored violations; one broken seed can fail thousands of bytes.
const MAX_VIOLATIONS: usize = 24;

impl Oracle {
    /// A fresh oracle over a file whose acknowledged content is `seed`.
    pub fn new(initial: Vec<u8>) -> Self {
        Oracle {
            shadow: initial,
            wild: Vec::new(),
            media_active: false,
            stale_ok: false,
            violations: Vec::new(),
            reads_checked: 0,
        }
    }

    /// The acknowledged content (for seeding stores).
    pub fn shadow(&self) -> &[u8] {
        &self.shadow
    }

    /// Marks media errors active (relaxes reads to OPFS fallback).
    pub fn set_media_active(&mut self) {
        self.media_active = true;
    }

    /// Marks that a recovery ran over a damaged metadata device: reads
    /// may now serve any previously acknowledged value (a truncated
    /// journal honestly reverts mappings to older acked states).
    pub fn allow_stale(&mut self) {
        self.stale_ok = true;
    }

    /// True once any violation has been recorded.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }

    /// The recorded violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Records a violation (capped).
    pub fn violate(&mut self, invariant: &str, detail: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation {
                invariant: invariant.to_owned(),
                detail,
            });
        }
    }

    /// An acknowledged write: the shadow takes the payload and any wild
    /// ambiguity over the range is resolved.
    pub fn ack_write(&mut self, offset: u64, data: &[u8]) {
        let end = offset + data.len() as u64;
        self.shadow[offset as usize..end as usize].copy_from_slice(data);
        self.clear_wild(offset, data.len() as u64);
    }

    /// Declares `[offset, offset+bytes.len())` ambiguous with `bytes` as
    /// an acceptable alternative to the shadow (per byte).
    pub fn mark_wild(&mut self, offset: u64, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.wild.push(WildRange { offset, bytes });
        }
    }

    /// Removes wild coverage over `[offset, offset+len)`, splitting
    /// entries that straddle the boundary.
    fn clear_wild(&mut self, offset: u64, len: u64) {
        let end = offset + len;
        let mut next = Vec::with_capacity(self.wild.len());
        for w in self.wild.drain(..) {
            let w_end = w.offset + w.bytes.len() as u64;
            if w_end <= offset || w.offset >= end {
                next.push(w);
                continue;
            }
            if w.offset < offset {
                let keep = (offset - w.offset) as usize;
                next.push(WildRange {
                    offset: w.offset,
                    bytes: w.bytes[..keep].to_vec(),
                });
            }
            if w_end > end {
                let skip = (end - w.offset) as usize;
                next.push(WildRange {
                    offset: end,
                    bytes: w.bytes[skip..].to_vec(),
                });
            }
        }
        self.wild = next;
    }

    /// True if some wild candidate covering absolute byte `abs` has
    /// value `got`.
    fn wild_allows(&self, abs: u64, got: u8) -> bool {
        self.wild.iter().any(|w| {
            abs >= w.offset
                && abs < w.offset + w.bytes.len() as u64
                && w.bytes[(abs - w.offset) as usize] == got
        })
    }

    /// Verifies a successful read of `[offset, offset+got.len())`.
    /// `opfs_now` is the current OPFS content of the same range, consulted
    /// only when media errors are active.
    pub fn check_read(&mut self, offset: u64, got: &[u8], opfs_now: Option<&[u8]>) {
        self.reads_checked += got.len() as u64;
        if self.stale_ok {
            return;
        }
        for (i, &b) in got.iter().enumerate() {
            let abs = offset + i as u64;
            let expect = self.shadow[abs as usize];
            if b == expect || self.wild_allows(abs, b) {
                continue;
            }
            if self.media_active {
                if let Some(now) = opfs_now {
                    if now[i] == b {
                        continue;
                    }
                }
            }
            self.violate(
                "read-consistency",
                format!("byte {abs}: got {b}, acknowledged {expect}, no wild candidate matches"),
            );
            return; // one violation per read is enough detail
        }
    }

    /// A read that ultimately errored: permitted only under active media
    /// errors (no other scheduled fault may fail a read outright).
    pub fn read_errored(&mut self, offset: u64, len: u64, detail: &str) {
        if !self.media_active {
            self.violate(
                "read-availability",
                format!("read [{offset}, +{len}) failed without media errors: {detail}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reads_pass() {
        let mut o = Oracle::new(vec![7u8; 64]);
        o.check_read(0, &[7u8; 64], None);
        assert!(!o.failed());
        assert_eq!(o.reads_checked, 64);
    }

    #[test]
    fn invented_bytes_violate() {
        let mut o = Oracle::new(vec![7u8; 64]);
        o.check_read(8, &[9u8; 4], None);
        assert!(o.failed());
        assert_eq!(o.violations()[0].invariant, "read-consistency");
    }

    #[test]
    fn wild_candidates_allow_either_value() {
        let mut o = Oracle::new(vec![1u8; 32]);
        o.mark_wild(8, vec![2u8; 8]);
        o.check_read(8, &[2, 2, 1, 2, 1, 1, 2, 2], None);
        assert!(!o.failed());
        // Outside the wild range the candidate does not apply.
        o.check_read(16, &[2u8; 4], None);
        assert!(o.failed());
    }

    #[test]
    fn ack_resolves_wild_ambiguity() {
        let mut o = Oracle::new(vec![1u8; 32]);
        o.mark_wild(0, vec![2u8; 32]);
        o.ack_write(8, &[3u8; 8]);
        // The acked middle must now be exactly 3; flanks stay ambiguous.
        o.check_read(0, &[2, 2, 2, 2, 2, 2, 2, 2], None);
        o.check_read(8, &[3u8; 8], None);
        assert!(!o.failed());
        o.check_read(8, &[2u8; 8], None);
        assert!(o.failed());
    }

    #[test]
    fn media_relaxes_to_opfs_content() {
        let mut o = Oracle::new(vec![5u8; 16]);
        o.check_read(0, &[6u8; 4], Some(&[6u8; 4]));
        assert!(o.failed(), "opfs fallback needs media active");
        let mut o = Oracle::new(vec![5u8; 16]);
        o.set_media_active();
        o.check_read(0, &[6u8; 4], Some(&[6u8; 4]));
        assert!(!o.failed());
    }

    #[test]
    fn read_errors_need_media() {
        let mut o = Oracle::new(vec![0u8; 8]);
        o.read_errored(0, 8, "media error on server 0");
        assert!(o.failed());
        let mut o = Oracle::new(vec![0u8; 8]);
        o.set_media_active();
        o.read_errored(0, 8, "media error on server 0");
        assert!(!o.failed());
    }
}
