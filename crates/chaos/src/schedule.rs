//! Seeded chaos schedules: a random workload plus an interleaved fault
//! script over every fault family the middleware claims to survive.
//!
//! A [`Schedule`] is a pure function of its seed: the workload geometry
//! is drawn first (an IOR instance from `s4d-workloads`, shrunk to
//! chaos-sized files), then a handful of [`ChaosEvent`]s are placed at
//! operation indices within the run. The executor replays the events in
//! op-index order, so the same seed always produces the same interleaving
//! — which is what makes a red seed replayable and minimizable.

use s4d_mpiio::{AppOp, ProcessScript};
use s4d_workloads::{AccessPattern, IorConfig};

use crate::rng::ChaosRng;

const KIB: u64 = 1024;

/// One scripted fault, fired when the executor reaches `at_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Arm a fresh [`CrashFuse`](s4d_cache::CrashFuse) with `budget`
    /// durable bytes: the middleware dies mid-effect once they are spent,
    /// and the executor recovers it from cluster state alone.
    MwCrash {
        /// Operation index at which the fuse is armed.
        at_op: u32,
        /// Durable bytes until the crash.
        budget: u64,
    },
    /// The *next* recovery (after a later [`ChaosEvent::MwCrash`]) runs
    /// fused with this budget — a second power failure mid-recovery. The
    /// executor re-enters recovery afterwards.
    RecoveryCrash {
        /// Durable recovery bytes until the re-crash.
        budget: u64,
    },
    /// A CServer hard-crashes at `at_op`: its stores are wiped and the
    /// middleware is notified exactly as the runner would on the next
    /// completed sub-request (an `Offline` failure).
    FailStop {
        /// CServer index (taken modulo the server count).
        server: u8,
        /// Operation index of the crash.
        at_op: u32,
    },
    /// A CServer's SSD is full for `for_ops` operations: writes fail with
    /// `NoSpace`, reads stay healthy. Journal appends stall; admission
    /// degrades to OPFS.
    SpaceExhausted {
        /// CServer index (taken modulo the server count).
        server: u8,
        /// Operation index of the onset.
        at_op: u32,
        /// Window length in operations.
        for_ops: u32,
    },
    /// From `at_op` on, a deterministic set of the CServer's sectors is
    /// bad: any I/O touching one fails with `Media`, permanently.
    MediaErrors {
        /// CServer index (taken modulo the server count).
        server: u8,
        /// Operation index of the onset.
        at_op: u32,
        /// Seed of the bad-sector map.
        map_seed: u64,
        /// Bad-sector density in parts per million.
        bad_ppm: u32,
    },
    /// A gray stall: the application observes a long service gap at
    /// `at_op`. The executor models it as a simulated-time jump, which
    /// interleaves with every time-based window (quarantine expiry,
    /// retry backoff, checkpoint age, scripted fault windows).
    Stall {
        /// Operation index of the stall.
        at_op: u32,
        /// Stalled duration in simulated seconds.
        secs: u32,
    },
}

impl ChaosEvent {
    /// The op index at which the executor fires this event.
    /// [`ChaosEvent::RecoveryCrash`] is latent (it arms the next
    /// recovery), so it fires immediately.
    pub fn at_op(&self) -> u32 {
        match *self {
            ChaosEvent::MwCrash { at_op, .. }
            | ChaosEvent::FailStop { at_op, .. }
            | ChaosEvent::SpaceExhausted { at_op, .. }
            | ChaosEvent::MediaErrors { at_op, .. }
            | ChaosEvent::Stall { at_op, .. } => at_op,
            ChaosEvent::RecoveryCrash { .. } => 0,
        }
    }

    /// A compact human-readable form for reports and repro files.
    pub fn describe(&self) -> String {
        match *self {
            ChaosEvent::MwCrash { at_op, budget } => {
                format!("mw-crash@{at_op} budget={budget}")
            }
            ChaosEvent::RecoveryCrash { budget } => {
                format!("recovery-crash budget={budget}")
            }
            ChaosEvent::FailStop { server, at_op } => {
                format!("fail-stop@{at_op} cserver={server}")
            }
            ChaosEvent::SpaceExhausted {
                server,
                at_op,
                for_ops,
            } => format!("enospc@{at_op}+{for_ops} cserver={server}"),
            ChaosEvent::MediaErrors {
                server,
                at_op,
                map_seed,
                bad_ppm,
            } => format!("media@{at_op} cserver={server} seed={map_seed} ppm={bad_ppm}"),
            ChaosEvent::Stall { at_op, secs } => format!("stall@{at_op} {secs}s"),
        }
    }
}

/// The workload geometry drawn for one seed (an IOR instance from
/// `s4d-workloads`, chaos-sized).
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// The IOR configuration the op stream is drawn from.
    pub ior: IorConfig,
    /// Cache capacity handed to the middleware (small enough that the
    /// workload overflows it and must evict).
    pub capacity: u64,
    /// Checkpoint record threshold (forces checkpoints mid-run).
    pub ckpt_records: u64,
    /// Cluster construction seed.
    pub cluster_seed: u64,
    /// Metadata-plane shard count handed to the middleware. Set *outside*
    /// the seeded rng draws (see [`Schedule::generate_with_shards`]), so
    /// the same seed produces the same workload and fault script at every
    /// shard count — and the default of 1 leaves historical seed
    /// fingerprints untouched.
    pub shards: u32,
}

/// A complete chaos run description: seed, workload, fault script.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The seed everything below is a pure function of.
    pub seed: u64,
    /// The drawn workload.
    pub workload: WorkloadSpec,
    /// The fault script, sorted by firing op index.
    pub events: Vec<ChaosEvent>,
}

impl Schedule {
    /// Generates the schedule for `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut rng = ChaosRng::seed(seed);
        let processes = *rng.pick(&[1u32, 2, 2, 4]);
        let request_size = *rng.pick(&[8 * KIB, 16 * KIB, 32 * KIB]);
        // Enough requests per process that the cache overflows, small
        // enough that a thousand seeds stay cheap.
        let per_process = 8 + rng.below(9); // 8..=16
        let file_size = processes as u64 * per_process * request_size;
        let pattern = if rng.chance(1, 2) {
            AccessPattern::Sequential
        } else {
            AccessPattern::Random
        };
        let ior = IorConfig {
            file_name: "chaos.dat".into(),
            file_size,
            processes,
            request_size,
            pattern,
            do_write: true,
            do_read: true,
            seed: rng.next_u64(),
        };
        let capacity = *rng.pick(&[64 * KIB, 128 * KIB, 256 * KIB]);
        let ckpt_records = *rng.pick(&[24u64, 48, u64::MAX]);
        let cluster_seed = rng.next_u64();
        let workload = WorkloadSpec {
            ior,
            capacity,
            ckpt_records,
            cluster_seed,
            shards: 1,
        };

        let total_ops = (2 * processes as u64 * per_process) as u32;
        let n_events = rng.below(5) as usize + 1; // 1..=5
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let at_op = rng.below(total_ops as u64) as u32;
            let server = rng.below(4) as u8;
            events.push(match rng.below(10) {
                // Middleware crashes are the paper's headline fault:
                // weight them highest.
                0..=2 => ChaosEvent::MwCrash {
                    at_op,
                    budget: 256 + rng.below(96 * KIB),
                },
                3 => ChaosEvent::RecoveryCrash {
                    budget: rng.below(64 * KIB),
                },
                4 => ChaosEvent::FailStop { server, at_op },
                5..=6 => ChaosEvent::SpaceExhausted {
                    server,
                    at_op,
                    for_ops: 2 + rng.below(12) as u32,
                },
                7 => ChaosEvent::MediaErrors {
                    server,
                    at_op,
                    map_seed: rng.next_u64(),
                    bad_ppm: *rng.pick(&[1_000u32, 10_000, 100_000]),
                },
                _ => ChaosEvent::Stall {
                    at_op,
                    secs: 30 + rng.below(600) as u32,
                },
            });
        }
        events.sort_by_key(|e| e.at_op());
        Schedule {
            seed,
            workload,
            events,
        }
    }

    /// [`Schedule::generate`] with the middleware's metadata plane run at
    /// `shards` shards. The shard count is applied after every seeded
    /// draw, so the schedule (workload geometry, fault script, op stream)
    /// is byte-identical to the unsharded one — only the middleware
    /// configuration changes.
    pub fn generate_with_shards(seed: u64, shards: u32) -> Self {
        let mut s = Self::generate(seed);
        s.workload.shards = shards.max(1);
        s
    }

    /// The same schedule with only the events at the given (original)
    /// indices kept — the minimizer's replay primitive.
    pub fn with_events_kept(&self, keep: &[usize]) -> Schedule {
        let events = self
            .events
            .iter()
            .enumerate()
            .filter(|(i, _)| keep.contains(i))
            .map(|(_, e)| *e)
            .collect();
        Schedule {
            seed: self.seed,
            workload: self.workload.clone(),
            events,
        }
    }

    /// Drains the workload's per-rank scripts into one deterministic
    /// round-robin op stream of `(rank, op)` pairs.
    pub fn op_stream(&self) -> Vec<(u32, AppOp)> {
        let mut scripts: Vec<(u32, _)> = self
            .workload
            .ior
            .scripts()
            .into_iter()
            .enumerate()
            .map(|(r, s)| (r as u32, s))
            .collect();
        let per_rank: Vec<(u32, Vec<AppOp>)> = scripts
            .iter_mut()
            .map(|(r, s)| {
                let mut ops = Vec::new();
                while let Some(op) = s.next_op() {
                    ops.push(op);
                }
                (*r, ops)
            })
            .collect();
        let mut stream = Vec::new();
        let mut cursor = vec![0usize; per_rank.len()];
        loop {
            let mut progressed = false;
            for (i, (rank, ops)) in per_rank.iter().enumerate() {
                if cursor[i] < ops.len() {
                    stream.push((*rank, ops[cursor[i]].clone()));
                    cursor[i] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32 {
            let a = Schedule::generate(seed);
            let b = Schedule::generate(seed);
            assert_eq!(a.events, b.events);
            assert_eq!(a.workload.ior, b.workload.ior);
            assert_eq!(a.workload.capacity, b.workload.capacity);
            let sa = a.op_stream();
            let sb = b.op_stream();
            assert_eq!(sa.len(), sb.len());
        }
    }

    #[test]
    fn events_are_sorted_and_bounded() {
        for seed in 0..64 {
            let s = Schedule::generate(seed);
            assert!(!s.events.is_empty() && s.events.len() <= 5);
            let ats: Vec<u32> = s.events.iter().map(|e| e.at_op()).collect();
            let mut sorted = ats.clone();
            sorted.sort_unstable();
            assert_eq!(ats, sorted);
        }
    }

    #[test]
    fn kept_subset_preserves_order() {
        let s = Schedule::generate(11);
        let all: Vec<usize> = (0..s.events.len()).collect();
        assert_eq!(s.with_events_kept(&all).events, s.events);
        assert!(s.with_events_kept(&[]).events.is_empty());
    }

    #[test]
    fn shard_count_never_perturbs_the_schedule() {
        for seed in 0..32 {
            let base = Schedule::generate(seed);
            for shards in [1u32, 4, 16] {
                let s = Schedule::generate_with_shards(seed, shards);
                assert_eq!(s.workload.shards, shards);
                assert_eq!(s.events, base.events, "seed {seed}: fault script moved");
                assert_eq!(s.workload.ior, base.workload.ior);
                assert_eq!(s.workload.capacity, base.workload.capacity);
                assert_eq!(s.workload.cluster_seed, base.workload.cluster_seed);
            }
        }
        assert_eq!(Schedule::generate(7).workload.shards, 1, "default is 1");
    }

    #[test]
    fn op_stream_interleaves_every_rank() {
        let s = Schedule::generate(5);
        let stream = s.op_stream();
        let ranks: std::collections::BTreeSet<u32> = stream.iter().map(|(r, _)| *r).collect();
        assert_eq!(ranks.len() as u32, s.workload.ior.processes);
    }
}
