//! The failing-schedule minimizer: delta-debugging over the fault
//! script.
//!
//! A red seed's schedule carries up to a handful of fault events, and
//! usually only a subset is load-bearing. The minimizer re-runs the
//! schedule with subsets of its events kept (the workload and seed are
//! untouched — they are the reproduction context, not the cause) until no
//! single event can be removed without the failure disappearing. The
//! result is a 1-minimal event list plus a replayable repro description.

use crate::exec::{run_caught, ChaosReport};
use crate::schedule::Schedule;

/// The outcome of minimizing one failing schedule.
#[derive(Debug, Clone)]
pub struct MinimizeResult {
    /// Original event indices kept in the minimal failing subset
    /// (ascending).
    pub kept: Vec<usize>,
    /// The kept events, described.
    pub events: Vec<String>,
    /// The report of the minimal failing run.
    pub report: ChaosReport,
    /// How many chaos runs the search spent.
    pub runs: u32,
}

/// Minimizes the event set of a failing schedule. Returns `None` when
/// the full schedule does not actually fail (nothing to minimize).
///
/// The search is ddmin-style but sized for our scripts (≤ 5 events):
/// first try the empty set and each singleton, then greedily remove one
/// event at a time until 1-minimal. Every probe goes through
/// [`run_caught`], so schedules that fail by panicking minimize too.
pub fn minimize(schedule: &Schedule, inject_bug: bool) -> Option<MinimizeResult> {
    let mut runs = 0u32;
    let mut probe = |keep: &[usize]| -> Option<ChaosReport> {
        runs += 1;
        let report = run_caught(&schedule.with_events_kept(keep), inject_bug);
        report.failed().then_some(report)
    };

    let all: Vec<usize> = (0..schedule.events.len()).collect();
    let mut best_report = probe(&all)?;
    let mut kept = all;

    // Fast paths: no events at all (the failure is in the workload or
    // the injected bug alone), then each singleton.
    if let Some(r) = probe(&[]) {
        return Some(finish(schedule, Vec::new(), r, runs));
    }
    for &i in &kept.clone() {
        if let Some(r) = probe(&[i]) {
            return Some(finish(schedule, vec![i], r, runs));
        }
    }

    // Greedy 1-minimal reduction.
    loop {
        let mut shrunk = false;
        for drop_at in 0..kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(drop_at);
            if candidate.is_empty() {
                continue; // empty set already probed above
            }
            if let Some(r) = probe(&candidate) {
                kept = candidate;
                best_report = r;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    Some(finish(schedule, kept, best_report, runs))
}

fn finish(schedule: &Schedule, kept: Vec<usize>, report: ChaosReport, runs: u32) -> MinimizeResult {
    let events = kept
        .iter()
        .map(|&i| schedule.events[i].describe())
        .collect();
    MinimizeResult {
        kept,
        events,
        report,
        runs,
    }
}

/// A replayable reproduction: regenerate the schedule from `seed`, keep
/// only the listed events, run with the given bug flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// Schedule seed.
    pub seed: u64,
    /// Metadata-plane shard count the failure was observed at (1 for
    /// repro files written before sharding existed).
    pub shards: u32,
    /// Whether the deliberate durability bug is injected.
    pub inject_bug: bool,
    /// Original event indices to keep.
    pub keep: Vec<usize>,
}

impl Repro {
    /// Serializes to the repro-file JSON form.
    pub fn to_json(&self) -> String {
        let keep: Vec<String> = self.keep.iter().map(|k| k.to_string()).collect();
        format!(
            "{{\"seed\":{},\"shards\":{},\"inject_bug\":{},\"keep\":[{}]}}\n",
            self.seed,
            self.shards,
            self.inject_bug,
            keep.join(",")
        )
    }

    /// Parses the repro-file JSON form (the exact shape [`Repro::to_json`]
    /// writes; whitespace-tolerant, order-insensitive).
    pub fn parse(text: &str) -> Option<Repro> {
        let seed = field_u64(text, "seed")?;
        // Absent in repro files written before the sharded metadata
        // plane: those failures were observed at one shard.
        let shards = field_u64(text, "shards").unwrap_or(1) as u32;
        let inject_bug = field_bool(text, "inject_bug")?;
        let keep = field_u64_array(text, "keep")?;
        Some(Repro {
            seed,
            shards,
            inject_bug,
            keep: keep.into_iter().map(|k| k as usize).collect(),
        })
    }

    /// Replays this repro: the minimal schedule and its report.
    pub fn run(&self) -> (Schedule, ChaosReport) {
        let schedule =
            Schedule::generate_with_shards(self.seed, self.shards).with_events_kept(&self.keep);
        let report = run_caught(&schedule, self.inject_bug);
        (schedule, report)
    }
}

/// The text after `"name"` and its colon, trimmed of leading space.
fn after_key<'a>(text: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\"");
    let at = text.find(&key)? + key.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix(':')?;
    Some(rest.trim_start())
}

fn field_u64(text: &str, name: &str) -> Option<u64> {
    let rest = after_key(text, name)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn field_bool(text: &str, name: &str) -> Option<bool> {
    let rest = after_key(text, name)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn field_u64_array(text: &str, name: &str) -> Option<Vec<u64>> {
    let rest = after_key(text, name)?;
    let rest = rest.strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(part.parse().ok()?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_round_trips() {
        let r = Repro {
            seed: 1234,
            shards: 16,
            inject_bug: true,
            keep: vec![0, 2, 4],
        };
        assert_eq!(Repro::parse(&r.to_json()), Some(r));
        let empty = Repro {
            seed: 7,
            shards: 1,
            inject_bug: false,
            keep: vec![],
        };
        assert_eq!(Repro::parse(&empty.to_json()), Some(empty));
    }

    #[test]
    fn parse_defaults_missing_shards_to_one() {
        // Repro files written before the sharded metadata plane have no
        // "shards" field; they replay at one shard.
        let text = "{\"seed\":42,\"inject_bug\":false,\"keep\":[1]}";
        assert_eq!(
            Repro::parse(text),
            Some(Repro {
                seed: 42,
                shards: 1,
                inject_bug: false,
                keep: vec![1],
            })
        );
    }

    #[test]
    fn parse_tolerates_whitespace_and_order() {
        let text = "{ \"keep\" : [ 1 , 3 ],\n  \"seed\": 99,\n  \"inject_bug\": false }";
        assert_eq!(
            Repro::parse(text),
            Some(Repro {
                seed: 99,
                shards: 1,
                inject_bug: false,
                keep: vec![1, 3],
            })
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Repro::parse("not json"), None);
        assert_eq!(Repro::parse("{\"seed\": 1}"), None);
    }
}
