//! The harness's own deterministic random stream.
//!
//! Chaos runs must replay byte-identically from a seed, so the harness
//! owns its randomness outright instead of borrowing a library RNG whose
//! stream could shift under it: a SplitMix64 generator — the same
//! primitive the storage layer's bad-sector map builds on — seeded once
//! per schedule. Every draw in a run flows from that single seed.

/// A SplitMix64 stream (Steele, Lea & Flood; public-domain constants).
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// The single seeding site of the harness: every chaos run derives
    /// all of its randomness from the schedule seed passed here.
    // s4d-lint: allow(determinism) — seeded pure generator, no ambient entropy; the seed is the run's identity; panic-path witness: none (no panics)
    pub fn seed(seed: u64) -> Self {
        ChaosRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) has no value to draw");
        self.next_u64() % n
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.below(options.len() as u64) as usize]
    }

    /// A Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaosRng::seed(7);
        let mut b = ChaosRng::seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaosRng::seed(1);
        let mut b = ChaosRng::seed(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_and_pick_stay_in_range() {
        let mut r = ChaosRng::seed(3);
        for _ in 0..256 {
            assert!(r.below(7) < 7);
        }
        let opts = [10u64, 20, 30];
        for _ in 0..32 {
            assert!(opts.contains(r.pick(&opts)));
        }
    }
}
