//! The chaos CLI: seeded sweeps, single-seed replays, repro replays, and
//! the oracle self-test CI gates on.
//!
//! ```text
//! s4d-chaos --seeds 1000              # sweep seeds 0..1000, JSON to stdout
//! s4d-chaos --seeds 50 --start 200    # sweep seeds 200..250
//! s4d-chaos --seed 17                 # one seed, full report
//! s4d-chaos --seed 17 --inject-bug    # with the deliberate durability bug
//! s4d-chaos --validate-oracle         # prove the oracle catches the bug
//! s4d-chaos --repro repro.json        # replay a minimized repro file
//! s4d-chaos --seeds 100 --out repros/ # write minimized repros on failure
//! ```
//!
//! Exit status: 0 all green, 1 invariant violations (or an uncaught
//! oracle in `--validate-oracle`), 2 usage error.

use std::process::ExitCode;

use s4d_chaos::{minimize, report_json, run_caught, sweep_json, Repro, Schedule};

struct Args {
    seeds: u64,
    start: u64,
    seed: Option<u64>,
    shards: u32,
    inject_bug: bool,
    validate_oracle: bool,
    repro: Option<String>,
    out: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: s4d-chaos [--seeds N] [--start S] [--seed X] [--shards K] \
         [--inject-bug] [--validate-oracle] [--repro FILE] [--out DIR]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ()> {
    let mut args = Args {
        seeds: 25,
        start: 0,
        seed: None,
        shards: 1,
        inject_bug: false,
        validate_oracle: false,
        repro: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seeds" => args.seeds = it.next().ok_or(())?.parse().map_err(|_| ())?,
            "--start" => args.start = it.next().ok_or(())?.parse().map_err(|_| ())?,
            "--seed" => args.seed = Some(it.next().ok_or(())?.parse().map_err(|_| ())?),
            // Metadata-plane shard count for every run in this invocation;
            // the schedule itself (workload + fault script) is unchanged.
            "--shards" => args.shards = it.next().ok_or(())?.parse().map_err(|_| ())?,
            "--inject-bug" => args.inject_bug = true,
            "--validate-oracle" => args.validate_oracle = true,
            "--repro" => args.repro = Some(it.next().ok_or(())?),
            "--out" => args.out = Some(it.next().ok_or(())?),
            _ => return Err(()),
        }
    }
    Ok(args)
}

/// Minimizes a failing seed and writes its repro file under `out`.
fn write_repro(out: &str, seed: u64, shards: u32, inject_bug: bool) {
    let schedule = Schedule::generate_with_shards(seed, shards);
    let Some(min) = minimize(&schedule, inject_bug) else {
        return;
    };
    let repro = Repro {
        seed,
        shards,
        inject_bug,
        keep: min.kept.clone(),
    };
    let path = format!("{out}/repro-seed-{seed}.json");
    if std::fs::create_dir_all(out).is_ok() && std::fs::write(&path, repro.to_json()).is_ok() {
        eprintln!(
            "seed {seed}: minimized to {} event(s) in {} runs -> {path}",
            min.kept.len(),
            min.runs
        );
        for e in &min.events {
            eprintln!("  {e}");
        }
    }
}

fn main() -> ExitCode {
    let Ok(args) = parse_args() else {
        return usage();
    };

    if args.validate_oracle {
        return validate_oracle(&args);
    }

    if let Some(path) = &args.repro {
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("cannot read repro file {path}");
            return ExitCode::from(2);
        };
        let Some(repro) = Repro::parse(&text) else {
            eprintln!("cannot parse repro file {path}");
            return ExitCode::from(2);
        };
        let (schedule, report) = repro.run();
        eprintln!(
            "repro seed {} with {} event(s):",
            repro.seed,
            schedule.events.len()
        );
        for e in &schedule.events {
            eprintln!("  {}", e.describe());
        }
        println!("{}", report_json(&report));
        return if report.failed() {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    if let Some(seed) = args.seed {
        let report = run_caught(
            &Schedule::generate_with_shards(seed, args.shards),
            args.inject_bug,
        );
        println!("{}", report_json(&report));
        if report.failed() {
            if let Some(out) = &args.out {
                write_repro(out, seed, args.shards, args.inject_bug);
            }
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    // Sweep mode.
    let mut reports = Vec::with_capacity(args.seeds as usize);
    for seed in args.start..args.start + args.seeds {
        let report = run_caught(
            &Schedule::generate_with_shards(seed, args.shards),
            args.inject_bug,
        );
        if report.failed() {
            eprintln!(
                "seed {seed}: FAILED ({})",
                report
                    .violations
                    .first()
                    .map(|v| v.invariant.as_str())
                    .unwrap_or("?")
            );
            if let Some(out) = &args.out {
                write_repro(out, seed, args.shards, args.inject_bug);
            }
        }
        reports.push(report);
    }
    let failures = reports.iter().filter(|r| r.failed()).count();
    println!("{}", sweep_json(&reports));
    eprintln!("{} seed(s), {failures} failure(s)", reports.len());
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The oracle self-test: with the deliberate durability bug injected
/// (`chaos_bug_skip_journal` — evictions discard cache space without
/// journaling the unmap), some seed in the scan range must go red, and
/// its schedule must minimize to a small event list. This proves the
/// harness can actually catch a real protocol violation end to end.
fn validate_oracle(args: &Args) -> ExitCode {
    let scan = if args.seeds == 25 { 64 } else { args.seeds };
    for seed in args.start..args.start + scan {
        let schedule = Schedule::generate_with_shards(seed, args.shards);
        let report = run_caught(&schedule, true);
        if !report.failed() {
            continue;
        }
        eprintln!(
            "oracle caught the injected bug at seed {seed} ({})",
            report
                .violations
                .first()
                .map(|v| v.invariant.as_str())
                .unwrap_or("?")
        );
        let Some(min) = minimize(&schedule, true) else {
            eprintln!("minimization lost the failure (nondeterminism?)");
            return ExitCode::from(1);
        };
        eprintln!(
            "minimized to {} event(s) in {} runs:",
            min.kept.len(),
            min.runs
        );
        for e in &min.events {
            eprintln!("  {e}");
        }
        println!("{}", report_json(&min.report));
        if min.kept.len() > 10 {
            eprintln!(
                "minimal schedule still has {} events (> 10)",
                min.kept.len()
            );
            return ExitCode::from(1);
        }
        if let Some(out) = &args.out {
            write_repro(out, seed, args.shards, true);
        }
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "oracle did NOT catch the injected bug in seeds {}..{}",
        args.start,
        args.start + scan
    );
    ExitCode::from(1)
}
