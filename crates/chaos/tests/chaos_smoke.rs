//! Tier-1 chaos smoke: a fixed seed block must run green and
//! deterministically, and the deliberately broken protocol
//! (`chaos_bug_skip_journal`) must be caught by the oracle and shrunk
//! to a small repro. The nightly workflow runs the full 1,000-seed
//! sweep; this block keeps the signal in every CI run at debug-build
//! cost.

use s4d_chaos::{minimize, report_json, run, Schedule};

/// Every seed here exercises a different mix of fault families (the
/// generator draws 1–5 events per seed); all must hold every invariant.
#[test]
fn fixed_seed_block_is_green() {
    for seed in 0..6 {
        let schedule = Schedule::generate(seed);
        let report = run(&schedule, false);
        assert!(
            !report.failed(),
            "seed {seed} violated invariants: {:?}",
            report.violations
        );
    }
}

/// Same seed, same bytes: the whole run — applied ops, read contents,
/// recovery reports, final counters — folds into the fingerprint, and
/// the JSON report must match byte-for-byte across runs.
#[test]
fn same_seed_is_byte_identical() {
    let schedule = Schedule::generate(9);
    let a = run(&schedule, false);
    let b = run(&schedule, false);
    assert_eq!(a.fingerprint, b.fingerprint, "fingerprints diverged");
    assert_eq!(report_json(&a), report_json(&b), "reports diverged");
}

/// The sharded metadata plane is an internal reorganization, so every
/// shard count the nightly sweep exercises must stay green on the same
/// fixed seed block — same workload, same fault script, only the plane
/// partitioning differs — and each (seed, shards) pair must be
/// deterministic across runs.
#[test]
fn fixed_seed_block_is_green_at_every_shard_count() {
    for shards in [4, 16] {
        for seed in 0..6 {
            let schedule = Schedule::generate_with_shards(seed, shards);
            let report = run(&schedule, false);
            assert!(
                !report.failed(),
                "seed {seed} at {shards} shards violated invariants: {:?}",
                report.violations
            );
            let again = run(&schedule, false);
            assert_eq!(
                report.fingerprint, again.fingerprint,
                "seed {seed} at {shards} shards: fingerprint diverged across runs"
            );
        }
    }
}

/// Oracle self-test: with the journal-before-discard ordering
/// deliberately broken, some seed in a small scan must trip the oracle,
/// and ddmin must shrink the schedule to a handful of events while
/// still reproducing the violation.
#[test]
fn injected_bug_is_caught_and_minimized() {
    let mut caught = None;
    for seed in 0..48 {
        let schedule = Schedule::generate(seed);
        let report = run(&schedule, true);
        if report.failed() {
            caught = Some(seed);
            break;
        }
    }
    let seed = caught.expect("no seed in 0..48 tripped the injected durability bug");
    let schedule = Schedule::generate(seed);
    let result = minimize(&schedule, true).expect("minimizer found no failing subset");
    assert!(
        result.events.len() <= 10,
        "minimized repro has {} events (expected <= 10): {:?}",
        result.events.len(),
        result.events
    );
    assert!(result.report.failed(), "minimized schedule no longer fails");
}
