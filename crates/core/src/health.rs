//! Per-CServer health tracking: failure counting, latency EWMA, and the
//! quarantine state machine.
//!
//! The paper assumes a healthy SSD tier; a real deployment must notice
//! when a CServer stops being one. The monitor ingests two signals the
//! middleware already sees for free — I/O errors and per-sub-request
//! latency versus the cost model's predicted `T_C` — and condenses them
//! into a per-server answer to one question: *should new work be sent
//! there?*
//!
//! State machine per server:
//!
//! ```text
//!             K consecutive failures / any Offline error
//!   Healthy ────────────────────────────────────────────▶ Quarantined{until}
//!      ▲                                                       │
//!      │ a success during probation                            │ `until` passes
//!      └──────────────────────────── Probation ◀───────────────┘
//!            (routing resumes; a failure re-quarantines)
//! ```

use s4d_sim::SimTime;

/// Exponential-moving-average weight for the latency ratio.
const EWMA_ALPHA: f64 = 0.2;

/// Cap on the quarantine-backoff exponent: repeated probation failures
/// double the quarantine up to `2^MAX_BACKOFF_EXP ×` the configured
/// duration, so a flapping server cannot push the window to infinity.
const MAX_BACKOFF_EXP: u32 = 6;

/// Streaming quantile estimator (the P² algorithm of Jain & Chlamtac).
///
/// Tracks one quantile of an unbounded observation stream in O(1) space
/// and time — five marker heights and positions, no allocation, no
/// sample buffer — so it can sit in the per-sub-request completion path.
/// Until five observations arrive the markers double as a sorted sample
/// buffer and the estimate is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2Quantile {
    p: f64,
    count: u64,
    /// Marker heights: estimates of the 0, p/2, p, (1+p)/2 and 1
    /// quantiles (the middle marker is the answer).
    heights: [f64; 5],
    /// Actual marker positions (1-indexed observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `0 < p < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly inside `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            p,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Observations ingested so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Ingests one observation. Non-finite values are ignored (they
    /// would poison every marker).
    ///
    /// The marker arrays are only ever read and written by destructuring
    /// into five named locals — no slice indexing, no allocation — so
    /// this is safe to call from the per-sub-request completion path.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            // Warm-up: collect the first five observations sorted.
            let filled = self.count as usize;
            if let Some(slot) = self.heights.get_mut(filled) {
                *slot = x;
            }
            self.count += 1;
            if let Some(prefix) = self.heights.get_mut(..self.count as usize) {
                prefix.sort_by(f64::total_cmp);
            }
            return;
        }
        // Find the cell k with q[k] <= x < q[k+1], extending the extremes.
        let [q0, q1, q2, q3, q4] = self.heights;
        let (k, q0, q4) = if x < q0 {
            (0, x, q4)
        } else if x >= q4 {
            (3, q0, x)
        } else if x < q1 {
            (0, q0, q4)
        } else if x < q2 {
            (1, q0, q4)
        } else if x < q3 {
            (2, q0, q4)
        } else {
            (3, q0, q4)
        };
        self.heights = [q0, q1, q2, q3, q4];
        let [n0, n1, n2, n3, n4] = self.positions;
        self.positions = [
            n0,
            if k < 1 { n1 + 1.0 } else { n1 },
            if k < 2 { n2 + 1.0 } else { n2 },
            if k < 3 { n3 + 1.0 } else { n3 },
            n4 + 1.0,
        ];
        let inc = [0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0];
        for (d, i) in self.desired.iter_mut().zip(inc) {
            *d += i;
        }
        // Adjust the three interior markers towards their desired ranks.
        for i in [1_usize, 2, 3] {
            self.adjust_marker(i);
        }
        self.count += 1;
    }

    /// One P² marker adjustment: moves interior marker `i` (1, 2 or 3)
    /// one rank towards its desired position when it lags by a full
    /// rank, re-estimating its height parabolically (linearly when the
    /// parabola leaves the neighbour bracket).
    fn adjust_marker(&mut self, i: usize) {
        let [q0, q1, q2, q3, q4] = self.heights;
        let [n0, n1, n2, n3, n4] = self.positions;
        let [_, w1, w2, w3, _] = self.desired;
        // (previous, current, next) neighbourhood of marker i.
        let (qm, qc, qp, nm, nc, np, want) = match i {
            1 => (q0, q1, q2, n0, n1, n2, w1),
            2 => (q1, q2, q3, n1, n2, n3, w2),
            _ => (q2, q3, q4, n2, n3, n4, w3),
        };
        let lag = want - nc;
        if !((lag >= 1.0 && np - nc > 1.0) || (lag <= -1.0 && nm - nc < -1.0)) {
            return;
        }
        let d = lag.signum();
        // Piecewise-parabolic prediction of the new height.
        let parabolic = qc
            + d / (np - nm)
                * ((nc - nm + d) * (qp - qc) / (np - nc) + (np - nc - d) * (qc - qm) / (nc - nm));
        let new_q = if qm < parabolic && parabolic < qp {
            parabolic
        } else if d > 0.0 {
            // Parabola left the bracket: fall back to linear.
            qc + d * (qp - qc) / (np - nc)
        } else {
            qc + d * (qm - qc) / (nm - nc)
        };
        match i {
            1 => {
                self.heights = [q0, new_q, q2, q3, q4];
                self.positions = [n0, nc + d, n2, n3, n4];
            }
            2 => {
                self.heights = [q0, q1, new_q, q3, q4];
                self.positions = [n0, n1, nc + d, n3, n4];
            }
            _ => {
                self.heights = [q0, q1, q2, new_q, q4];
                self.positions = [n0, n1, n2, nc + d, n4];
            }
        }
    }

    /// The current estimate, or `None` before any observation. Exact for
    /// fewer than five observations.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            // Exact: the warm-up prefix is sorted.
            let n = self.count as usize;
            let rank = ((self.p * n as f64).ceil() as usize).clamp(1, n);
            return self.heights.get(rank - 1).copied();
        }
        let [_, _, q2, _, _] = self.heights;
        Some(q2)
    }
}

impl Default for P2Quantile {
    /// Defaults to the tail quantile the backpressure policy watches.
    fn default() -> Self {
        P2Quantile::new(0.99)
    }
}

/// Health of one server.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerHealth {
    /// Consecutive failed sub-requests (reset on any success).
    pub consecutive_failures: u32,
    /// EWMA of observed latency / predicted `T_C` (`None` until the
    /// first observation). Values well above 1 mean the server is slower
    /// than the cost model believes — queueing or degradation.
    pub latency_ratio: Option<f64>,
    /// End of the current quarantine, if any. Once it passes the server
    /// is on probation: routing resumes, but the next failure
    /// re-quarantines immediately.
    pub quarantined_until: Option<SimTime>,
    /// Set once a crash's data loss has been applied to the DMT, so a
    /// single outage is not invalidated twice. Reset on recovery.
    pub crash_handled: bool,
    /// Quarantine-backoff exponent: each quarantine re-entered *from
    /// probation* doubles the next window (capped at
    /// `2^MAX_BACKOFF_EXP`), so a server that keeps failing its probation
    /// is benched for exponentially longer. Reset by any success.
    pub backoff_exp: u32,
    /// Sub-requests dispatched to this server and not yet settled
    /// (completed, errored, or abandoned) — the queue-depth signal the
    /// backpressure policy watches.
    pub outstanding: u64,
    /// Streaming tail quantile (P², p99 by default) of the
    /// observed-over-predicted latency ratio. Unlike the EWMA it is not
    /// dragged down by a majority of fast ops, so it catches fail-slow
    /// servers that only straggle on some requests.
    pub latency_tail: P2Quantile,
}

impl ServerHealth {
    /// True while the quarantine window covers `now`.
    pub fn is_quarantined(&self, now: SimTime) -> bool {
        matches!(self.quarantined_until, Some(until) if now < until)
    }
}

/// Health state of every CServer.
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    servers: Vec<ServerHealth>,
}

impl HealthMonitor {
    /// A monitor for `n` servers, all healthy.
    pub fn new(n: usize) -> Self {
        HealthMonitor {
            servers: vec![ServerHealth::default(); n],
        }
    }

    /// Grows the monitor to cover at least `n` servers (idempotent).
    pub fn ensure_servers(&mut self, n: usize) {
        if self.servers.len() < n {
            self.servers.resize(n, ServerHealth::default());
        }
    }

    /// Number of tracked servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Health of one server, or `None` for an out-of-range index.
    pub fn server(&self, index: usize) -> Option<&ServerHealth> {
        self.servers.get(index)
    }

    /// Records a successful operation with its observed-over-predicted
    /// latency ratio. Ends any quarantine (the server proved itself) and
    /// clears the crash marker.
    pub fn record_success(&mut self, index: usize, ratio: f64) {
        let Some(s) = self.servers.get_mut(index) else {
            return; // unknown server: nothing to record
        };
        s.consecutive_failures = 0;
        s.quarantined_until = None;
        s.crash_handled = false;
        s.backoff_exp = 0;
        if ratio.is_finite() && ratio >= 0.0 {
            s.latency_ratio = Some(match s.latency_ratio {
                Some(prev) => prev * (1.0 - EWMA_ALPHA) + ratio * EWMA_ALPHA,
                None => ratio,
            });
            s.latency_tail.observe(ratio);
        }
    }

    /// Notes one sub-request dispatched to the server (queue depth +1).
    pub fn on_dispatch(&mut self, index: usize) {
        if let Some(s) = self.servers.get_mut(index) {
            s.outstanding += 1;
        }
    }

    /// Notes one dispatched sub-request settled — completed, errored, or
    /// abandoned (queue depth −1).
    pub fn on_settle(&mut self, index: usize) {
        if let Some(s) = self.servers.get_mut(index) {
            s.outstanding = s.outstanding.saturating_sub(1);
        }
    }

    /// Outstanding (dispatched, unsettled) sub-requests on one server.
    pub fn queue_depth(&self, index: usize) -> u64 {
        self.servers.get(index).map_or(0, |s| s.outstanding)
    }

    /// Tail-quantile estimate of the server's latency ratio, or `None`
    /// before any observation.
    pub fn latency_tail(&self, index: usize) -> Option<f64> {
        self.servers
            .get(index)
            .and_then(|s| s.latency_tail.estimate())
    }

    /// Records a failed operation. Quarantines the server until
    /// `now + duration` once `threshold` consecutive failures accumulate
    /// (or immediately when already on probation); returns `true` if a
    /// new quarantine started.
    ///
    /// A quarantine entered *from probation* doubles the window relative
    /// to the previous one (capped at `2^MAX_BACKOFF_EXP × duration`):
    /// a server that keeps failing the moment routing resumes is benched
    /// for exponentially longer, and only a success resets the backoff.
    pub fn record_failure(
        &mut self,
        index: usize,
        now: SimTime,
        threshold: u32,
        duration: s4d_sim::SimDuration,
    ) -> bool {
        let Some(s) = self.servers.get_mut(index) else {
            return false; // unknown server: nothing to record
        };
        s.consecutive_failures += 1;
        if s.is_quarantined(now) {
            return false;
        }
        let on_probation = s.quarantined_until.is_some();
        if s.consecutive_failures >= threshold.max(1) || on_probation {
            if on_probation {
                s.backoff_exp = (s.backoff_exp + 1).min(MAX_BACKOFF_EXP);
            }
            let scale = (1u64 << s.backoff_exp) as f64;
            let scaled = s4d_sim::SimDuration::from_secs_f64(duration.as_secs_f64() * scale);
            s.quarantined_until = Some(now + scaled);
            true
        } else {
            false
        }
    }

    /// Quarantines a server outright (crash detected) until `until`.
    /// Returns `true` if it was not already quarantined.
    pub fn quarantine(&mut self, index: usize, now: SimTime, until: SimTime) -> bool {
        let Some(s) = self.servers.get_mut(index) else {
            return false; // unknown server: nothing to quarantine
        };
        let newly = !s.is_quarantined(now);
        let prev = s.quarantined_until.unwrap_or(SimTime::ZERO);
        s.quarantined_until = Some(prev.max(until));
        newly
    }

    /// Marks a crash's data-loss handling as done; returns `false` if it
    /// was already marked (the same outage was handled before).
    pub fn claim_crash_handling(&mut self, index: usize) -> bool {
        let Some(s) = self.servers.get_mut(index) else {
            return false; // unknown server: nothing to claim
        };
        if s.crash_handled {
            false
        } else {
            s.crash_handled = true;
            true
        }
    }

    /// True if this server should not receive new work at `now`.
    pub fn is_unhealthy(&self, index: usize, now: SimTime) -> bool {
        self.servers
            .get(index)
            .is_some_and(|s| s.is_quarantined(now))
    }

    /// True if any tracked server is quarantined at `now`.
    pub fn any_unhealthy(&self, now: SimTime) -> bool {
        self.servers.iter().any(|s| s.is_quarantined(now))
    }

    /// True if any server shows signs of trouble: quarantine, a recent
    /// failure, or a latency EWMA above `ratio_threshold`. Drives the
    /// `flush_on_risk` eager-flush policy.
    pub fn any_at_risk(&self, now: SimTime, ratio_threshold: f64) -> bool {
        self.servers.iter().any(|s| {
            s.is_quarantined(now)
                || s.consecutive_failures > 0
                || s.latency_ratio.is_some_and(|r| r > ratio_threshold)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_sim::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    const Q: SimDuration = SimDuration::from_secs(10);

    #[test]
    fn failures_accumulate_to_quarantine() {
        let mut m = HealthMonitor::new(2);
        assert!(!m.record_failure(0, t(1), 3, Q));
        assert!(!m.record_failure(0, t(2), 3, Q));
        assert!(!m.any_unhealthy(t(2)));
        assert!(m.record_failure(0, t(3), 3, Q), "third strike quarantines");
        assert!(m.is_unhealthy(0, t(3)));
        assert!(!m.is_unhealthy(1, t(3)), "other servers unaffected");
        // Further failures while quarantined don't start a new quarantine.
        assert!(!m.record_failure(0, t(4), 3, Q));
        // Quarantine expires into probation.
        assert!(!m.is_unhealthy(0, t(13)));
        // A failure on probation re-quarantines immediately.
        assert!(m.record_failure(0, t(14), 3, Q));
        assert!(m.is_unhealthy(0, t(14)));
    }

    #[test]
    fn success_clears_everything() {
        let mut m = HealthMonitor::new(1);
        for i in 0..3 {
            m.record_failure(0, t(i), 3, Q);
        }
        assert!(m.is_unhealthy(0, t(3)));
        m.record_success(0, 1.0);
        assert!(!m.is_unhealthy(0, t(3)));
        assert_eq!(m.server(0).unwrap().consecutive_failures, 0);
        // Counter restarts from scratch.
        assert!(!m.record_failure(0, t(5), 3, Q));
    }

    #[test]
    fn ewma_tracks_latency_ratio() {
        let mut m = HealthMonitor::new(1);
        m.record_success(0, 1.0);
        assert_eq!(m.server(0).unwrap().latency_ratio, Some(1.0));
        for _ in 0..50 {
            m.record_success(0, 20.0);
        }
        let r = m.server(0).unwrap().latency_ratio.unwrap();
        assert!(r > 15.0, "EWMA converges towards sustained ratio: {r}");
        assert!(m.any_at_risk(t(0), 8.0));
        assert!(!m.any_at_risk(t(0), 100.0));
        // Garbage ratios are ignored.
        m.record_success(0, f64::NAN);
        assert!(m.server(0).unwrap().latency_ratio.unwrap().is_finite());
    }

    #[test]
    fn crash_quarantine_and_claim() {
        let mut m = HealthMonitor::new(2);
        assert!(m.quarantine(1, t(5), t(15)));
        assert!(!m.quarantine(1, t(6), t(12)), "already quarantined");
        assert!(m.is_unhealthy(1, t(6)));
        // Claim is once per outage.
        assert!(m.claim_crash_handling(1));
        assert!(!m.claim_crash_handling(1));
        // Recovery (a success) re-arms the claim for a future crash.
        m.record_success(1, 1.0);
        assert!(m.claim_crash_handling(1));
        // Extending never shortens.
        m.quarantine(0, t(0), t(20));
        m.quarantine(0, t(1), t(10));
        assert!(m.is_unhealthy(0, t(15)));
    }

    #[test]
    fn at_risk_considers_recent_failures() {
        let mut m = HealthMonitor::new(1);
        assert!(!m.any_at_risk(t(0), 8.0));
        m.record_failure(0, t(0), 5, Q);
        assert!(m.any_at_risk(t(0), 8.0), "one failure is already a risk");
    }

    #[test]
    fn ensure_servers_grows_only() {
        let mut m = HealthMonitor::default();
        m.ensure_servers(3);
        assert_eq!(m.server_count(), 3);
        m.record_failure(2, t(0), 1, Q);
        m.ensure_servers(2);
        assert_eq!(m.server_count(), 3, "never shrinks");
        assert!(m.is_unhealthy(2, t(0)), "state survives ensure");
    }

    #[test]
    fn ensure_servers_preserves_depth_and_tail() {
        let mut m = HealthMonitor::new(2);
        m.on_dispatch(1);
        m.on_dispatch(1);
        m.record_success(1, 4.0);
        m.ensure_servers(4);
        assert_eq!(m.server_count(), 4);
        assert_eq!(m.queue_depth(1), 2, "depth survives growth");
        assert_eq!(m.latency_tail(1), Some(4.0), "tail survives growth");
        assert_eq!(m.queue_depth(3), 0, "new servers start empty");
    }

    #[test]
    fn probation_reentry_doubles_backoff_capped() {
        let mut m = HealthMonitor::new(1);
        // First quarantine: the configured window, unscaled.
        assert!(m.record_failure(0, t(0), 1, Q));
        assert!(m.is_unhealthy(0, t(9)));
        assert!(!m.is_unhealthy(0, t(10)), "probation after 10s");
        // Failing on probation doubles the window: 20s.
        assert!(m.record_failure(0, t(10), 1, Q));
        assert!(m.is_unhealthy(0, t(29)));
        assert!(!m.is_unhealthy(0, t(30)));
        // Again: 40s.
        assert!(m.record_failure(0, t(30), 1, Q));
        assert!(m.is_unhealthy(0, t(69)));
        assert!(!m.is_unhealthy(0, t(70)));
        // Keep failing every probation: the scale caps at 2^6 = 64×.
        let mut start = SimTime::from_secs(70);
        for _ in 0..10 {
            assert!(m.record_failure(0, start, 1, Q));
            let until = m.server(0).unwrap().quarantined_until.unwrap();
            assert!(until - start <= Q * 64, "backoff never exceeds the cap");
            start = until;
        }
        assert_eq!(m.server(0).unwrap().backoff_exp, 6);
        assert!(m.record_failure(0, start, 1, Q));
        let until = m.server(0).unwrap().quarantined_until.unwrap();
        assert_eq!(until - start, Q * 64, "capped at 64×");
        // A success resets the ladder: the next quarantine is 10s again.
        m.record_success(0, 1.0);
        assert!(m.record_failure(0, t(1000), 1, Q));
        let s = m.server(0).unwrap();
        assert_eq!(s.quarantined_until, Some(t(1010)));
        assert_eq!(s.backoff_exp, 0);
    }

    #[test]
    fn depth_tracks_dispatch_and_settle() {
        let mut m = HealthMonitor::new(2);
        m.on_dispatch(0);
        m.on_dispatch(0);
        m.on_dispatch(1);
        assert_eq!(m.queue_depth(0), 2);
        assert_eq!(m.queue_depth(1), 1);
        m.on_settle(0);
        assert_eq!(m.queue_depth(0), 1);
        // Settling below zero saturates (a stray settle must not wrap).
        m.on_settle(1);
        m.on_settle(1);
        assert_eq!(m.queue_depth(1), 0);
        // Out-of-range indices are ignored.
        m.on_dispatch(9);
        assert_eq!(m.queue_depth(9), 0);
    }

    #[test]
    fn p2_exact_below_five_observations() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        q.observe(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.observe(1.0);
        q.observe(2.0);
        // Median of {1, 2, 3} is 2 (rank ceil(0.5·3) = 2).
        assert_eq!(q.estimate(), Some(2.0));
        q.observe(f64::NAN); // ignored
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn p2_median_of_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        // Deterministic low-discrepancy stream over (0, 1).
        let mut x = 0.0_f64;
        for _ in 0..10_000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            q.observe(x);
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate off: {est}");
    }

    #[test]
    fn p2_tail_quantile_flags_stragglers() {
        let mut q = P2Quantile::default();
        assert_eq!(q.quantile(), 0.99);
        // 99 fast ops per 1 straggler: the p99 must sit near the
        // straggler's ratio, where an EWMA would stay near 1.
        let mut x = 0.0_f64;
        for _ in 0..20_000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            q.observe(if x < 0.01 { 100.0 } else { 1.0 });
        }
        let est = q.estimate().unwrap();
        assert!(est > 10.0, "tail estimate missed the stragglers: {est}");
    }

    #[test]
    fn tail_feeds_from_successes() {
        let mut m = HealthMonitor::new(1);
        assert_eq!(m.latency_tail(0), None);
        for _ in 0..10 {
            m.record_success(0, 2.0);
        }
        let est = m.latency_tail(0).unwrap();
        assert!((est - 2.0).abs() < 1e-9);
    }
}
