//! Per-CServer health tracking: failure counting, latency EWMA, and the
//! quarantine state machine.
//!
//! The paper assumes a healthy SSD tier; a real deployment must notice
//! when a CServer stops being one. The monitor ingests two signals the
//! middleware already sees for free — I/O errors and per-sub-request
//! latency versus the cost model's predicted `T_C` — and condenses them
//! into a per-server answer to one question: *should new work be sent
//! there?*
//!
//! State machine per server:
//!
//! ```text
//!             K consecutive failures / any Offline error
//!   Healthy ────────────────────────────────────────────▶ Quarantined{until}
//!      ▲                                                       │
//!      │ a success during probation                            │ `until` passes
//!      └──────────────────────────── Probation ◀───────────────┘
//!            (routing resumes; a failure re-quarantines)
//! ```

use s4d_sim::SimTime;

/// Exponential-moving-average weight for the latency ratio.
const EWMA_ALPHA: f64 = 0.2;

/// Health of one server.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerHealth {
    /// Consecutive failed sub-requests (reset on any success).
    pub consecutive_failures: u32,
    /// EWMA of observed latency / predicted `T_C` (`None` until the
    /// first observation). Values well above 1 mean the server is slower
    /// than the cost model believes — queueing or degradation.
    pub latency_ratio: Option<f64>,
    /// End of the current quarantine, if any. Once it passes the server
    /// is on probation: routing resumes, but the next failure
    /// re-quarantines immediately.
    pub quarantined_until: Option<SimTime>,
    /// Set once a crash's data loss has been applied to the DMT, so a
    /// single outage is not invalidated twice. Reset on recovery.
    pub crash_handled: bool,
}

impl ServerHealth {
    /// True while the quarantine window covers `now`.
    pub fn is_quarantined(&self, now: SimTime) -> bool {
        matches!(self.quarantined_until, Some(until) if now < until)
    }
}

/// Health state of every CServer.
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    servers: Vec<ServerHealth>,
}

impl HealthMonitor {
    /// A monitor for `n` servers, all healthy.
    pub fn new(n: usize) -> Self {
        HealthMonitor {
            servers: vec![ServerHealth::default(); n],
        }
    }

    /// Grows the monitor to cover at least `n` servers (idempotent).
    pub fn ensure_servers(&mut self, n: usize) {
        if self.servers.len() < n {
            self.servers.resize(n, ServerHealth::default());
        }
    }

    /// Number of tracked servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Health of one server, or `None` for an out-of-range index.
    pub fn server(&self, index: usize) -> Option<&ServerHealth> {
        self.servers.get(index)
    }

    /// Records a successful operation with its observed-over-predicted
    /// latency ratio. Ends any quarantine (the server proved itself) and
    /// clears the crash marker.
    pub fn record_success(&mut self, index: usize, ratio: f64) {
        let Some(s) = self.servers.get_mut(index) else {
            return; // unknown server: nothing to record
        };
        s.consecutive_failures = 0;
        s.quarantined_until = None;
        s.crash_handled = false;
        if ratio.is_finite() && ratio >= 0.0 {
            s.latency_ratio = Some(match s.latency_ratio {
                Some(prev) => prev * (1.0 - EWMA_ALPHA) + ratio * EWMA_ALPHA,
                None => ratio,
            });
        }
    }

    /// Records a failed operation. Quarantines the server until
    /// `now + duration` once `threshold` consecutive failures accumulate
    /// (or immediately when already on probation); returns `true` if a
    /// new quarantine started.
    pub fn record_failure(
        &mut self,
        index: usize,
        now: SimTime,
        threshold: u32,
        duration: s4d_sim::SimDuration,
    ) -> bool {
        let Some(s) = self.servers.get_mut(index) else {
            return false; // unknown server: nothing to record
        };
        s.consecutive_failures += 1;
        if s.is_quarantined(now) {
            return false;
        }
        let on_probation = s.quarantined_until.is_some();
        if s.consecutive_failures >= threshold.max(1) || on_probation {
            s.quarantined_until = Some(now + duration);
            true
        } else {
            false
        }
    }

    /// Quarantines a server outright (crash detected) until `until`.
    /// Returns `true` if it was not already quarantined.
    pub fn quarantine(&mut self, index: usize, now: SimTime, until: SimTime) -> bool {
        let Some(s) = self.servers.get_mut(index) else {
            return false; // unknown server: nothing to quarantine
        };
        let newly = !s.is_quarantined(now);
        let prev = s.quarantined_until.unwrap_or(SimTime::ZERO);
        s.quarantined_until = Some(prev.max(until));
        newly
    }

    /// Marks a crash's data-loss handling as done; returns `false` if it
    /// was already marked (the same outage was handled before).
    pub fn claim_crash_handling(&mut self, index: usize) -> bool {
        let Some(s) = self.servers.get_mut(index) else {
            return false; // unknown server: nothing to claim
        };
        if s.crash_handled {
            false
        } else {
            s.crash_handled = true;
            true
        }
    }

    /// True if this server should not receive new work at `now`.
    pub fn is_unhealthy(&self, index: usize, now: SimTime) -> bool {
        self.servers
            .get(index)
            .is_some_and(|s| s.is_quarantined(now))
    }

    /// True if any tracked server is quarantined at `now`.
    pub fn any_unhealthy(&self, now: SimTime) -> bool {
        self.servers.iter().any(|s| s.is_quarantined(now))
    }

    /// True if any server shows signs of trouble: quarantine, a recent
    /// failure, or a latency EWMA above `ratio_threshold`. Drives the
    /// `flush_on_risk` eager-flush policy.
    pub fn any_at_risk(&self, now: SimTime, ratio_threshold: f64) -> bool {
        self.servers.iter().any(|s| {
            s.is_quarantined(now)
                || s.consecutive_failures > 0
                || s.latency_ratio.is_some_and(|r| r > ratio_threshold)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_sim::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    const Q: SimDuration = SimDuration::from_secs(10);

    #[test]
    fn failures_accumulate_to_quarantine() {
        let mut m = HealthMonitor::new(2);
        assert!(!m.record_failure(0, t(1), 3, Q));
        assert!(!m.record_failure(0, t(2), 3, Q));
        assert!(!m.any_unhealthy(t(2)));
        assert!(m.record_failure(0, t(3), 3, Q), "third strike quarantines");
        assert!(m.is_unhealthy(0, t(3)));
        assert!(!m.is_unhealthy(1, t(3)), "other servers unaffected");
        // Further failures while quarantined don't start a new quarantine.
        assert!(!m.record_failure(0, t(4), 3, Q));
        // Quarantine expires into probation.
        assert!(!m.is_unhealthy(0, t(13)));
        // A failure on probation re-quarantines immediately.
        assert!(m.record_failure(0, t(14), 3, Q));
        assert!(m.is_unhealthy(0, t(14)));
    }

    #[test]
    fn success_clears_everything() {
        let mut m = HealthMonitor::new(1);
        for i in 0..3 {
            m.record_failure(0, t(i), 3, Q);
        }
        assert!(m.is_unhealthy(0, t(3)));
        m.record_success(0, 1.0);
        assert!(!m.is_unhealthy(0, t(3)));
        assert_eq!(m.server(0).unwrap().consecutive_failures, 0);
        // Counter restarts from scratch.
        assert!(!m.record_failure(0, t(5), 3, Q));
    }

    #[test]
    fn ewma_tracks_latency_ratio() {
        let mut m = HealthMonitor::new(1);
        m.record_success(0, 1.0);
        assert_eq!(m.server(0).unwrap().latency_ratio, Some(1.0));
        for _ in 0..50 {
            m.record_success(0, 20.0);
        }
        let r = m.server(0).unwrap().latency_ratio.unwrap();
        assert!(r > 15.0, "EWMA converges towards sustained ratio: {r}");
        assert!(m.any_at_risk(t(0), 8.0));
        assert!(!m.any_at_risk(t(0), 100.0));
        // Garbage ratios are ignored.
        m.record_success(0, f64::NAN);
        assert!(m.server(0).unwrap().latency_ratio.unwrap().is_finite());
    }

    #[test]
    fn crash_quarantine_and_claim() {
        let mut m = HealthMonitor::new(2);
        assert!(m.quarantine(1, t(5), t(15)));
        assert!(!m.quarantine(1, t(6), t(12)), "already quarantined");
        assert!(m.is_unhealthy(1, t(6)));
        // Claim is once per outage.
        assert!(m.claim_crash_handling(1));
        assert!(!m.claim_crash_handling(1));
        // Recovery (a success) re-arms the claim for a future crash.
        m.record_success(1, 1.0);
        assert!(m.claim_crash_handling(1));
        // Extending never shortens.
        m.quarantine(0, t(0), t(20));
        m.quarantine(0, t(1), t(10));
        assert!(m.is_unhealthy(0, t(15)));
    }

    #[test]
    fn at_risk_considers_recent_failures() {
        let mut m = HealthMonitor::new(1);
        assert!(!m.any_at_risk(t(0), 8.0));
        m.record_failure(0, t(0), 5, Q);
        assert!(m.any_at_risk(t(0), 8.0), "one failure is already a risk");
    }

    #[test]
    fn ensure_servers_grows_only() {
        let mut m = HealthMonitor::default();
        m.ensure_servers(3);
        assert_eq!(m.server_count(), 3);
        m.record_failure(2, t(0), 1, Q);
        m.ensure_servers(2);
        assert_eq!(m.server_count(), 3, "never shrinks");
        assert!(m.is_unhealthy(2, t(0)), "state survives ensure");
    }
}
