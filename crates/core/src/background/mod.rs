//! The unified background-work scheduler (the paper's Rebuilder, plus
//! the scrubber and journal straggler-drain).
//!
//! [`BackgroundScheduler`] owns the `Pending` state machine — every
//! plan-completion obligation a foreground or background plan registers
//! — together with the in-flight markers, eviction pins, and the scrub
//! cursor. The per-wake work itself is split by concern: [`rebuild`]
//! groups dirty extents into flush plans and flagged reads into fetch
//! plans (and applies their completions); [`scrub`] walks the seal
//! cursor. [`S4dCache::background_poll`] strings them into one
//! prioritized wake: flushes, then fetches, then scrubbing, then
//! checkpointing, then the journal straggler drain.

pub(crate) mod rebuild;
pub(crate) mod scrub;

use std::collections::{HashMap, HashSet};

use s4d_mpiio::{BackgroundPoll, Cluster, Plan};
use s4d_pfs::{FileId, Priority};
use s4d_sim::SimTime;

use crate::layer::S4dCache;
use crate::shard::MetadataPlane;

/// One dirty extent inside a flush group.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlushItem {
    orig: FileId,
    d_offset: u64,
    len: u64,
    c_file: FileId,
    c_offset: u64,
    version: u64,
}

/// A background action awaiting plan completion.
#[derive(Debug, Clone)]
pub(crate) enum Pending {
    /// A foreground read finished: release its eviction pins.
    Unpin(Vec<(FileId, u64, u64)>),
    /// Several actions share one plan (e.g. unpin + eager fetch).
    Multi(Vec<Pending>),
    /// Flush of a run of file-contiguous dirty extents back to DServers.
    /// Grouping adjacent extents turns many small cache writes into one
    /// large sequential DServer write — the data *reorganisation* of
    /// §III.F, and a large part of why buffering random writes pays off.
    Flush(Vec<FlushItem>),
    /// Fetch of the gaps of a run of adjacent flagged CDT entries.
    Fetch {
        orig: FileId,
        /// The `(offset, len)` CDT keys whose `C_flag` this fetch clears.
        cdt_keys: Vec<(u64, u64)>,
        /// `(d_offset, len, c_file, c_offset)` pieces reserved for the data.
        pieces: Vec<(u64, u64, FileId, u64)>,
    },
    /// A foreground write finished: seal the extents it filled, as
    /// `(file, d_offset, version)` captured at plan time. The version gate
    /// skips any extent a later write touched in the meantime.
    Seal(Vec<(FileId, u64, u64)>),
    /// Fresh extents a write plan's admission inserted, as
    /// `(d_offset, len)` ranges of `orig`. Completion is a no-op (the
    /// data landed); on failure the mappings point at cache space whose
    /// bytes may never have been written and must be unwound before the
    /// Rebuilder can flush unwritten space over good DServer data.
    Admitted {
        /// Original file the extents map.
        orig: FileId,
        /// `(d_offset, len)` of each freshly inserted extent.
        ranges: Vec<(u64, u64)>,
    },
    /// A journal frame riding the plan: `offset` was reserved for these
    /// records at plan time. Completion is a no-op (the frame landed); on
    /// failure the reservation must be rolled back and the records
    /// requeued, or the journal gets a hole that truncates every later
    /// acked record at recovery.
    Journal {
        /// Reserved journal append offset.
        offset: u64,
        /// The records the frame encodes.
        records: Vec<crate::durability::journal::JournalRecord>,
    },
}

/// True for actions that represent real outstanding work (a pending Seal
/// is advisory bookkeeping — checksums attach on completion — and must
/// not keep the drain loop spinning).
fn blocks_idle(p: &Pending) -> bool {
    match p {
        Pending::Seal(_) | Pending::Admitted { .. } | Pending::Journal { .. } => false,
        Pending::Multi(actions) => actions.iter().any(blocks_idle),
        _ => true,
    }
}

/// Owns every deferred-work obligation of the middleware: the pending
/// state machine keyed by plan tag, the flush/fetch in-flight markers,
/// the eviction pins of in-flight reads, and the scrubber's cursor.
#[derive(Debug)]
pub(crate) struct BackgroundScheduler {
    /// Actions to apply when the tagged plan completes.
    pending: HashMap<u64, Pending>,
    /// Next plan tag to hand out (0 is reserved for "no callback").
    next_tag: u64,
    /// `(file, d_offset)` of dirty extents a flush plan is moving.
    inflight_flush: HashSet<(FileId, u64)>,
    /// `(file, offset, len)` CDT keys a fetch plan is filling.
    inflight_fetch: HashSet<(FileId, u64, u64)>,
    /// Ranges referenced by in-flight foreground reads; eviction must not
    /// discard them (a queued sub-request would read freed space).
    pins: Vec<(FileId, u64, u64)>,
    /// Per-shard scrub resume positions: the last `(file, d_offset)`
    /// verified in each shard. Independent cursors let every shard make
    /// scrub progress each wake instead of one global walk starving the
    /// tail shards.
    scrub_cursors: Vec<Option<(FileId, u64)>>,
}

impl BackgroundScheduler {
    /// A fresh scheduler with nothing pending and one scrub cursor per
    /// metadata shard.
    pub(crate) fn new(shards: usize) -> Self {
        BackgroundScheduler {
            pending: HashMap::new(),
            next_tag: 1,
            inflight_flush: HashSet::new(),
            inflight_fetch: HashSet::new(),
            pins: Vec::new(),
            scrub_cursors: vec![None; shards.max(1)],
        }
    }

    /// Registers a completion action under a fresh plan tag.
    pub(crate) fn register(&mut self, action: Pending) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, action);
        tag
    }

    /// Chains `action` onto an already-registered tag (both apply when
    /// the plan completes).
    pub(crate) fn chain(&mut self, tag: u64, action: Pending) {
        let chained = match self.pending.remove(&tag) {
            Some(existing) => Pending::Multi(vec![existing, action]),
            None => action,
        };
        self.pending.insert(tag, chained);
    }

    /// Claims the action registered under `tag`, if any.
    pub(crate) fn take(&mut self, tag: u64) -> Option<Pending> {
        self.pending.remove(&tag)
    }

    /// Pins ranges against eviction for the lifetime of a read plan.
    pub(crate) fn pin_all(&mut self, ranges: &[(FileId, u64, u64)]) {
        self.pins.extend(ranges.iter().copied());
    }

    /// True if `[off, off + len)` of `file` overlaps any active pin.
    pub(crate) fn overlaps_pin(&self, file: FileId, off: u64, len: u64) -> bool {
        self.pins.iter().any(|&(p_file, p_off, p_len)| {
            p_file == file && p_off < off + len && off < p_off + p_len
        })
    }

    fn release_pins(&mut self, ranges: Vec<(FileId, u64, u64)>) {
        for range in ranges {
            if let Some(i) = self.pins.iter().position(|&p| p == range) {
                self.pins.swap_remove(i);
            }
        }
    }

    /// Releases runner-visible state a failed plan held, *without* the
    /// data effects of completion: pins lift, in-flight markers clear,
    /// fetch reservations return to the allocator. Flushed extents stay
    /// dirty and flagged reads stay flagged, so the Rebuilder retries.
    pub(crate) fn abandon(&mut self, plane: &mut MetadataPlane, action: Option<Pending>) {
        match action {
            Some(Pending::Multi(actions)) => {
                for a in actions {
                    self.abandon(plane, Some(a));
                }
            }
            Some(Pending::Unpin(ranges)) => self.release_pins(ranges),
            Some(Pending::Flush(items)) => {
                for item in items {
                    self.inflight_flush.remove(&(item.orig, item.d_offset));
                }
            }
            Some(Pending::Fetch {
                orig,
                cdt_keys,
                pieces,
            }) => {
                for (d_off, len, c_file, c_off) in pieces {
                    // The reservation came from the shard owning the
                    // piece's original-file offset; return it there.
                    let shard = plane.router().shard_of(orig, d_off);
                    plane.release(shard, c_file, c_off, len);
                }
                for (o, l) in cdt_keys {
                    self.inflight_fetch.remove(&(orig, o, l));
                }
            }
            // Sealing is best-effort: an unsealed extent just stays
            // unverified until the scrubber byte-compares it.
            Some(Pending::Seal(_)) => {}
            // These two need DMT/durability access and are handled by
            // `S4dCache::unwind_failed` before it delegates here.
            Some(Pending::Admitted { .. }) | Some(Pending::Journal { .. }) => {}
            None => {}
        }
    }

    /// True while any registered action represents outstanding work.
    fn any_blocking(&self) -> bool {
        self.pending.values().any(blocks_idle)
    }
}

impl S4dCache {
    /// Unwinds the side effects of a failed plan. The simple
    /// runner-visible state (pins, in-flight markers, fetch
    /// reservations) delegates to [`BackgroundScheduler::abandon`]; the
    /// two failure-critical actions need wider access:
    ///
    /// * [`Pending::Admitted`] — fresh dirty mappings whose data writes
    ///   may never have landed are removed and their cache space
    ///   released. Leaving them would let the Rebuilder flush unwritten
    ///   (zero) cache space over good DServer data. The removals emit
    ///   normal `Remove` journal records, so recovery replays
    ///   insert-then-remove and converges to the same table.
    /// * [`Pending::Journal`] — the frame's append reservation rolls
    ///   back and its records requeue, keeping the journal hole-free.
    pub(crate) fn unwind_failed(&mut self, cluster: &mut Cluster, action: Option<Pending>) {
        match action {
            Some(Pending::Multi(actions)) => {
                // Journal rollbacks first: an admission unwind appends its
                // Remove records synchronously, which must land *at* the
                // rolled-back offset — not past the failed frame's hole.
                let (journals, rest): (Vec<_>, Vec<_>) = actions
                    .into_iter()
                    .partition(|a| matches!(a, Pending::Journal { .. }));
                for a in journals {
                    self.unwind_failed(cluster, Some(a));
                }
                for a in rest {
                    self.unwind_failed(cluster, Some(a));
                }
            }
            Some(Pending::Admitted { orig, ranges }) => {
                let mut freed: Vec<(usize, FileId, u64, u64)> = Vec::new();
                for (d_offset, len) in ranges {
                    // Only the extent this plan inserted: same start, same
                    // length, still dirty (nothing acked it since).
                    let matches = self
                        .plane
                        .get(orig, d_offset)
                        .is_some_and(|e| e.len == len && e.dirty);
                    if !matches {
                        continue;
                    }
                    let shard = self.plane.router().shard_of(orig, d_offset);
                    if let Some(e) = self.plane.remove(orig, d_offset) {
                        freed.push((shard, e.c_file, e.c_offset, e.len));
                        self.metrics.admission_unwinds += 1;
                    }
                }
                if freed.is_empty() {
                    return;
                }
                // Journal-before-reuse: the Remove records `dmt.remove`
                // queued must be durable before the freed space can be
                // handed out again — a crash after reuse but before the
                // Remove lands would resurrect the stale mapping over
                // foreign bytes. Same discipline as eviction's
                // journal-before-discard, through the same proof type.
                match self.dur.append_journal_sync(
                    cluster,
                    &mut self.plane,
                    &self.config,
                    &mut self.metrics,
                    &[],
                ) {
                    Some(proof) => {
                        for (shard, c_file, c_off, len) in freed {
                            self.plane.release(shard, c_file, c_off, len);
                            self.dur.discard_cache(cluster, &proof, c_file, c_off, len);
                        }
                    }
                    // Journal stalled (ENOSPC/media under it): park the
                    // ranges; background_poll releases and discards them
                    // once a retried append furnishes the proof.
                    None => self.stalled_discards.extend(freed),
                }
            }
            Some(Pending::Journal { offset, records }) => {
                self.dur.unplan_journal(offset, records, &mut self.metrics);
            }
            other => self.bg.abandon(&mut self.plane, other),
        }
    }

    /// One background wake: flushes, fetches, scrubbing, checkpointing,
    /// and the journal straggler drain, in that priority order — the body
    /// of [`s4d_mpiio::Middleware::poll_background`].
    pub(crate) fn background_poll(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
    ) -> BackgroundPoll {
        if self.config.force_miss {
            return BackgroundPoll {
                plans: Vec::new(),
                next_wake: Some(now + self.config.rebuild_period),
                work_pending: false,
            };
        }
        let mut plans = Vec::new();
        // A stalled journal (ENOSPC / media error under the append) blocks
        // every durable effect; retry it first so the rest of the wake can
        // make progress, then finish any discard/release work that was
        // parked behind the stall.
        if self.dur.is_stalled() {
            self.dur
                .retry_stall(cluster, &mut self.plane, &self.config, &mut self.metrics);
        }
        if !self.dur.is_stalled() && !self.stalled_discards.is_empty() {
            if let Some(proof) = self.dur.append_journal_sync(
                cluster,
                &mut self.plane,
                &self.config,
                &mut self.metrics,
                &[],
            ) {
                for (shard, c_file, c_off, len) in std::mem::take(&mut self.stalled_discards) {
                    self.plane.release(shard, c_file, c_off, len);
                    self.dur.discard_cache(cluster, &proof, c_file, c_off, len);
                }
            }
        }
        if !self.config.persistent_placement {
            // CARL-style placement keeps data on the CServers for good:
            // nothing is ever written back, so there is nothing to flush.
            self.build_flushes(cluster, now, &mut plans);
        }
        self.build_fetches(cluster, now, &mut plans);
        if self.config.scrub_bytes_per_wake > 0 {
            self.run_scrub(cluster);
        }
        self.dur
            .maybe_checkpoint(cluster, &mut self.plane, &self.config, &mut self.metrics);
        // Persist any straggling journal records with background priority.
        if let Some((op, records)) = self.dur.drain_journal(
            cluster,
            &mut self.plane,
            &self.config,
            &mut self.metrics,
            Priority::Background,
        ) {
            let offset = op.offset;
            let mut plan = Plan::single_phase(vec![op]);
            // Tag the frame so a failed drain rolls its reservation back
            // instead of leaving a hole in the journal.
            plan.tag = self.bg.register(Pending::Journal { offset, records });
            plans.push(plan);
        }
        debug_assert_eq!(
            self.plane.pending_records(),
            0,
            "poll_background returned with uncollected journal records"
        );
        // Mirror the allocator's accounting-bug counter into the metrics
        // snapshot (monotone, so assignment is safe).
        self.metrics.space_over_releases = self.plane.over_releases();
        let work_pending = !plans.is_empty()
            || self.bg.any_blocking()
            || self.dur.is_stalled()
            || !self.stalled_discards.is_empty()
            || (!self.config.persistent_placement && self.plane.dirty_bytes() > 0);
        BackgroundPoll {
            plans,
            next_wake: Some(now + self.config.rebuild_period),
            work_pending,
        }
    }
}
