//! The unified background-work scheduler (the paper's Rebuilder, plus
//! the scrubber and journal straggler-drain).
//!
//! [`BackgroundScheduler`] owns the `Pending` state machine — every
//! plan-completion obligation a foreground or background plan registers
//! — together with the in-flight markers, eviction pins, and the scrub
//! cursor. The per-wake work itself is split by concern: [`rebuild`]
//! groups dirty extents into flush plans and flagged reads into fetch
//! plans (and applies their completions); [`scrub`] walks the seal
//! cursor. [`S4dCache::background_poll`] strings them into one
//! prioritized wake: flushes, then fetches, then scrubbing, then
//! checkpointing, then the journal straggler drain.

pub(crate) mod rebuild;
pub(crate) mod scrub;

use std::collections::{HashMap, HashSet};

use s4d_mpiio::{BackgroundPoll, Cluster, Plan};
use s4d_pfs::{FileId, Priority};
use s4d_sim::SimTime;

use crate::layer::S4dCache;
use crate::space::SpaceManager;

/// One dirty extent inside a flush group.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlushItem {
    orig: FileId,
    d_offset: u64,
    len: u64,
    c_file: FileId,
    c_offset: u64,
    version: u64,
}

/// A background action awaiting plan completion.
#[derive(Debug, Clone)]
pub(crate) enum Pending {
    /// A foreground read finished: release its eviction pins.
    Unpin(Vec<(FileId, u64, u64)>),
    /// Several actions share one plan (e.g. unpin + eager fetch).
    Multi(Vec<Pending>),
    /// Flush of a run of file-contiguous dirty extents back to DServers.
    /// Grouping adjacent extents turns many small cache writes into one
    /// large sequential DServer write — the data *reorganisation* of
    /// §III.F, and a large part of why buffering random writes pays off.
    Flush(Vec<FlushItem>),
    /// Fetch of the gaps of a run of adjacent flagged CDT entries.
    Fetch {
        orig: FileId,
        /// The `(offset, len)` CDT keys whose `C_flag` this fetch clears.
        cdt_keys: Vec<(u64, u64)>,
        /// `(d_offset, len, c_file, c_offset)` pieces reserved for the data.
        pieces: Vec<(u64, u64, FileId, u64)>,
    },
    /// A foreground write finished: seal the extents it filled, as
    /// `(file, d_offset, version)` captured at plan time. The version gate
    /// skips any extent a later write touched in the meantime.
    Seal(Vec<(FileId, u64, u64)>),
}

/// True for actions that represent real outstanding work (a pending Seal
/// is advisory bookkeeping — checksums attach on completion — and must
/// not keep the drain loop spinning).
fn blocks_idle(p: &Pending) -> bool {
    match p {
        Pending::Seal(_) => false,
        Pending::Multi(actions) => actions.iter().any(blocks_idle),
        _ => true,
    }
}

/// Owns every deferred-work obligation of the middleware: the pending
/// state machine keyed by plan tag, the flush/fetch in-flight markers,
/// the eviction pins of in-flight reads, and the scrubber's cursor.
#[derive(Debug)]
pub(crate) struct BackgroundScheduler {
    /// Actions to apply when the tagged plan completes.
    pending: HashMap<u64, Pending>,
    /// Next plan tag to hand out (0 is reserved for "no callback").
    next_tag: u64,
    /// `(file, d_offset)` of dirty extents a flush plan is moving.
    inflight_flush: HashSet<(FileId, u64)>,
    /// `(file, offset, len)` CDT keys a fetch plan is filling.
    inflight_fetch: HashSet<(FileId, u64, u64)>,
    /// Ranges referenced by in-flight foreground reads; eviction must not
    /// discard them (a queued sub-request would read freed space).
    pins: Vec<(FileId, u64, u64)>,
    /// Scrub resume position: the last `(file, d_offset)` verified.
    scrub_cursor: Option<(FileId, u64)>,
}

impl BackgroundScheduler {
    /// A fresh scheduler with nothing pending.
    pub(crate) fn new() -> Self {
        BackgroundScheduler {
            pending: HashMap::new(),
            next_tag: 1,
            inflight_flush: HashSet::new(),
            inflight_fetch: HashSet::new(),
            pins: Vec::new(),
            scrub_cursor: None,
        }
    }

    /// Registers a completion action under a fresh plan tag.
    pub(crate) fn register(&mut self, action: Pending) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, action);
        tag
    }

    /// Chains `action` onto an already-registered tag (both apply when
    /// the plan completes).
    pub(crate) fn chain(&mut self, tag: u64, action: Pending) {
        let chained = match self.pending.remove(&tag) {
            Some(existing) => Pending::Multi(vec![existing, action]),
            None => action,
        };
        self.pending.insert(tag, chained);
    }

    /// Claims the action registered under `tag`, if any.
    pub(crate) fn take(&mut self, tag: u64) -> Option<Pending> {
        self.pending.remove(&tag)
    }

    /// Pins ranges against eviction for the lifetime of a read plan.
    pub(crate) fn pin_all(&mut self, ranges: &[(FileId, u64, u64)]) {
        self.pins.extend(ranges.iter().copied());
    }

    /// True if `[off, off + len)` of `file` overlaps any active pin.
    pub(crate) fn overlaps_pin(&self, file: FileId, off: u64, len: u64) -> bool {
        self.pins.iter().any(|&(p_file, p_off, p_len)| {
            p_file == file && p_off < off + len && off < p_off + p_len
        })
    }

    fn release_pins(&mut self, ranges: Vec<(FileId, u64, u64)>) {
        for range in ranges {
            if let Some(i) = self.pins.iter().position(|&p| p == range) {
                self.pins.swap_remove(i);
            }
        }
    }

    /// Releases runner-visible state a failed plan held, *without* the
    /// data effects of completion: pins lift, in-flight markers clear,
    /// fetch reservations return to the allocator. Flushed extents stay
    /// dirty and flagged reads stay flagged, so the Rebuilder retries.
    pub(crate) fn abandon(&mut self, space: &mut SpaceManager, action: Option<Pending>) {
        match action {
            Some(Pending::Multi(actions)) => {
                for a in actions {
                    self.abandon(space, Some(a));
                }
            }
            Some(Pending::Unpin(ranges)) => self.release_pins(ranges),
            Some(Pending::Flush(items)) => {
                for item in items {
                    self.inflight_flush.remove(&(item.orig, item.d_offset));
                }
            }
            Some(Pending::Fetch {
                orig,
                cdt_keys,
                pieces,
            }) => {
                for (_d_off, len, c_file, c_off) in pieces {
                    space.release(c_file, c_off, len);
                }
                for (o, l) in cdt_keys {
                    self.inflight_fetch.remove(&(orig, o, l));
                }
            }
            // Sealing is best-effort: an unsealed extent just stays
            // unverified until the scrubber byte-compares it.
            Some(Pending::Seal(_)) => {}
            None => {}
        }
    }

    /// True while any registered action represents outstanding work.
    fn any_blocking(&self) -> bool {
        self.pending.values().any(blocks_idle)
    }
}

impl S4dCache {
    /// One background wake: flushes, fetches, scrubbing, checkpointing,
    /// and the journal straggler drain, in that priority order — the body
    /// of [`s4d_mpiio::Middleware::poll_background`].
    pub(crate) fn background_poll(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
    ) -> BackgroundPoll {
        if self.config.force_miss {
            return BackgroundPoll {
                plans: Vec::new(),
                next_wake: Some(now + self.config.rebuild_period),
                work_pending: false,
            };
        }
        let mut plans = Vec::new();
        if !self.config.persistent_placement {
            // CARL-style placement keeps data on the CServers for good:
            // nothing is ever written back, so there is nothing to flush.
            self.build_flushes(cluster, now, &mut plans);
        }
        self.build_fetches(cluster, now, &mut plans);
        if self.config.scrub_bytes_per_wake > 0 {
            self.run_scrub(cluster);
        }
        self.dur
            .maybe_checkpoint(cluster, &mut self.dmt, &self.config, &mut self.metrics);
        // Persist any straggling journal records with background priority.
        if let Some(op) = self.dur.drain_journal(
            cluster,
            &mut self.dmt,
            &self.config,
            &mut self.metrics,
            Priority::Background,
        ) {
            plans.push(Plan::single_phase(vec![op]));
        }
        debug_assert_eq!(
            self.dmt.pending_records(),
            0,
            "poll_background returned with uncollected journal records"
        );
        let work_pending = !plans.is_empty()
            || self.bg.any_blocking()
            || (!self.config.persistent_placement && self.dmt.dirty_bytes() > 0);
        BackgroundPoll {
            plans,
            next_wake: Some(now + self.config.rebuild_period),
            work_pending,
        }
    }
}
