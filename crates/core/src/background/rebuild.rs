//! The Rebuilder (§III.F): flush grouping, fetch grouping, and the
//! completion paths that apply their effects.
//!
//! Plan *construction* lives here (`build_flushes`, `build_fetches`) next
//! to the completion handlers (`apply_pending` and the `finish_*`
//! family) so the two halves of each background cycle — what a plan
//! promises and what its completion delivers — can be read side by side.

use s4d_mpiio::{Cluster, Plan, PlannedIo, Tier};
use s4d_pfs::{FileId, Priority};
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;

use crate::durability::crash::CrashSite;
use crate::durability::journal::{self, JournalRecord};
use crate::layer::S4dCache;
use crate::names::MAX_GROUP_BYTES;

use super::{FlushItem, Pending};

impl S4dCache {
    /// Builds the Rebuilder's flush plans (dirty cache data → DServers,
    /// §III.F step 1). Adjacent dirty extents of a file are grouped into
    /// one plan: phase 1 reads the cached bytes, phase 2 writes them to
    /// the original file as a single sequential op.
    pub(crate) fn build_flushes(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        plans: &mut Vec<Plan>,
    ) {
        // With `flush_on_risk`, a CServer showing trouble (quarantine, a
        // recent failure, or a latency EWMA above the threshold) triggers
        // flushing *everything* dirty — shrinking the data-loss window a
        // subsequent crash could hit.
        let limit = if self.config.flush_on_risk
            && self
                .health
                .any_at_risk(now, self.config.degraded_latency_ratio)
        {
            usize::MAX
        } else {
            self.config.max_flush_per_wake
        };
        let mut candidates = self.plane.dirty_lru(limit);
        candidates.retain(|(f, d, _)| !self.bg.inflight_flush.contains(&(*f, *d)));
        candidates.sort_by_key(|(f, d, _)| (f.0, *d));
        let plans_base = plans.len();
        let flushes_before = self.metrics.flushes;
        let flushed_before = self.metrics.flushed_bytes;
        let mut intents: Vec<JournalRecord> = Vec::new();
        let mut i = 0;
        while let Some(&(file, start, first)) = candidates.get(i) {
            let mut items = vec![FlushItem {
                orig: file,
                d_offset: start,
                len: first.len,
                c_file: first.c_file,
                c_offset: first.c_offset,
                version: first.version,
            }];
            let mut end = start + first.len;
            let mut j = i + 1;
            while let Some(&(f2, d2, e2)) = candidates.get(j) {
                if f2 == file && d2 == end && (end - start) + e2.len <= MAX_GROUP_BYTES {
                    items.push(FlushItem {
                        orig: f2,
                        d_offset: d2,
                        len: e2.len,
                        c_file: e2.c_file,
                        c_offset: e2.c_offset,
                        version: e2.version,
                    });
                    end = d2 + e2.len;
                    j += 1;
                } else {
                    break;
                }
            }
            i = j;
            // Phase 1: read the cached bytes (merge cache-contiguous runs).
            let mut reads: Vec<PlannedIo> = Vec::new();
            for item in &items {
                if let Some(last) = reads.last_mut() {
                    if last.file == item.c_file && last.offset + last.len == item.c_offset {
                        last.len += item.len;
                        continue;
                    }
                }
                reads.push(PlannedIo {
                    tier: Tier::CServers,
                    file: item.c_file,
                    kind: IoKind::Read,
                    offset: item.c_offset,
                    len: item.len,
                    priority: Priority::Background,
                    data: None,
                    app_offset: None,
                });
            }
            // Phase 2: one sequential write to the original file.
            let write = PlannedIo {
                tier: Tier::DServers,
                file,
                kind: IoKind::Write,
                offset: start,
                len: end - start,
                priority: Priority::Background,
                data: None,
                app_offset: None,
            };
            self.metrics.flushes += items.len() as u64;
            self.metrics.flushed_bytes += end - start;
            for item in &items {
                self.bg.inflight_flush.insert((item.orig, item.d_offset));
            }
            intents.push(JournalRecord::FlushIntent {
                d_file: file,
                d_offset: start,
            });
            let tag = self.bg.register(Pending::Flush(items));
            plans.push(Plan {
                tag,
                lead_in: SimDuration::ZERO,
                phases: vec![reads, vec![write]],
                deadline: None,
            });
        }
        if !intents.is_empty() {
            // Journal the intents before any flush plan can run: recovery
            // sees which ranges were mid-flush and that a re-flush is due.
            // The matching commit is the SetClean record at completion, so
            // a crash between the two re-flushes idempotently.
            let durable = self.dur.append_journal_sync(
                cluster,
                &mut self.plane,
                &self.config,
                &mut self.metrics,
                &intents,
            );
            if durable.is_none() {
                // Journal stalled (ENOSPC / media error): the intents are
                // queued but not durable, so the flush plans must not run
                // this wake. Abandon them — the extents stay dirty and the
                // next wake retries. (A stray FlushIntent that lands later
                // without its flush is harmless: recovery just schedules
                // an idempotent re-flush.)
                for plan in plans.drain(plans_base..) {
                    let action = self.bg.take(plan.tag);
                    self.bg.abandon(&mut self.plane, action);
                }
                self.metrics.flushes = flushes_before;
                self.metrics.flushed_bytes = flushed_before;
            }
        }
    }

    /// Builds the Rebuilder's fetch plans (CDT `C_flag` data → CServers,
    /// §III.F step 2). Adjacent flagged entries of a file are fetched as
    /// one group so sequential critical data costs one large DServer read.
    pub(crate) fn build_fetches(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        plans: &mut Vec<Plan>,
    ) {
        // Fetches create new cache data striped over every CServer; pause
        // them entirely while any server is quarantined (the flags stay
        // set, so fetching resumes once the tier is healthy again).
        if self.health.any_unhealthy(now) {
            return;
        }
        let mut flagged = self.plane.cdt_flagged(self.config.max_fetch_per_wake);
        flagged.retain(|e| !self.bg.inflight_fetch.contains(&(e.file, e.offset, e.len)));
        flagged.sort_by_key(|e| (e.file.0, e.offset));
        let mut i = 0;
        while let Some(head) = flagged.get(i) {
            let file = head.file;
            let start = head.offset;
            let mut end = start + head.len;
            let mut keys = vec![(head.offset, head.len)];
            let mut j = i + 1;
            while let Some(e) = flagged.get(j) {
                if e.file == file && e.offset == end && (end - start) + e.len <= MAX_GROUP_BYTES {
                    end = e.offset + e.len;
                    keys.push((e.offset, e.len));
                    j += 1;
                } else {
                    break;
                }
            }
            i = j;
            if !self.cache_file_of.contains_key(&file) {
                continue;
            }
            let view = self.plane.view(file, start, end - start);
            if view.fully_covered() {
                for &(o, l) in &keys {
                    self.plane.cdt_clear_c_flag(file, o, l);
                }
                continue;
            }
            let total: u64 = view.gaps.iter().map(|&(_, l)| l).sum();
            // Each gap splits into shard segments; every owning shard
            // must make room before the group's fetch is planned.
            let mut shard_asks: Vec<u64> = vec![0; self.plane.shard_count()];
            for &(g_off, g_len) in &view.gaps {
                for seg in self.plane.router().segments(file, g_off, g_len) {
                    if let Some(ask) = shard_asks.get_mut(seg.shard) {
                        *ask += seg.len;
                    }
                }
            }
            let mut roomy = true;
            for (shard, &ask) in shard_asks.iter().enumerate() {
                if ask > 0 && !self.make_room(cluster, shard, ask) {
                    roomy = false;
                    break;
                }
            }
            if !roomy {
                // No clean space to reclaim: stop fetching this wake.
                break;
            }
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            let mut pieces = Vec::new();
            for &(g_off, g_len) in &view.gaps {
                for seg in self.plane.router().segments(file, g_off, g_len) {
                    let Some(c_file) = self.cache_file_for(file, seg.shard) else {
                        continue;
                    };
                    let Some(allocs) = self.plane.alloc(seg.shard, c_file, seg.len) else {
                        continue; // make_room guaranteed capacity; skip the segment if not
                    };
                    reads.push(PlannedIo {
                        tier: Tier::DServers,
                        file,
                        kind: IoKind::Read,
                        offset: seg.offset,
                        len: seg.len,
                        priority: Priority::Background,
                        data: None,
                        app_offset: None,
                    });
                    let mut cursor = seg.offset;
                    for p in allocs {
                        writes.push(PlannedIo {
                            tier: Tier::CServers,
                            file: c_file,
                            kind: IoKind::Write,
                            offset: p.c_offset,
                            len: p.len,
                            priority: Priority::Background,
                            data: None,
                            app_offset: None,
                        });
                        pieces.push((cursor, p.len, c_file, p.c_offset));
                        cursor += p.len;
                    }
                }
            }
            for &(o, l) in &keys {
                self.bg.inflight_fetch.insert((file, o, l));
            }
            let tag = self.bg.register(Pending::Fetch {
                orig: file,
                cdt_keys: keys,
                pieces,
            });
            self.metrics.fetches += 1;
            self.metrics.fetched_bytes += total;
            plans.push(Plan {
                tag,
                lead_in: SimDuration::ZERO,
                phases: vec![reads, writes],
                deadline: None,
            });
        }
    }

    /// Applies the completion action a finished plan registered.
    pub(crate) fn apply_pending(&mut self, cluster: &mut Cluster, action: Option<Pending>) {
        match action {
            Some(Pending::Multi(actions)) => {
                for a in actions {
                    self.apply_pending(cluster, Some(a));
                }
            }
            Some(Pending::Unpin(ranges)) => self.bg.release_pins(ranges),
            Some(Pending::Flush(items)) => self.finish_flush_group(cluster, items),
            Some(Pending::Fetch {
                orig,
                cdt_keys,
                pieces,
            }) => self.finish_fetch(cluster, orig, cdt_keys, pieces),
            Some(Pending::Seal(targets)) => self.finish_seals(cluster, targets),
            // Completion no-ops: the admission's data and the journal
            // frame landed; these actions only matter on plan failure.
            Some(Pending::Admitted { .. }) | Some(Pending::Journal { .. }) => {}
            None => {}
        }
    }

    /// Seals extents whose plan completed: reads the cached bytes back,
    /// checksums them, and attaches the seal if no write raced (version
    /// gate). Timing-mode stores hold no bytes; sealing is skipped there.
    pub(crate) fn finish_seals(&mut self, cluster: &mut Cluster, targets: Vec<(FileId, u64, u64)>) {
        for (orig, d_offset, version) in targets {
            let Some(e) = self.plane.get(orig, d_offset) else {
                continue;
            };
            if e.version != version {
                continue;
            }
            let (c_file, c_offset, len) = (e.c_file, e.c_offset, e.len);
            let Ok(Some(bytes)) = cluster.cpfs().read_bytes(c_file, c_offset, len) else {
                continue;
            };
            let sum = journal::crc32(&bytes);
            self.plane.seal_if(orig, d_offset, version, sum);
        }
    }

    fn finish_flush_group(&mut self, cluster: &mut Cluster, items: Vec<FlushItem>) {
        let mut seals: Vec<(FileId, u64, u64)> = Vec::new();
        for item in items {
            // The extent may have vanished while the flush was in flight —
            // a crash invalidated it, or eviction raced — and its cache
            // space may already hold *other* data. Copying then would
            // corrupt the original file, so the item is skipped; whoever
            // removed the extent accounted for its bytes.
            let still_there = self.plane.get(item.orig, item.d_offset).is_some_and(|e| {
                e.c_file == item.c_file && e.c_offset == item.c_offset && e.len >= item.len
            });
            if still_there {
                // Apply the data effect of the simulated copy (current
                // bytes — if a write raced the flush, DServers receive the
                // newest data and the extent simply stays dirty for a
                // later flush).
                let allowed = self.dur.fuse_consume(CrashSite::FlushCopy, item.len);
                if allowed > 0 {
                    let _ = cluster.copy_range(
                        (Tier::CServers, item.c_file, item.c_offset),
                        (Tier::DServers, item.orig, item.d_offset),
                        allowed,
                    );
                }
                // The commit (SetClean) only follows a complete copy; a
                // torn copy leaves the extent dirty, so recovery re-flushes
                // the whole range — idempotent because the same bytes land
                // on the same DServer offsets.
                if allowed == item.len
                    && self
                        .plane
                        .mark_clean_if(item.orig, item.d_offset, item.version)
                {
                    seals.push((item.orig, item.d_offset, item.version));
                }
            }
            self.bg.inflight_flush.remove(&(item.orig, item.d_offset));
        }
        // Flushing does not change the cached bytes: seal any flushed
        // extent that was still unverified.
        seals.retain(|&(f, o, _)| self.plane.get(f, o).is_some_and(|e| e.checksum.is_none()));
        self.finish_seals(cluster, seals);
    }

    fn finish_fetch(
        &mut self,
        cluster: &mut Cluster,
        orig: FileId,
        cdt_keys: Vec<(u64, u64)>,
        pieces: Vec<(u64, u64, FileId, u64)>,
    ) {
        let mut seals: Vec<(FileId, u64, u64)> = Vec::new();
        for (d_off, len, c_file, c_off) in pieces {
            // A foreground write may have mapped (parts of) this range while
            // the fetch was in flight; only fill the still-missing gaps and
            // return the rest of the reservation. Pieces are allocated per
            // shard segment, so the whole piece lives in `d_off`'s shard.
            let shard = self.plane.router().shard_of(orig, d_off);
            let view = self.plane.view(orig, d_off, len);
            for &(g_off, g_len) in &view.gaps {
                let rel = g_off - d_off;
                let allowed = self.dur.fuse_consume(CrashSite::FetchFill, g_len);
                if allowed > 0 {
                    let _ = cluster.copy_range(
                        (Tier::DServers, orig, g_off),
                        (Tier::CServers, c_file, c_off + rel),
                        allowed,
                    );
                }
                // Data-before-metadata: the mapping only exists once the
                // fill completed. A torn fill leaves orphaned cache bytes
                // for the recovery sweep, never a mapping to a hole.
                if allowed == g_len {
                    self.plane
                        .insert(orig, g_off, g_len, c_file, c_off + rel, false);
                    if let Some(e) = self.plane.get(orig, g_off) {
                        seals.push((orig, g_off, e.version));
                    }
                } else {
                    self.plane.release(shard, c_file, c_off + rel, g_len);
                }
            }
            // Give back the parts of the reservation that a racing write
            // already mapped elsewhere.
            for piece in &view.pieces {
                let rel = piece.d_offset - d_off;
                self.plane.release(shard, c_file, c_off + rel, piece.len);
            }
        }
        for (o, l) in cdt_keys {
            self.plane.cdt_clear_c_flag(orig, o, l);
            self.bg.inflight_fetch.remove(&(orig, o, l));
        }
        self.finish_seals(cluster, seals);
    }
}
