//! The background scrubber: cursor-walk verification of cached extents
//! against their seals (and, for clean data, against OPFS ground truth).

use s4d_mpiio::{Cluster, Tier};
use s4d_pfs::FileId;

use crate::durability::journal;
use crate::layer::S4dCache;

impl S4dCache {
    /// Verifies one cached extent. Clean extents are repaired from OPFS on
    /// mismatch and (re-)sealed; a corrupt *dirty* extent is unrecoverable
    /// and is dropped with its loss surfaced. Returns the bytes scanned,
    /// `Some(0)` if the extent vanished, or `None` when the stores hold no
    /// bytes (timing mode) and scrubbing is pointless.
    pub(crate) fn scrub_extent(
        &mut self,
        cluster: &mut Cluster,
        orig: FileId,
        d_offset: u64,
    ) -> Option<u64> {
        let Some(e) = self.plane.get(orig, d_offset).copied() else {
            return Some(0);
        };
        let bytes = match cluster.cpfs().read_bytes(e.c_file, e.c_offset, e.len) {
            Ok(Some(b)) => b,
            _ => return None,
        };
        let sum = journal::crc32(&bytes);
        match (e.dirty, e.checksum) {
            (false, Some(expect)) if expect == sum => {}
            (false, _) => {
                // Clean: OPFS is ground truth. Repair on mismatch, then
                // (re-)seal with the verified content.
                let Ok(Some(truth)) = cluster.opfs().read_bytes(orig, d_offset, e.len) else {
                    return None;
                };
                if truth != bytes {
                    let _ = cluster.copy_range(
                        (Tier::DServers, orig, d_offset),
                        (Tier::CServers, e.c_file, e.c_offset),
                        e.len,
                    );
                    self.metrics.scrub_repaired_bytes += e.len;
                }
                self.plane
                    .seal_if(orig, d_offset, e.version, journal::crc32(&truth));
            }
            (true, Some(expect)) if expect != sum => {
                // Unrecoverable: the only up-to-date copy is corrupt.
                let shard = self.plane.router().shard_of(orig, d_offset);
                self.plane.remove(orig, d_offset);
                match self.dur.append_journal_sync(
                    cluster,
                    &mut self.plane,
                    &self.config,
                    &mut self.metrics,
                    &[],
                ) {
                    Some(proof) => {
                        self.dur
                            .discard_cache(cluster, &proof, e.c_file, e.c_offset, e.len);
                        self.plane.release(shard, e.c_file, e.c_offset, e.len);
                    }
                    None => {
                        // Journal stalled: park the discard/release until
                        // the Remove is durable (see `stalled_discards`).
                        self.stalled_discards
                            .push((shard, e.c_file, e.c_offset, e.len));
                    }
                }
                self.metrics.scrub_lost_bytes += e.len;
                self.metrics.dirty_bytes_lost += e.len;
            }
            (true, Some(_)) => {} // sealed dirty extent, intact
            (true, None) => {
                self.metrics.scrub_unverified_bytes += e.len;
            }
        }
        self.metrics.scrub_scanned_bytes += e.len;
        Some(e.len)
    }

    /// One background scrub pass: each shard's cursor walks that shard's
    /// extents in `(file, offset)` order until its slice of the per-wake
    /// byte budget is spent. The budget splits evenly with the remainder
    /// on shard 0, so at `shard_count = 1` the whole budget drives the
    /// single cursor — the legacy walk. Wraps around, so every extent is
    /// eventually visited.
    pub(crate) fn run_scrub(&mut self, cluster: &mut Cluster) {
        let shards = self.plane.shard_count();
        let mut per_shard: Vec<Vec<(FileId, u64)>> = vec![Vec::new(); shards];
        for (f, o, _) in self.plane.iter_extents() {
            let shard = self.plane.router().shard_of(f, o);
            if let Some(list) = per_shard.get_mut(shard) {
                list.push((f, o));
            }
        }
        let total = self.config.scrub_bytes_per_wake;
        let base = total / shards as u64;
        let rem = total % shards as u64;
        for (shard, targets) in per_shard.iter_mut().enumerate() {
            if targets.is_empty() {
                continue;
            }
            targets.sort_unstable_by_key(|&(f, o)| (f.0, o));
            let cursor = self.bg.scrub_cursors.get(shard).copied().flatten();
            let start = match cursor {
                None => 0,
                Some((cf, co)) => targets
                    .iter()
                    .position(|&(f, o)| (f.0, o) > (cf.0, co))
                    .unwrap_or(0),
            };
            let mut budget = if shard == 0 { base + rem } else { base };
            for k in 0..targets.len() {
                if budget == 0 {
                    break;
                }
                let Some(&(f, o)) = targets.get((start + k) % targets.len()) else {
                    break; // modulo of a non-empty vec is always in range
                };
                match self.scrub_extent(cluster, f, o) {
                    None => return,
                    Some(scanned) => {
                        budget = budget.saturating_sub(scanned.max(1));
                        if let Some(c) = self.bg.scrub_cursors.get_mut(shard) {
                            *c = Some((f, o));
                        }
                    }
                }
            }
        }
    }

    /// Verifies every cached extent overlapping a range — the
    /// `verify_on_read` pre-pass.
    pub(crate) fn verify_range(
        &mut self,
        cluster: &mut Cluster,
        file: FileId,
        offset: u64,
        len: u64,
    ) {
        let targets: Vec<u64> = self
            .plane
            .extents_overlapping(file, offset, len)
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        for o in targets {
            if self.scrub_extent(cluster, file, o).is_none() {
                return;
            }
        }
    }
}
