//! Gray-failure handling: deadline budgets, the straggler verdict, and
//! queue-depth/tail-latency backpressure (DESIGN.md §13).
//!
//! Crashes are loud; *fail-slow* servers are not. A CServer that still
//! answers — just ten times slower than the cost model promises — never
//! trips the error path, yet it drags every request striped over it. The
//! machinery here notices (deadline budgets derived from the cost model,
//! per-server queue depth, a streaming p99 of the latency ratio) and
//! reacts without ever waiting on the straggler when a second copy of
//! the bytes exists:
//!
//! * [`S4dCache::apply_deadline`] prices each foreground plan with the
//!   model's own prediction — a sub-request that outlives
//!   `factor × max(T_D, T_C)` is a straggler;
//! * [`S4dCache::deadline_directive`] answers the runner's
//!   `on_deadline`: hedge clean cached reads to OPFS (same bytes, no
//!   risk), abandon and re-plan writes, wait on dirty reads (the cache
//!   holds the only copy — nothing else can produce the bytes);
//! * [`S4dCache::shed_admission`] degrades marginal admissions to OPFS
//!   while CServers are congested, and all of them under global
//!   overload.
//!
//! Abandoned writes are safe to re-plan: the DMT mapping survives the
//! abandonment, so the re-planned write lands on the same cache offsets
//! with the same payload — a late-applying original is byte-identical,
//! never half-applied (§9's journal-before-ack covers the metadata side).

use s4d_mpiio::{Cluster, HedgeDirective, Plan, PlannedIo, StragglerCtx, Tier};
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;

use crate::layer::S4dCache;
use crate::pipeline::RequestCtx;

/// Aggregate congestion verdict over the CServer tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pressure {
    /// No CServer is congested: admit normally.
    Normal,
    /// Some (not all) CServers are congested: shed marginal admissions.
    Elevated,
    /// Every CServer is congested: pause admission entirely.
    Overload,
}

impl S4dCache {
    /// Prices the plan's deadline budget from the cost model's predicted
    /// access time: `factor × max(T_D, T_C)`, floored at the configured
    /// minimum. No-op while deadlines are disabled (the default), so
    /// deadline-blind runs execute exactly as before.
    pub(crate) fn apply_deadline(&self, plan: &mut Plan, ctx: &RequestCtx) {
        if self.config.deadline_factor <= 0.0 {
            return;
        }
        let priced = ctx.predicted_secs * self.config.deadline_factor;
        let budget = if priced.is_finite() && priced > 0.0 {
            SimDuration::from_secs_f64(priced).max(self.config.deadline_min)
        } else {
            self.config.deadline_min
        };
        plan.deadline = Some(budget);
    }

    /// The `Middleware::on_deadline` decision body.
    ///
    /// Every CServer straggler is a health demerit first — deadline
    /// misses feed the same quarantine ladder as hard errors, so a
    /// fail-slow server is eventually routed around even if no request
    /// ever errors. Then, by traffic class:
    ///
    /// * clean cached **reads** (hedging enabled): abandon the straggler
    ///   and read the same bytes from OPFS — first responder wins;
    /// * **writes**: abandon and re-plan; with the server now demerited,
    ///   fresh admissions divert to OPFS while re-dirty writes ride the
    ///   replan backoff until the server answers or is quarantined;
    /// * dirty reads and overhead traffic: wait — the cache holds the
    ///   only copy, and no directive can manufacture the bytes.
    pub(crate) fn deadline_directive(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        ctx: &StragglerCtx,
    ) -> HedgeDirective {
        if ctx.tier == Tier::DServers {
            // OPFS is the durability root; there is no second copy of
            // unflushed data to hedge against. Ride it out.
            self.metrics.straggler_waits += 1;
            return HedgeDirective::Wait;
        }
        self.ensure_health(cluster);
        // A miss is fail-slow evidence, whatever we decide below.
        if self.health.record_failure(
            ctx.server,
            now,
            self.config.quarantine_after,
            self.config.quarantine_duration,
        ) {
            self.metrics.quarantines += 1;
        }
        match ctx.kind {
            IoKind::Read => self.hedge_read_directive(ctx),
            IoKind::Write => {
                if ctx.app_segments.is_empty() {
                    // Overhead traffic (journal appends): a re-plan could
                    // not reproduce the batched records. Wait it out.
                    self.metrics.straggler_waits += 1;
                    HedgeDirective::Wait
                } else {
                    self.metrics.straggler_abandons += 1;
                    HedgeDirective::Abandon
                }
            }
        }
    }

    /// Hedge a straggling cached read to OPFS when every cached byte it
    /// covers is clean (OPFS then holds identical bytes); otherwise wait.
    fn hedge_read_directive(&mut self, ctx: &StragglerCtx) -> HedgeDirective {
        let Some(app_file) = ctx.app_file else {
            // Background fetch: nothing is waiting on it, and the plan
            // will be rebuilt by a later poll if it fails. Wait.
            self.metrics.straggler_waits += 1;
            return HedgeDirective::Wait;
        };
        if !self.config.hedge_reads || ctx.app_segments.is_empty() {
            self.metrics.straggler_waits += 1;
            return HedgeDirective::Wait;
        }
        for &(off, len) in &ctx.app_segments {
            let view = self.plane.view(app_file, off, len);
            if view.pieces.iter().any(|p| p.dirty) {
                // The straggler holds the only copy of dirty bytes:
                // hedging to OPFS would serve stale data.
                self.metrics.straggler_waits += 1;
                return HedgeDirective::Wait;
            }
        }
        self.metrics.hedged_reads += 1;
        let ops = ctx
            .app_segments
            .iter()
            .map(|&(off, len)| {
                PlannedIo::data_op(Tier::DServers, app_file, IoKind::Read, off, len, off)
            })
            .collect();
        HedgeDirective::Hedge { ops }
    }

    /// True if one CServer looks congested: queue depth or tail latency
    /// above the configured thresholds.
    fn server_congested(&self, index: usize) -> bool {
        self.health.queue_depth(index) > self.config.backpressure_depth
            || self
                .health
                .latency_tail(index)
                .is_some_and(|p99| p99 > self.config.backpressure_tail_ratio)
    }

    /// Aggregate congestion over the CServer tier.
    pub(crate) fn pressure(&self) -> Pressure {
        let n = self.health.server_count();
        if n == 0 {
            return Pressure::Normal;
        }
        let congested = (0..n).filter(|&i| self.server_congested(i)).count();
        if congested == 0 {
            Pressure::Normal
        } else if congested == n {
            Pressure::Overload
        } else {
            Pressure::Elevated
        }
    }

    /// The backpressure shed verdict for one admission-sized decision:
    /// under overload every admission is shed; under elevated pressure
    /// only the marginal ones (benefit below the configured margin) —
    /// the lowest-`B` admissions go first, which costs the least
    /// predicted win. Callers count the shed in the metrics so sizing
    /// decisions and read-path marks are each counted once.
    pub(crate) fn shed_admission(&self, ctx: &RequestCtx) -> bool {
        if !self.config.backpressure {
            return false;
        }
        match self.pressure() {
            Pressure::Normal => false,
            Pressure::Overload => true,
            Pressure::Elevated => ctx.benefit_secs < self.config.shed_benefit_margin,
        }
    }

    /// True if any CServer holding part of the cache range
    /// `[c_offset, c_offset + len)` is congested (backpressure on only).
    /// The clean-read fallback uses this alongside the quarantine check:
    /// a deep-queued server's clean bytes are served from OPFS instead
    /// of joining the queue.
    pub(crate) fn cache_range_congested(&self, cluster: &Cluster, c_offset: u64, len: u64) -> bool {
        if !self.config.backpressure || len == 0 {
            return false;
        }
        let layout = cluster.cpfs().layout();
        let stripe = layout.stripe_size();
        let n = layout.server_count();
        let first = c_offset / stripe;
        let last = (c_offset + len - 1) / stripe;
        if last - first + 1 >= n as u64 {
            return (0..n).any(|i| self.server_congested(i));
        }
        (first..=last).any(|k| self.server_congested((k % n as u64) as usize))
    }
}
