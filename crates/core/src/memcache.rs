//! Client-side memory caching layered over any middleware.
//!
//! The paper positions SSD caching as "a complement of memory cache ...
//! The integration of memory cache and S4D-Cache will be an interesting
//! topic for future study" (§II.B). This module implements that
//! integration as a middleware *combinator*: [`MemCache`] wraps any
//! [`Middleware`] (stock or S4D-Cache) with a bounded per-process RAM
//! cache of recently accessed ranges, the way MPI-IO client-side caching
//! (the paper's refs \[8\], \[20\]) sits above the file system.
//!
//! Semantics:
//!
//! * writes are **write-through**: the inner middleware plans them as
//!   usual, and the written range becomes resident in the writing
//!   process's cache;
//! * reads fully resident in the issuing process's cache complete in RAM
//!   (a microsecond-scale [`Plan::lead_in`], no server I/O); any gap
//!   delegates the whole request to the inner middleware and then becomes
//!   resident;
//! * coherence: a write by any process invalidates the range in every
//!   *other* process's cache (single-writer MPI-IO semantics, as in
//!   collective caching).
//!
//! The combinator operates at the timing level: in functional
//! (byte-accurate) runs, RAM-served reads return no payload, so integrity
//! tests should run without it.

use std::collections::{HashMap, VecDeque};

use s4d_mpiio::{AppRequest, BackgroundPoll, Cluster, Middleware, MiddlewareError, Plan, Rank};
use s4d_pfs::FileId;
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::{ExtentStore, IoKind, StoreMode};
use serde::{Deserialize, Serialize};

/// Counters for the memory-cache layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemCacheMetrics {
    /// Reads served entirely from process-local RAM.
    pub ram_hits: u64,
    /// Reads delegated to the inner middleware.
    pub delegated_reads: u64,
    /// Writes passed through (always).
    pub writes: u64,
    /// Ranges invalidated in other processes' caches.
    pub invalidations: u64,
    /// Bytes evicted by the per-process capacity bound.
    pub evicted_bytes: u64,
}

/// One process's resident set: coverage per file plus an eviction queue.
#[derive(Debug, Default)]
struct RankCache {
    files: HashMap<FileId, ExtentStore>,
    /// Insertion-ordered ranges for FIFO eviction (ranges may overlap;
    /// eviction discards whatever of them is still resident).
    queue: VecDeque<(FileId, u64, u64)>,
}

impl RankCache {
    fn resident_bytes(&self) -> u64 {
        self.files.values().map(|s| s.written_bytes()).sum()
    }

    fn covers(&self, file: FileId, offset: u64, len: u64) -> bool {
        self.files
            .get(&file)
            .map(|s| s.covers(offset, len))
            .unwrap_or(false)
    }

    fn insert(&mut self, file: FileId, offset: u64, len: u64) {
        self.files
            .entry(file)
            .or_insert_with(|| ExtentStore::new(StoreMode::Timing))
            .write(offset, len, None);
        self.queue.push_back((file, offset, len));
    }

    fn invalidate(&mut self, file: FileId, offset: u64, len: u64) -> bool {
        match self.files.get_mut(&file) {
            Some(s) if s.read_covered(offset, len) > 0 => {
                s.discard(offset, len);
                true
            }
            _ => false,
        }
    }

    /// Evicts oldest inserted ranges until the resident set fits `cap`.
    fn enforce(&mut self, cap: u64) -> u64 {
        let mut evicted = 0;
        while self.resident_bytes() > cap {
            let Some((file, offset, len)) = self.queue.pop_front() else {
                break;
            };
            if let Some(s) = self.files.get_mut(&file) {
                let before = s.written_bytes();
                s.discard(offset, len);
                evicted += before - s.written_bytes();
            }
        }
        evicted
    }
}

/// The client-memory-cache middleware combinator.
///
/// ```
/// use s4d_cache::{MemCache, S4dCache, S4dConfig};
/// use s4d_cost::CostParams;
/// use s4d_storage::presets;
///
/// let params = CostParams::from_hardware(
///     &presets::hdd_seagate_st3250(),
///     &presets::ssd_ocz_revodrive_x2(),
///     8, 4, 64 * 1024,
/// );
/// let s4d = S4dCache::new(S4dConfig::new(1 << 30), params);
/// let stacked = MemCache::new(s4d, 64 << 20); // 64 MiB per process
/// assert_eq!(stacked.name(), "memcache+s4d");
/// # use s4d_mpiio::Middleware;
/// ```
#[derive(Debug)]
pub struct MemCache<M> {
    inner: M,
    per_rank_capacity: u64,
    ram_latency: SimDuration,
    ranks: HashMap<u32, RankCache>,
    metrics: MemCacheMetrics,
    name: String,
}

impl<M: Middleware> MemCache<M> {
    /// Wraps `inner` with `per_rank_capacity` bytes of client cache per
    /// process. RAM hits cost 5 µs by default.
    ///
    /// # Panics
    ///
    /// Panics if `per_rank_capacity == 0`.
    pub fn new(inner: M, per_rank_capacity: u64) -> Self {
        assert!(
            per_rank_capacity > 0,
            "client cache capacity must be positive"
        );
        let name = format!("memcache+{}", inner.name());
        MemCache {
            inner,
            per_rank_capacity,
            ram_latency: SimDuration::from_micros(5),
            ranks: HashMap::new(),
            metrics: MemCacheMetrics::default(),
            name,
        }
    }

    /// Overrides the RAM-hit latency.
    pub fn with_ram_latency(mut self, latency: SimDuration) -> Self {
        self.ram_latency = latency;
        self
    }

    /// The layer's counters.
    pub fn metrics(&self) -> &MemCacheMetrics {
        &self.metrics
    }

    /// The wrapped middleware.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn make_resident(&mut self, rank: Rank, file: FileId, offset: u64, len: u64) {
        let cache = self.ranks.entry(rank.0).or_default();
        cache.insert(file, offset, len);
        self.metrics.evicted_bytes += cache.enforce(self.per_rank_capacity);
    }

    fn invalidate_others(&mut self, rank: Rank, file: FileId, offset: u64, len: u64) {
        for (&r, cache) in self.ranks.iter_mut() {
            if r != rank.0 && cache.invalidate(file, offset, len) {
                self.metrics.invalidations += 1;
            }
        }
    }
}

impl<M: Middleware> Middleware for MemCache<M> {
    fn open(
        &mut self,
        cluster: &mut Cluster,
        rank: Rank,
        name: &str,
    ) -> Result<FileId, MiddlewareError> {
        self.inner.open(cluster, rank, name)
    }

    fn plan_io(&mut self, cluster: &mut Cluster, now: SimTime, req: &AppRequest) -> Plan {
        match req.kind {
            IoKind::Write => {
                self.metrics.writes += 1;
                self.invalidate_others(req.rank, req.file, req.offset, req.len);
                self.make_resident(req.rank, req.file, req.offset, req.len);
                self.inner.plan_io(cluster, now, req)
            }
            IoKind::Read => {
                let hit = self
                    .ranks
                    .get(&req.rank.0)
                    .map(|c| c.covers(req.file, req.offset, req.len))
                    .unwrap_or(false);
                if hit {
                    self.metrics.ram_hits += 1;
                    return Plan {
                        tag: 0,
                        lead_in: self.ram_latency,
                        phases: Vec::new(),
                        deadline: None,
                    };
                }
                self.metrics.delegated_reads += 1;
                let plan = self.inner.plan_io(cluster, now, req);
                self.make_resident(req.rank, req.file, req.offset, req.len);
                plan
            }
        }
    }

    fn close(
        &mut self,
        cluster: &mut Cluster,
        rank: Rank,
        file: FileId,
    ) -> Result<(), MiddlewareError> {
        self.inner.close(cluster, rank, file)
    }

    fn on_plan_complete(&mut self, cluster: &mut Cluster, now: SimTime, tag: u64) {
        self.inner.on_plan_complete(cluster, now, tag);
    }

    fn poll_background(&mut self, cluster: &mut Cluster, now: SimTime) -> BackgroundPoll {
        self.inner.poll_background(cluster, now)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_mpiio::StockMiddleware;

    const KIB: u64 = 1024;

    fn req(rank: u32, file: FileId, kind: IoKind, offset: u64, len: u64) -> AppRequest {
        AppRequest {
            rank: Rank(rank),
            file,
            kind,
            offset,
            len,
            data: None,
        }
    }

    fn setup() -> (Cluster, MemCache<StockMiddleware>, FileId) {
        let mut cluster = Cluster::paper_testbed_small(31);
        let mut mw = MemCache::new(StockMiddleware::new(), 256 * KIB);
        let f = mw.open(&mut cluster, Rank(0), "mc").unwrap();
        (cluster, mw, f)
    }

    #[test]
    fn read_after_write_hits_ram() {
        let (mut cluster, mut mw, f) = setup();
        let w = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Write, 0, 16 * KIB),
        );
        assert!(!w.is_empty(), "writes pass through");
        let r = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Read, 0, 16 * KIB),
        );
        assert!(r.is_empty(), "resident read needs no server I/O");
        assert!(!r.lead_in.is_zero(), "RAM hits still cost RAM time");
        assert_eq!(mw.metrics().ram_hits, 1);
    }

    #[test]
    fn cold_and_partial_reads_delegate_then_become_resident() {
        let (mut cluster, mut mw, f) = setup();
        let r = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Read, 0, 16 * KIB),
        );
        assert!(!r.is_empty());
        assert_eq!(mw.metrics().delegated_reads, 1);
        // Now resident: second read hits.
        let r = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Read, 0, 16 * KIB),
        );
        assert!(r.is_empty());
        // Partially resident: delegates.
        let r = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Read, 8 * KIB, 16 * KIB),
        );
        assert!(!r.is_empty());
        assert_eq!(mw.metrics().delegated_reads, 2);
    }

    #[test]
    fn caches_are_per_process() {
        let (mut cluster, mut mw, f) = setup();
        mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Write, 0, 16 * KIB),
        );
        // A different rank does not see rank 0's residency.
        let r = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(1, f, IoKind::Read, 0, 16 * KIB),
        );
        assert!(!r.is_empty());
    }

    #[test]
    fn writes_invalidate_other_processes() {
        let (mut cluster, mut mw, f) = setup();
        // Rank 1 reads (becomes resident), rank 0 overwrites, rank 1 must
        // re-read from the servers.
        mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(1, f, IoKind::Read, 0, 16 * KIB),
        );
        let hit = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(1, f, IoKind::Read, 0, 16 * KIB),
        );
        assert!(hit.is_empty());
        mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Write, 0, 16 * KIB),
        );
        assert_eq!(mw.metrics().invalidations, 1);
        let r = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(1, f, IoKind::Read, 0, 16 * KIB),
        );
        assert!(!r.is_empty(), "stale residency must not serve");
        // The writer itself stays resident (its RAM copy is current).
        let r = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Read, 0, 16 * KIB),
        );
        assert!(r.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let (mut cluster, mut mw, f) = setup();
        // Capacity 256 KiB; insert 32 distinct 16 KiB ranges = 512 KiB.
        for i in 0..32u64 {
            mw.plan_io(
                &mut cluster,
                SimTime::ZERO,
                &req(0, f, IoKind::Write, i * 64 * KIB, 16 * KIB),
            );
        }
        assert!(mw.metrics().evicted_bytes >= 256 * KIB);
        // The earliest range was evicted, the latest survives.
        let early = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Read, 0, 16 * KIB),
        );
        assert!(!early.is_empty());
        let late = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Read, 31 * 64 * KIB, 16 * KIB),
        );
        assert!(late.is_empty());
    }

    #[test]
    fn delegation_preserves_inner_behaviour() {
        let (mut cluster, mut mw, f) = setup();
        let plan = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &req(0, f, IoKind::Write, 0, 4 * KIB),
        );
        // Stock inner: one DServer op.
        assert_eq!(plan.phases.len(), 1);
        assert_eq!(plan.phases[0].len(), 1);
        assert_eq!(mw.name(), "memcache+stock");
        assert_eq!(mw.inner().name(), "stock");
        mw.close(&mut cluster, Rank(0), f).unwrap();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        MemCache::new(StockMiddleware::new(), 0);
    }
}
