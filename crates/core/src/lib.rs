//! # s4d-cache — the Smart Selective SSD Cache
//!
//! The paper's primary contribution: an I/O-middleware-level cache that
//! uses a small set of SSD file servers (CServers) as a *selective* cache
//! in front of conventional HDD file servers (DServers). Selection is
//! driven by predicted access cost, not locality: small random requests —
//! which cripple striped HDD arrays — are redirected to the SSDs, while
//! large contiguous requests keep the full parallelism of the HDD array.
//!
//! The three components of §III map to this crate as follows:
//!
//! * **Data Identifier** — every request is priced with the cost model of
//!   [`s4d_cost`]; requests with positive benefit are recorded in the
//!   Critical Data Table ([`Cdt`]);
//! * **Redirector** — Algorithm 1: serves Data Mapping Table ([`Dmt`])
//!   hits from CServers, admits critical writes (free space first, then
//!   clean LRU space via the [`SpaceManager`]), and lazily marks critical
//!   missed reads for fetching;
//! * **Rebuilder** — a periodic background task that flushes dirty cached
//!   data back to DServers and fetches `C_flag`-marked read data into
//!   CServers, using low-priority I/O.
//!
//! [`S4dCache`] packages all three behind the [`s4d_mpiio::Middleware`]
//! interface, so the same applications run unmodified over the stock
//! middleware or S4D-Cache — exactly the transparency the paper claims.
//!
//! ```
//! use s4d_cache::{S4dCache, S4dConfig};
//! use s4d_cost::CostParams;
//! use s4d_mpiio::{script, Cluster, Runner};
//! use s4d_storage::presets;
//!
//! let cluster = Cluster::paper_testbed_small(1);
//! let params = CostParams::from_hardware(
//!     &presets::hdd_seagate_st3250(),
//!     &presets::ssd_ocz_revodrive_x2(),
//!     2, 1, 64 * 1024,
//! );
//! let config = S4dConfig::new(64 * 1024 * 1024);
//! let cache = S4dCache::new(config, params);
//! let scripts = vec![script().open("f").write(0, 0, 16 * 1024).close(0).build()];
//! let mut runner = Runner::new(cluster, cache, scripts, 5);
//! let report = runner.run();
//! // The small write was identified as critical and absorbed by CServers.
//! assert_eq!(report.tiers.c_ops, 1);
//! assert_eq!(report.tiers.d_ops, 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod background;
mod cdt;
mod config;
mod dmt;
mod durability;
mod faults;
mod gray;
mod health;
mod layer;
mod memcache;
mod metrics;
pub mod names;
mod pipeline;
mod shard;
mod space;

// The crash fuse and journal codec live inside the durability engine;
// their long-standing public paths are preserved here.
pub use durability::{crash, journal};

pub use cdt::{Cdt, CdtEntry};
pub use config::{AdmissionPolicy, S4dConfig};
pub use crash::{CrashFuse, CrashSite, CrashStep};
pub use dmt::{CoveredPiece, Dmt, MapExtent, RangeView};
pub use durability::group::GroupCommitQueue;
pub use durability::recovery::RecoveryReport;
pub use health::{HealthMonitor, P2Quantile, ServerHealth};
pub use journal::{JournalError, JournalRecord, RecoveredJournal};
pub use layer::S4dCache;
pub use memcache::{MemCache, MemCacheMetrics};
pub use metrics::S4dMetrics;
pub use shard::{MetadataPlane, ShardRouter, ShardSegment};
pub use space::SpaceManager;

/// Size in bytes of one persisted DMT record frame.
///
/// The paper's §V.E.1 counts six four-byte fields (D_file, D_offset,
/// C_file, C_offset, Length, D_flag) — a 24-byte payload. This
/// reproduction frames each payload with a CRC32 (IEEE) trailer so
/// recovery can detect bit-flips and torn tails, for 28 bytes on disk:
/// `[24-byte payload][4-byte CRC32 little-endian]`.
pub const DMT_RECORD_BYTES: u64 = DMT_PAYLOAD_BYTES + 4;

/// Size in bytes of the record payload, excluding the CRC32 trailer.
pub const DMT_PAYLOAD_BYTES: u64 = 24;
