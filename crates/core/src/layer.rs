//! The S4D-Cache middleware facade: component wiring and the
//! [`s4d_mpiio::Middleware`] driver.
//!
//! [`S4dCache`] is deliberately thin. The work lives in the components it
//! composes — the staged request pipeline ([`crate::pipeline`]), the
//! durability engine ([`crate::durability`]), the background scheduler
//! ([`crate::background`]), and the fault handlers ([`crate::faults`]) —
//! and the trait impl below only sequences their stages. See DESIGN.md
//! §12 for the component map.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use s4d_cost::{BenefitEvaluator, CostParams};
use s4d_mpiio::{
    AppRequest, BackgroundPoll, Cluster, DurabilityCounts, ErrorDirective, Middleware,
    MiddlewareError, Plan, Rank, SubIoFailure, Tier,
};
use s4d_pfs::FileId;
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;

use crate::background::BackgroundScheduler;
use crate::cdt::Cdt;
use crate::config::S4dConfig;
use crate::dmt::Dmt;
use crate::durability::crash::CrashFuse;
use crate::durability::journal::JournalRecord;
use crate::durability::recovery::RecoveryReport;
use crate::durability::DurabilityEngine;
use crate::health::HealthMonitor;
use crate::metrics::S4dMetrics;
use crate::shard::{MetadataPlane, ShardRouter};
use crate::space::SpaceManager;

/// The Smart Selective SSD Cache middleware (the paper's Fig. 3).
///
/// See the crate-level documentation for the component mapping; the
/// [`s4d_mpiio::Middleware`] implementation below is the integration point
/// the paper realises by modifying the `MPI_File_*` entry points (§IV.B).
#[derive(Debug)]
pub struct S4dCache {
    pub(crate) config: S4dConfig,
    pub(crate) evaluator: BenefitEvaluator<(u32, u64)>,
    /// The sharded metadata plane: DMT, CDT, and space accounting,
    /// partitioned into `config.shard_count` deterministic shards.
    pub(crate) plane: MetadataPlane,
    /// Original file → its per-shard cache files in CPFS (index = shard).
    pub(crate) cache_file_of: HashMap<FileId, Vec<FileId>>,
    /// Per-CServer health: failure counts, latency EWMA, quarantine.
    pub(crate) health: HealthMonitor,
    pub(crate) metrics: S4dMetrics,
    /// Journal, checkpoint slots, crash fuse — everything durable.
    pub(crate) dur: DurabilityEngine,
    /// Pending state machine, in-flight markers, pins, scrub cursors.
    pub(crate) bg: BackgroundScheduler,
    /// Cache ranges `(shard, c_file, c_offset, len)` whose extents are
    /// already invalidated in memory but whose Remove records could not
    /// be made durable because the journal is stalled (ENOSPC / media
    /// error). They are neither discarded nor released for reuse until
    /// `background_poll` clears the stall — discarding first would break
    /// journal-before-discard, reusing first could resurrect the old
    /// mapping over fresh bytes at recovery.
    pub(crate) stalled_discards: Vec<(usize, FileId, u64, u64)>,
}

impl S4dCache {
    /// Creates the middleware from a configuration and the cost-model
    /// parameters (derive the latter from the same device presets the
    /// cluster uses — see [`s4d_cost::CostParams::from_hardware`]).
    pub fn new(config: S4dConfig, params: CostParams) -> Self {
        let router = ShardRouter::new(config.shard_count, config.shard_stripe);
        let plane = MetadataPlane::new(router, config.cache_capacity, config.cdt_max_entries);
        let bg = BackgroundScheduler::new(router.count());
        S4dCache {
            config,
            evaluator: BenefitEvaluator::new(params),
            plane,
            cache_file_of: HashMap::new(),
            health: HealthMonitor::default(),
            metrics: S4dMetrics::default(),
            dur: DurabilityEngine::new(router),
            bg,
            stalled_discards: Vec::new(),
        }
    }

    /// Attaches the crash fuse used by the crash-point torture harness.
    /// Every durable effect (journal appends, checkpoint installs,
    /// eviction discards, flush/fetch copies) asks the fuse for
    /// permission, and the harness arms it to truncate one of them
    /// mid-write.
    pub fn attach_crash_fuse(&mut self, fuse: Rc<RefCell<CrashFuse>>) {
        self.dur.attach_crash_fuse(fuse);
    }

    /// True once an attached crash fuse has fired. A dead instance keeps
    /// its in-memory bookkeeping consistent but persists nothing further;
    /// the harness discards it and recovers from the cluster.
    pub fn fuse_dead(&self) -> bool {
        self.dur.fuse_dead()
    }

    /// The report of the recovery that built this instance, if any.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.dur.last_recovery()
    }

    /// The retained journal record log (empty unless
    /// [`S4dConfig::record_journal_log`] is set).
    pub fn journal_log(&self) -> &[JournalRecord] {
        self.dur.journal_log()
    }

    /// Moves any not-yet-committed mutation records into the retained log
    /// (the equivalent of a final group commit before clean shutdown).
    /// Without this, a crash loses the last un-batched records and
    /// recovery lands on the previous committed state — which is exactly
    /// the guarantee a write-ahead journal gives.
    pub fn sync_journal_log(&mut self) {
        // When the log is not retained, the records simply stay pending
        // for the next simulated journal write instead of being dropped.
        self.dur
            .collect_pending_records(&mut self.plane, &self.config);
    }

    /// The middleware's counters.
    pub fn metrics(&self) -> &S4dMetrics {
        &self.metrics
    }

    /// Shard 0's Critical Data Table — the whole table in the default
    /// single-shard configuration. Sharded deployments read aggregates
    /// from [`S4dCache::plane`].
    pub fn cdt(&self) -> &Cdt {
        self.plane.cdt0()
    }

    /// Shard 0's Data Mapping Table (see [`S4dCache::cdt`]).
    pub fn dmt(&self) -> &Dmt {
        self.plane.dmt0()
    }

    /// Shard 0's space manager (see [`S4dCache::cdt`]).
    pub fn space(&self) -> &SpaceManager {
        self.plane.space0()
    }

    /// The sharded metadata plane: per-shard DMT/CDT/space behind routed
    /// aggregates that hold at any shard count.
    pub fn plane(&self) -> &MetadataPlane {
        &self.plane
    }

    /// The configuration.
    pub fn config(&self) -> &S4dConfig {
        &self.config
    }

    /// The CServer health monitor (read-only view).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// True while a failed synchronous journal append (space exhaustion
    /// or media error under the journal) is waiting to be retried.
    pub fn journal_stalled(&self) -> bool {
        self.dur.is_stalled()
    }

    /// Cache ranges whose discard/release is parked behind a journal
    /// stall (see the field docs). Empty in a healthy run; the chaos
    /// oracle adds these bytes to the space-accounting identity.
    pub fn stalled_discards(&self) -> &[(usize, FileId, u64, u64)] {
        &self.stalled_discards
    }

    pub(crate) fn ensure_health(&mut self, cluster: &Cluster) {
        self.health.ensure_servers(cluster.cpfs().server_count());
    }

    pub(crate) fn ensure_space_manager(&mut self) {
        if self.plane.capacity() != self.config.cache_capacity {
            self.plane.reset_space(self.config.cache_capacity);
        }
    }

    /// The cache file backing `shard`'s slice of `orig`'s cached bytes
    /// (shard 0's file is the legacy `{name}.cache`).
    pub(crate) fn cache_file_for(&self, orig: FileId, shard: usize) -> Option<FileId> {
        let files = self.cache_file_of.get(&orig)?;
        files.get(shard).or_else(|| files.first()).copied()
    }
}

impl Middleware for S4dCache {
    fn open(
        &mut self,
        cluster: &mut Cluster,
        _rank: Rank,
        name: &str,
    ) -> Result<FileId, MiddlewareError> {
        self.ensure_space_manager();
        self.ensure_health(cluster);
        self.dur.ensure_journal(cluster);
        let orig = cluster.opfs_mut().create_or_open(name);
        // The paper opens a correlating cache file alongside each original
        // file (MPI_File_open, §IV.B). With shards, each shard gets its
        // own cache file so space accounting and orphan sweeping stay
        // shard-local; shard 0 keeps the legacy name so the single-shard
        // layout is byte-identical.
        let cache_name = format!("{name}.cache");
        let cache = cluster.cpfs_mut().create_or_open(&cache_name);
        let mut files = vec![cache];
        for k in 1..self.plane.shard_count() {
            let shard_name = format!("{name}.s{k}.cache");
            files.push(cluster.cpfs_mut().create_or_open(&shard_name));
        }
        self.cache_file_of.insert(orig, files);
        Ok(orig)
    }

    fn plan_io(&mut self, cluster: &mut Cluster, now: SimTime, req: &AppRequest) -> Plan {
        self.ensure_health(cluster);
        if self.dur.is_stalled() {
            // One synchronous retry before planning: a stall often
            // outlives its fault window (the background retry only runs
            // so often), and while stalled every write plans in degraded
            // mode (see `route_write`) because no new record can be made
            // durable before the ack.
            self.dur
                .retry_stall(cluster, &mut self.plane, &self.config, &mut self.metrics);
        }
        // Stage 1: classify (Data Identifier).
        let ctx = self.identify(req);
        // Stages 2–3: route (Redirector), then claim space and close the
        // decision (admission). Reads claim no space — outside the
        // eager-fetch ablation — and are fully decided by the redirect
        // stage. (`force_miss` is Fig. 11 mode: full bookkeeping, no
        // redirection.)
        let mut plan = match (req.kind, ctx.cache) {
            _ if self.config.force_miss => self.direct_plan(req),
            (_, None) => self.direct_plan(req),
            (IoKind::Write, Some(cache)) => {
                let route = self.route_write(now, req, &ctx);
                self.admit_write(cluster, req, cache, &ctx, route)
            }
            (IoKind::Read, Some(_)) => self.plan_read(cluster, now, req, &ctx),
        };
        // Price the straggler budget off the same cost-model prediction
        // that classified the request (no-op while deadlines are off).
        self.apply_deadline(&mut plan, &ctx);
        // Journal-before-ack audit: every DMT mutation this operation made
        // is in the journaling pipeline before the plan is handed back.
        debug_assert_eq!(
            self.plane.pending_records(),
            0,
            "plan_io returned with uncollected journal records"
        );
        plan
    }

    fn close(
        &mut self,
        _cluster: &mut Cluster,
        _rank: Rank,
        _file: FileId,
    ) -> Result<(), MiddlewareError> {
        // Cached data outlives the open (that is the point of the second-run
        // read experiments); nothing to tear down per close.
        Ok(())
    }

    fn on_plan_complete(&mut self, cluster: &mut Cluster, _now: SimTime, tag: u64) {
        let action = self.bg.take(tag);
        self.apply_pending(cluster, action);
        // Journal-before-ack audit: completion-side mutations (SetClean,
        // fetch Inserts, Seals) enter the journaling pipeline before the
        // runner regains control.
        self.dur
            .collect_pending_records(&mut self.plane, &self.config);
        debug_assert_eq!(
            self.plane.pending_records(),
            0,
            "on_plan_complete returned with uncollected journal records"
        );
    }

    fn on_io_error(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        failure: &SubIoFailure,
    ) -> ErrorDirective {
        self.error_directive(cluster, now, failure)
    }

    fn on_io_complete(
        &mut self,
        tier: Tier,
        server: usize,
        _kind: IoKind,
        len: u64,
        latency: SimDuration,
    ) {
        self.record_latency(tier, server, len, latency);
    }

    fn on_io_dispatched(&mut self, tier: Tier, server: usize, _kind: IoKind, _len: u64) {
        if tier == Tier::CServers {
            self.health.ensure_servers(server + 1);
            self.health.on_dispatch(server);
        }
    }

    fn on_io_abandoned(&mut self, tier: Tier, server: usize, _kind: IoKind, _len: u64) {
        if tier == Tier::CServers {
            self.health.on_settle(server);
        }
    }

    fn on_deadline(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        ctx: &s4d_mpiio::StragglerCtx,
    ) -> s4d_mpiio::HedgeDirective {
        self.deadline_directive(cluster, now, ctx)
    }

    fn shed_admissions(&self) -> u64 {
        self.metrics.shed_admissions
    }

    fn on_plan_failed(&mut self, cluster: &mut Cluster, _now: SimTime, tag: u64) {
        let action = self.bg.take(tag);
        self.unwind_failed(cluster, action);
    }

    fn durability(&self) -> Option<DurabilityCounts> {
        let recovery = self.dur.last_recovery();
        Some(DurabilityCounts {
            journal_writes: self.metrics.journal_writes,
            journal_bytes: self.metrics.journal_bytes,
            checkpoints: self.metrics.checkpoints,
            checkpoint_bytes: self.metrics.checkpoint_bytes,
            records_compacted: self.metrics.records_compacted,
            recovery_records_replayed: recovery.map_or(0, |r| r.records_replayed()),
            recovery_dropped_bytes: recovery.map_or(0, |r| r.dropped_journal_bytes),
        })
    }

    fn poll_background(&mut self, cluster: &mut Cluster, now: SimTime) -> BackgroundPoll {
        self.background_poll(cluster, now)
    }

    fn name(&self) -> &str {
        "s4d"
    }
}
