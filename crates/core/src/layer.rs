//! The S4D-Cache middleware: Identifier + Redirector + Rebuilder.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use s4d_cost::{t_cservers, BenefitEvaluator, CostParams, SmMode};
use s4d_mpiio::{
    AppRequest, BackgroundPoll, Cluster, DurabilityCounts, ErrorDirective, Middleware,
    MiddlewareError, Plan, PlannedIo, Rank, SubIoFailure, Tier,
};
use s4d_pfs::{FileId, IoFault, Priority};
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;

use crate::cdt::Cdt;
use crate::config::{AdmissionPolicy, S4dConfig};
use crate::crash::{CrashFuse, CrashSite};
use crate::dmt::Dmt;
use crate::health::HealthMonitor;
use crate::journal::{self, JournalRecord};
use crate::metrics::S4dMetrics;
use crate::space::SpaceManager;

/// CPFS name of the DMT journal file.
const JOURNAL_NAME: &str = "__dmt_journal";
/// Checkpoint slot installed by odd-sequence snapshots.
const CKPT_SLOT_A: &str = "__dmt_ckpt_a";
/// Checkpoint slot installed by even-sequence snapshots.
const CKPT_SLOT_B: &str = "__dmt_ckpt_b";

/// Largest file-contiguous run the Rebuilder moves as one group.
const MAX_GROUP_BYTES: u64 = 4 * 1024 * 1024;

/// One dirty extent inside a flush group.
#[derive(Debug, Clone, Copy)]
struct FlushItem {
    orig: FileId,
    d_offset: u64,
    len: u64,
    c_file: FileId,
    c_offset: u64,
    version: u64,
}

/// A background action awaiting plan completion.
#[derive(Debug, Clone)]
enum Pending {
    /// A foreground read finished: release its eviction pins.
    Unpin(Vec<(FileId, u64, u64)>),
    /// Several actions share one plan (e.g. unpin + eager fetch).
    Multi(Vec<Pending>),
    /// Flush of a run of file-contiguous dirty extents back to DServers.
    /// Grouping adjacent extents turns many small cache writes into one
    /// large sequential DServer write — the data *reorganisation* of
    /// §III.F, and a large part of why buffering random writes pays off.
    Flush(Vec<FlushItem>),
    /// Fetch of the gaps of a run of adjacent flagged CDT entries.
    Fetch {
        orig: FileId,
        /// The `(offset, len)` CDT keys whose `C_flag` this fetch clears.
        cdt_keys: Vec<(u64, u64)>,
        /// `(d_offset, len, c_file, c_offset)` pieces reserved for the data.
        pieces: Vec<(u64, u64, FileId, u64)>,
    },
    /// A foreground write finished: seal the extents it filled, as
    /// `(file, d_offset, version)` captured at plan time. The version gate
    /// skips any extent a later write touched in the meantime.
    Seal(Vec<(FileId, u64, u64)>),
}

/// What crash recovery found and rebuilt — see
/// [`S4dCache::recover_from_cluster`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint snapshot used, if any slot held a
    /// valid one.
    pub used_checkpoint: Option<u64>,
    /// Records replayed from the checkpoint snapshot.
    pub snapshot_records: u64,
    /// Records replayed from the journal tail past the snapshot.
    pub tail_records: u64,
    /// Journal bytes past the last decodable record (torn tail and
    /// anything after it) that recovery truncated.
    pub dropped_journal_bytes: u64,
    /// Extents dropped because their cache bytes were not fully present
    /// on CPFS (the mapping outran a torn data write).
    pub dropped_extents: u64,
    /// Bytes of dropped extents that were dirty — genuine data loss.
    pub dirty_bytes_lost: u64,
    /// Cache-file bytes present on CPFS but mapped by no extent (a data
    /// write outran its journaled mapping); the orphan sweep discarded
    /// them.
    pub orphan_bytes_discarded: u64,
}

impl RecoveryReport {
    /// Total records replayed (snapshot + tail): the work recovery did.
    pub fn records_replayed(&self) -> u64 {
        self.snapshot_records + self.tail_records
    }
}

/// The Smart Selective SSD Cache middleware (the paper's Fig. 3).
///
/// See the crate-level documentation for the component mapping; the
/// [`s4d_mpiio::Middleware`] implementation below is the integration point
/// the paper realises by modifying the `MPI_File_*` entry points (§IV.B).
#[derive(Debug)]
pub struct S4dCache {
    config: S4dConfig,
    evaluator: BenefitEvaluator<(u32, u64)>,
    cdt: Cdt,
    dmt: Dmt,
    space: SpaceManager,
    /// Original file → its cache file in CPFS.
    cache_file_of: HashMap<FileId, FileId>,
    /// The DMT journal file in CPFS.
    journal_file: Option<FileId>,
    journal_offset: u64,
    pending: HashMap<u64, Pending>,
    next_tag: u64,
    inflight_flush: HashSet<(FileId, u64)>,
    inflight_fetch: HashSet<(FileId, u64, u64)>,
    /// Ranges referenced by in-flight foreground reads; eviction must not
    /// discard them (a queued sub-request would read freed space).
    pins: Vec<(FileId, u64, u64)>,
    /// Records awaiting the next group-committed journal write.
    journal_pending: Vec<JournalRecord>,
    /// Full record log (kept only when the config asks; crash-recovery
    /// tests read it back as "the journal file's contents").
    journal_log: Vec<JournalRecord>,
    /// Per-CServer health: failure counts, latency EWMA, quarantine.
    health: HealthMonitor,
    metrics: S4dMetrics,
    /// Torture-harness hook: when attached, every durable effect asks the
    /// fuse for permission and a crash truncates it mid-effect.
    crash_fuse: Option<Rc<RefCell<CrashFuse>>>,
    /// Sequence number of the last installed checkpoint (0 = none yet).
    checkpoint_seq: u64,
    /// Journal offset the last checkpoint covers.
    last_ckpt_tail: u64,
    /// `journal_records_total` at the last checkpoint (threshold base).
    records_at_last_ckpt: u64,
    /// Start of the live (uncompacted) journal region.
    journal_base: u64,
    /// Scrub resume position: the last `(file, d_offset)` verified.
    scrub_cursor: Option<(FileId, u64)>,
    /// What the last `recover_from_cluster` found, if this instance was
    /// built by one.
    last_recovery: Option<RecoveryReport>,
}

impl S4dCache {
    /// Creates the middleware from a configuration and the cost-model
    /// parameters (derive the latter from the same device presets the
    /// cluster uses — see [`s4d_cost::CostParams::from_hardware`]).
    pub fn new(config: S4dConfig, params: CostParams) -> Self {
        let cdt_cap = config.cdt_max_entries;
        S4dCache {
            config,
            evaluator: BenefitEvaluator::new(params),
            cdt: Cdt::new(cdt_cap),
            dmt: Dmt::new(),
            space: SpaceManager::new(1),
            cache_file_of: HashMap::new(),
            journal_file: None,
            journal_offset: 0,
            pending: HashMap::new(),
            next_tag: 1,
            inflight_flush: HashSet::new(),
            inflight_fetch: HashSet::new(),
            pins: Vec::new(),
            journal_pending: Vec::new(),
            journal_log: Vec::new(),
            health: HealthMonitor::default(),
            metrics: S4dMetrics::default(),
            crash_fuse: None,
            checkpoint_seq: 0,
            last_ckpt_tail: 0,
            records_at_last_ckpt: 0,
            journal_base: 0,
            scrub_cursor: None,
            last_recovery: None,
        }
    }

    /// Reconstructs a middleware after a crash from the persisted journal
    /// record stream: the DMT is replayed and the space allocator rebuilt
    /// from the live extents. The CDT and LRU recency are volatile
    /// (memory-only, as in the paper) and start empty; cache files are
    /// re-associated as applications re-open their files.
    pub fn recover(config: S4dConfig, params: CostParams, records: &[JournalRecord]) -> Self {
        let dmt = journal::replay(records);
        let space = SpaceManager::rebuild(
            config.cache_capacity,
            dmt.iter_extents()
                .map(|(_, _, e)| (e.c_file, e.c_offset, e.len)),
        );
        let mut s = S4dCache::new(config, params);
        s.dmt = dmt;
        s.space = space;
        s
    }

    /// Reconstructs a middleware from the cluster state alone — the
    /// checkpoint slots, the journal file, and the cache files on CPFS —
    /// which is exactly what survives a middleware crash. Requires
    /// functional-mode stores (timing-only stores hold no bytes to read
    /// back; recovery then sees an empty journal).
    ///
    /// The sequence is: pick the newest valid checkpoint slot, replay its
    /// snapshot, replay the journal tail past it (strict prefix — decoding
    /// stops at the first torn or corrupt frame and the undecodable suffix
    /// is truncated), conservatively unseal dirty extents, drop any mapping
    /// whose cache bytes are not fully present (a torn data write), rebuild
    /// the space allocator, and discard orphaned cache bytes no mapping
    /// claims (a data write that outran its journaled mapping).
    pub fn recover_from_cluster(
        config: S4dConfig,
        params: CostParams,
        cluster: &mut Cluster,
    ) -> (Self, RecoveryReport) {
        let mut report = RecoveryReport::default();
        let mut snapshot: Option<journal::Checkpoint> = None;
        for slot in [CKPT_SLOT_A, CKPT_SLOT_B] {
            let Ok(file) = cluster.cpfs().open(slot) else {
                continue;
            };
            let Ok(size) = cluster.cpfs().meta(file).map(|m| m.size) else {
                continue;
            };
            let Ok(Some(bytes)) = cluster.cpfs().read_bytes(file, 0, size) else {
                continue;
            };
            if let Ok(ckpt) = journal::decode_checkpoint(&bytes) {
                if snapshot
                    .as_ref()
                    .is_none_or(|s| ckpt.covers_seq > s.covers_seq)
                {
                    snapshot = Some(ckpt);
                }
            }
        }
        let mut dmt = Dmt::new();
        let tail_start = match &snapshot {
            Some(ckpt) => {
                journal::replay_tolerant(&mut dmt, &ckpt.records);
                report.used_checkpoint = Some(ckpt.covers_seq);
                report.snapshot_records = ckpt.records.len() as u64;
                ckpt.tail_offset
            }
            None => 0,
        };
        let journal_file = cluster.cpfs_mut().create_or_open(JOURNAL_NAME);
        let journal_size = cluster
            .cpfs()
            .meta(journal_file)
            .map(|m| m.size)
            .unwrap_or(0);
        let mut journal_offset = tail_start;
        if journal_size > tail_start {
            if let Ok(Some(bytes)) =
                cluster
                    .cpfs()
                    .read_bytes(journal_file, tail_start, journal_size - tail_start)
            {
                let tail = journal::decode_prefix(&bytes);
                journal::replay_tolerant(&mut dmt, &tail.records);
                report.tail_records = tail.records.len() as u64;
                report.dropped_journal_bytes = tail.dropped_bytes;
                journal_offset = tail_start + (bytes.len() as u64 - tail.dropped_bytes);
                if tail.dropped_bytes > 0 {
                    // Truncate the undecodable suffix so future appends
                    // land on clean ground instead of behind a bad frame.
                    // s4d-lint: allow(durability) — recovery path; the fuse is not attached yet, and crashing here re-enters this same recovery
                    let _ = cluster.cpfs_mut().discard(
                        journal_file,
                        journal_offset,
                        tail.dropped_bytes,
                    );
                }
            }
        }
        // A dirty extent's seal may predate a torn overwrite of its bytes;
        // trusting it would let the scrubber discard acknowledged data.
        dmt.clear_dirty_checksums();
        // Coverage validation: a mapping whose cache bytes are not all
        // present points at a torn data write (or a crashed CServer). Drop
        // it — clean extents re-fetch from OPFS; dirty ones are real loss.
        let mut metrics = S4dMetrics::default();
        let mut extents: Vec<(FileId, u64, u64, FileId, u64, bool)> = dmt
            .iter_extents()
            .map(|(f, o, e)| (f, o, e.len, e.c_file, e.c_offset, e.dirty))
            .collect();
        extents.sort_unstable_by_key(|&(f, o, ..)| (f.0, o));
        for (file, d_off, len, c_file, c_off, dirty) in extents {
            let covered = cluster
                .cpfs()
                .covered_bytes(c_file, c_off, len)
                .unwrap_or(0);
            if covered == len {
                continue;
            }
            dmt.remove(file, d_off);
            // s4d-lint: allow(durability) — recovery path; the fuse is not attached yet, and crashing here re-enters this same recovery
            let _ = cluster.cpfs_mut().discard(c_file, c_off, len);
            report.dropped_extents += 1;
            if dirty {
                report.dirty_bytes_lost += len;
                metrics.dirty_bytes_lost += len;
            } else {
                metrics.crash_invalidated_bytes += len;
            }
        }
        // The drops above are re-derived deterministically from cluster
        // state on any future recovery; they need no journal records.
        let _ = dmt.take_pending_journal();
        let space = SpaceManager::rebuild(
            config.cache_capacity,
            dmt.iter_extents()
                .map(|(_, _, e)| (e.c_file, e.c_offset, e.len)),
        );
        // Orphan sweep: cache-file bytes no extent maps.
        let mut mapped_ranges: HashMap<FileId, Vec<(u64, u64)>> = HashMap::new();
        for (_, _, e) in dmt.iter_extents() {
            mapped_ranges
                .entry(e.c_file)
                .or_default()
                .push((e.c_offset, e.len));
        }
        let mut cache_files: Vec<(FileId, u64)> = cluster
            .cpfs()
            .iter_files()
            .filter(|m| m.name.ends_with(".cache"))
            .map(|m| (m.id, m.size))
            .collect();
        cache_files.sort_unstable_by_key(|&(f, _)| f.0);
        for (f, size) in cache_files {
            if size == 0 {
                continue;
            }
            let mut ranges = mapped_ranges.remove(&f).unwrap_or_default();
            ranges.sort_unstable();
            let mut cursor = 0u64;
            let mut holes: Vec<(u64, u64)> = Vec::new();
            for (off, len) in ranges {
                if off > cursor {
                    holes.push((cursor, off - cursor));
                }
                cursor = cursor.max(off + len);
            }
            if size > cursor {
                holes.push((cursor, size - cursor));
            }
            for (off, len) in holes {
                let covered = cluster.cpfs().covered_bytes(f, off, len).unwrap_or(0);
                if covered > 0 {
                    // s4d-lint: allow(durability) — recovery path; the fuse is not attached yet, and crashing here re-enters this same recovery
                    let _ = cluster.cpfs_mut().discard(f, off, len);
                    report.orphan_bytes_discarded += covered;
                }
            }
        }
        let mut s = S4dCache::new(config, params);
        s.dmt = dmt;
        s.space = space;
        s.metrics = metrics;
        s.journal_file = Some(journal_file);
        s.journal_offset = journal_offset;
        s.journal_base = tail_start;
        s.last_ckpt_tail = tail_start;
        s.checkpoint_seq = report.used_checkpoint.unwrap_or(0);
        s.records_at_last_ckpt = s.dmt.journal_records_total();
        s.last_recovery = Some(report);
        (s, report)
    }

    /// Attaches a crash fuse: every subsequent durable effect (journal
    /// appends, checkpoint installs, eviction discards, flush/fetch
    /// copies) asks the fuse for permission, and the crash-point torture
    /// harness arms it to truncate one of them mid-write.
    pub fn attach_crash_fuse(&mut self, fuse: Rc<RefCell<CrashFuse>>) {
        self.crash_fuse = Some(fuse);
    }

    /// True once an attached crash fuse has fired. A dead instance keeps
    /// its in-memory bookkeeping consistent but persists nothing further;
    /// the harness discards it and recovers from the cluster.
    pub fn fuse_dead(&self) -> bool {
        self.crash_fuse
            .as_ref()
            .is_some_and(|f| f.borrow().is_dead())
    }

    fn fuse_consume(&mut self, site: CrashSite, len: u64) -> u64 {
        match &self.crash_fuse {
            Some(f) => f.borrow_mut().consume(site, len),
            None => len,
        }
    }

    /// The report of the recovery that built this instance, if any.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// The retained journal record log (empty unless
    /// [`S4dConfig::record_journal_log`] is set).
    pub fn journal_log(&self) -> &[JournalRecord] {
        &self.journal_log
    }

    /// Moves any not-yet-committed mutation records into the retained log
    /// (the equivalent of a final group commit before clean shutdown).
    /// Without this, a crash loses the last un-batched records and
    /// recovery lands on the previous committed state — which is exactly
    /// the guarantee a write-ahead journal gives.
    pub fn sync_journal_log(&mut self) {
        // When the log is not retained, the records simply stay pending
        // for the next simulated journal write instead of being dropped.
        self.collect_pending_records();
    }

    /// The middleware's counters.
    pub fn metrics(&self) -> &S4dMetrics {
        &self.metrics
    }

    /// The Critical Data Table (read-only view).
    pub fn cdt(&self) -> &Cdt {
        &self.cdt
    }

    /// The Data Mapping Table (read-only view).
    pub fn dmt(&self) -> &Dmt {
        &self.dmt
    }

    /// The space manager (read-only view).
    pub fn space(&self) -> &SpaceManager {
        &self.space
    }

    /// The configuration.
    pub fn config(&self) -> &S4dConfig {
        &self.config
    }

    /// The CServer health monitor (read-only view).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    fn ensure_health(&mut self, cluster: &Cluster) {
        self.health.ensure_servers(cluster.cpfs().server_count());
    }

    /// Capped exponential backoff for attempt number `attempts` (≥ 1).
    fn retry_backoff(&self, attempts: u32) -> SimDuration {
        let exp = attempts.saturating_sub(1).min(20);
        let base = self.config.retry_base_delay.as_secs_f64();
        let delay = base * (1u64 << exp) as f64;
        SimDuration::from_secs_f64(delay.min(self.config.retry_max_delay.as_secs_f64()))
    }

    /// True if any CServer holding part of the cache range
    /// `[c_offset, c_offset + len)` is quarantined at `now`. Cache files
    /// are round-robin striped, so the touched servers follow from the
    /// stripe indices alone.
    fn cache_range_unhealthy(
        &self,
        cluster: &Cluster,
        now: SimTime,
        c_offset: u64,
        len: u64,
    ) -> bool {
        if len == 0 || !self.health.any_unhealthy(now) {
            return false;
        }
        let layout = cluster.cpfs().layout();
        let stripe = layout.stripe_size();
        let n = layout.server_count();
        let first = c_offset / stripe;
        let last = (c_offset + len - 1) / stripe;
        if last - first + 1 >= n as u64 {
            // The range spans a full round: every server is involved.
            return self.health.any_unhealthy(now);
        }
        (first..=last).any(|k| self.health.is_unhealthy((k % n as u64) as usize, now))
    }

    /// Applies a CServer hard crash to the cache metadata: every extent
    /// with bytes on the lost server is invalidated. Clean extents are a
    /// pure cache miss afterwards (OPFS still has the data); dirty
    /// extents are genuine data loss and are surfaced as such. Runs once
    /// per outage (re-armed when the server completes an op again).
    fn handle_crash(&mut self, cluster: &mut Cluster, server: usize, now: SimTime) {
        self.ensure_health(cluster);
        let until = now + self.config.quarantine_duration;
        if self.health.quarantine(server, now, until) {
            self.metrics.quarantines += 1;
        }
        if !self.health.claim_crash_handling(server) {
            return;
        }
        let layout = cluster.cpfs().layout();
        let stripe = layout.stripe_size();
        let n = layout.server_count();
        let mut doomed: Vec<(FileId, u64, u64, FileId, u64, bool)> = self
            .dmt
            .iter_extents()
            .filter(|(_, _, e)| {
                let first = e.c_offset / stripe;
                let last = (e.c_offset + e.len - 1) / stripe;
                last - first + 1 >= n as u64
                    || (first..=last).any(|k| (k % n as u64) as usize == server)
            })
            .map(|(f, o, e)| (f, o, e.len, e.c_file, e.c_offset, e.dirty))
            .collect();
        doomed.sort_unstable_by_key(|&(f, o, ..)| (f.0, o));
        if doomed.is_empty() {
            return;
        }
        for &(file, d_off, len, _, _, dirty) in &doomed {
            if dirty {
                self.metrics.dirty_bytes_lost += len;
            } else {
                self.metrics.crash_invalidated_bytes += len;
            }
            // `remove` journals a Remove record, so recovery agrees.
            self.dmt.remove(file, d_off);
        }
        // The Removes must be durable before the bytes go away: recovering
        // a mapping to discarded space would serve garbage. (Orphaned bytes
        // from the reverse order are merely swept and discarded.)
        self.append_journal_sync(cluster, &[]);
        for &(_, _, len, c_file, c_off, _) in &doomed {
            self.space.release(c_file, c_off, len);
            let allowed = self.fuse_consume(CrashSite::EvictDiscard, len);
            if allowed > 0 {
                let _ = cluster.cpfs_mut().discard(c_file, c_off, allowed);
            }
        }
    }

    /// Releases runner-visible state a failed plan held, *without* the
    /// data effects of completion: pins lift, in-flight markers clear,
    /// fetch reservations return to the allocator. Flushed extents stay
    /// dirty and flagged reads stay flagged, so the Rebuilder retries.
    fn abandon_pending(&mut self, action: Option<Pending>) {
        match action {
            Some(Pending::Multi(actions)) => {
                for a in actions {
                    self.abandon_pending(Some(a));
                }
            }
            Some(Pending::Unpin(ranges)) => {
                for range in ranges {
                    if let Some(i) = self.pins.iter().position(|&p| p == range) {
                        self.pins.swap_remove(i);
                    }
                }
            }
            Some(Pending::Flush(items)) => {
                for item in items {
                    self.inflight_flush.remove(&(item.orig, item.d_offset));
                }
            }
            Some(Pending::Fetch {
                orig,
                cdt_keys,
                pieces,
            }) => {
                for (_d_off, len, c_file, c_off) in pieces {
                    self.space.release(c_file, c_off, len);
                }
                for (o, l) in cdt_keys {
                    self.inflight_fetch.remove(&(orig, o, l));
                }
            }
            // Sealing is best-effort: an unsealed extent just stays
            // unverified until the scrubber byte-compares it.
            Some(Pending::Seal(_)) => {}
            None => {}
        }
    }

    fn ensure_space_manager(&mut self) {
        if self.space.capacity() != self.config.cache_capacity {
            self.space = SpaceManager::new(self.config.cache_capacity);
        }
    }

    fn ensure_journal(&mut self, cluster: &mut Cluster) -> FileId {
        match self.journal_file {
            Some(f) => f,
            None => {
                let f = cluster.cpfs_mut().create_or_open(JOURNAL_NAME);
                self.journal_file = Some(f);
                f
            }
        }
    }

    /// Classifies a request per the configured admission policy, inserting
    /// critical ranges into the CDT (the Data Identifier, §III.C).
    fn identify(&mut self, req: &AppRequest) -> bool {
        self.metrics.evaluated += 1;
        let benefit = self
            .evaluator
            .evaluate((req.rank.0, req.file.0), req.offset, req.len);
        let critical = match self.config.admission {
            AdmissionPolicy::Benefit => benefit.is_critical(),
            AdmissionPolicy::AlwaysAdmit => true,
            AdmissionPolicy::NeverAdmit => false,
            AdmissionPolicy::SizeBelow(t) => req.len < t,
        };
        if critical {
            self.metrics.critical += 1;
            self.cdt.insert(req.file, req.offset, req.len);
        }
        critical
    }

    /// Makes room for `len` more cache bytes, evicting clean LRU extents if
    /// needed (Algorithm 1 lines 4–10). Returns whether the space now fits.
    fn make_room(&mut self, cluster: &mut Cluster, len: u64) -> bool {
        if self.space.fits(len) {
            return true;
        }
        let needed = len - self.space.available();
        let pins = std::mem::take(&mut self.pins);
        let victims = self
            .dmt
            .evict_clean_lru_excluding(needed, |file, off, elen| {
                pins.iter().any(|&(p_file, p_off, p_len)| {
                    p_file == file && p_off < off + elen && off < p_off + p_len
                })
            });
        self.pins = pins;
        if !victims.is_empty() {
            // `evict_clean_lru_excluding` removed the victims and queued
            // their Remove records; make those durable *before* the bytes
            // go away, so recovery never maps discarded space.
            self.append_journal_sync(cluster, &[]);
        }
        for (_file, _d_off, ext) in &victims {
            self.space.release(ext.c_file, ext.c_offset, ext.len);
            // Dropping the cached bytes is a metadata operation; the data
            // still lives on DServers because the extent was clean.
            let allowed = self.fuse_consume(CrashSite::EvictDiscard, ext.len);
            if allowed > 0 {
                let _ = cluster
                    .cpfs_mut()
                    .discard(ext.c_file, ext.c_offset, allowed);
            }
            self.metrics.evictions += 1;
            self.metrics.evicted_bytes += ext.len;
        }
        self.space.fits(len)
    }

    /// Accumulates pending DMT mutations and appends a journal write to
    /// `ops` once a group-commit batch is full.
    fn journal_op(&mut self, cluster: &mut Cluster, ops: &mut Vec<PlannedIo>) {
        self.collect_pending_records();
        if (self.journal_pending.len() as u64) < self.config.journal_batch_records {
            return;
        }
        if let Some(op) = self.drain_journal(cluster, Priority::Normal) {
            ops.push(op);
        }
    }

    fn collect_pending_records(&mut self) {
        let fresh = self.dmt.take_pending_journal();
        if self.config.record_journal_log {
            self.journal_log.extend_from_slice(&fresh);
        }
        self.journal_pending.extend(fresh);
    }

    /// Builds a journal write covering every pending record, if any. The
    /// op carries the encoded frames, so functional-mode stores persist
    /// the real journal and recovery can read it back. The append offset
    /// is reserved now; the bytes land when the runner executes the op
    /// (crash before then = a hole that stops prefix decoding — the same
    /// safe outcome as losing the records outright).
    fn drain_journal(&mut self, cluster: &mut Cluster, priority: Priority) -> Option<PlannedIo> {
        self.collect_pending_records();
        if self.journal_pending.is_empty() {
            return None;
        }
        let journal = self.ensure_journal(cluster);
        let records = std::mem::take(&mut self.journal_pending);
        let data = journal::encode_batch(&records);
        let len = data.len() as u64;
        let op = PlannedIo {
            tier: Tier::CServers,
            file: journal,
            kind: IoKind::Write,
            offset: self.journal_offset,
            len,
            priority,
            data: Some(data),
            app_offset: None,
        };
        self.journal_offset += len;
        self.metrics.journal_writes += 1;
        self.metrics.journal_bytes += len;
        Some(op)
    }

    /// Appends `extra` plus every pending record to the journal right now,
    /// bypassing the planned-I/O path — for records whose durability must
    /// precede an imminent destructive effect (Removes before a discard,
    /// FlushIntents before the flush plan is issued). The write is applied
    /// through the crash fuse: a torture crash leaves a torn suffix that
    /// recovery truncates.
    fn append_journal_sync(&mut self, cluster: &mut Cluster, extra: &[JournalRecord]) {
        self.collect_pending_records();
        if !extra.is_empty() {
            if self.config.record_journal_log {
                self.journal_log.extend_from_slice(extra);
            }
            self.journal_pending.extend_from_slice(extra);
        }
        if self.journal_pending.is_empty() {
            return;
        }
        let journal = self.ensure_journal(cluster);
        let records = std::mem::take(&mut self.journal_pending);
        let data = journal::encode_batch(&records);
        let len = data.len() as u64;
        let allowed = self.fuse_consume(CrashSite::SyncAppend, len);
        let _ = cluster
            .cpfs_mut()
            .apply_bytes(journal, self.journal_offset, allowed, Some(&data));
        // The full reservation is consumed even on a torn write: this
        // instance is dead then, and recovery works from the cluster.
        self.journal_offset += len;
        self.metrics.journal_writes += 1;
        self.metrics.journal_bytes += len;
    }

    /// Algorithm 1, write side.
    fn plan_write(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        req: &AppRequest,
        critical: bool,
    ) -> Plan {
        let Some(cache) = self.cache_file_of.get(&req.file).copied() else {
            // Not opened through the middleware: route straight to disk.
            return self.direct_plan(req);
        };
        let mut ops: Vec<PlannedIo> = Vec::new();
        let view = self.dmt.view(req.file, req.offset, req.len);
        let mut used_cache = false;

        // Mapped parts: the request is already served by CServers (line 22).
        for piece in &view.pieces {
            self.dmt.mark_dirty(req.file, piece.d_offset, piece.len);
            ops.push(self.data_op(
                Tier::CServers,
                piece.c_file,
                IoKind::Write,
                piece.c_offset,
                piece.len,
                piece.d_offset,
                req,
            ));
            used_cache = true;
        }

        // Unmapped parts: admit if critical, the CServer tier is healthy,
        // and space permits (lines 3–14). New admissions stripe over every
        // CServer, so one quarantined server pauses admission entirely —
        // consistency over throughput while the tier is suspect.
        let gap_total: u64 = view.gaps.iter().map(|&(_, l)| l).sum();
        let healthy = !self.health.any_unhealthy(now);
        if critical && gap_total > 0 && !healthy {
            self.metrics.admission_denied_health += 1;
        }
        let admit = critical && gap_total > 0 && healthy && {
            let ok = self.make_room(cluster, gap_total);
            if !ok {
                self.metrics.admission_denied_space += 1;
            }
            ok
        };
        for &(g_off, g_len) in &view.gaps {
            // `make_room` guaranteed capacity, so `alloc` should succeed
            // for every admitted gap; degrade to a disk write if not.
            let pieces = if admit {
                self.space.alloc(cache, g_len)
            } else {
                None
            };
            if let Some(pieces) = pieces {
                let mut cursor = g_off;
                for p in pieces {
                    self.dmt
                        .insert(req.file, cursor, p.len, cache, p.c_offset, true);
                    ops.push(self.data_op(
                        Tier::CServers,
                        cache,
                        IoKind::Write,
                        p.c_offset,
                        p.len,
                        cursor,
                        req,
                    ));
                    cursor += p.len;
                }
                used_cache = true;
            } else {
                ops.push(self.data_op(
                    Tier::DServers,
                    req.file,
                    IoKind::Write,
                    g_off,
                    g_len,
                    g_off,
                    req,
                ));
            }
        }
        if used_cache {
            self.metrics.writes_to_cache += 1;
        } else {
            self.metrics.writes_to_disk += 1;
        }
        // Atomic admission: the journal write describing new mappings runs
        // in a phase *after* the data writes (data-before-metadata). A
        // crash between the two leaves orphaned cache bytes — swept on
        // recovery — never a mapping to unwritten space.
        let mut journal_ops = Vec::new();
        self.journal_op(cluster, &mut journal_ops);
        let mut plan = Plan {
            tag: 0,
            lead_in: self.config.decision_overhead,
            phases: vec![ops],
        };
        if !journal_ops.is_empty() {
            plan.phases.push(journal_ops);
        }
        // Once the plan completes, seal the cache extents this write
        // filled: the checksum is computed from the bytes then on CPFS,
        // version-gated against racing overwrites.
        let seals: Vec<(FileId, u64, u64)> = self
            .dmt
            .extents_overlapping(req.file, req.offset, req.len)
            .into_iter()
            .map(|(d_off, e)| (req.file, d_off, e.version))
            .collect();
        if !seals.is_empty() {
            let tag = self.next_tag;
            self.next_tag += 1;
            self.pending.insert(tag, Pending::Seal(seals));
            plan.tag = tag;
        }
        plan
    }

    /// Algorithm 1, read side (with the lazy `C_flag` marking of §III.E).
    fn plan_read(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        req: &AppRequest,
        critical: bool,
    ) -> Plan {
        let Some(cache) = self.cache_file_of.get(&req.file).copied() else {
            // Not opened through the middleware: route straight to disk.
            return self.direct_plan(req);
        };
        if self.config.verify_on_read {
            // Verify the seals of every cached extent in range before
            // routing: corrupt clean bytes are repaired from DServers
            // first, and unrecoverable dirty corruption is dropped (the
            // read then serves the last flushed version from DServers
            // instead of silently returning bad bytes).
            self.verify_range(cluster, req.file, req.offset, req.len);
        }
        let mut ops: Vec<PlannedIo> = Vec::new();
        let view = self.dmt.view(req.file, req.offset, req.len);
        self.dmt.touch_range(req.file, req.offset, req.len);
        // Graceful degradation: a *clean* cached piece striped over a
        // quarantined CServer is served from OPFS instead (same bytes,
        // none of the risk). Dirty pieces have no other copy — they keep
        // routing to the cache, and the runner's retry/replan machinery
        // rides out the outage.
        let mut cache_pieces: Vec<(u64, u64)> = Vec::new();
        for piece in &view.pieces {
            if !piece.dirty && self.cache_range_unhealthy(cluster, now, piece.c_offset, piece.len) {
                self.metrics.fallback_reads += 1;
                self.metrics.fallback_bytes += piece.len;
                ops.push(self.data_op(
                    Tier::DServers,
                    req.file,
                    IoKind::Read,
                    piece.d_offset,
                    piece.len,
                    piece.d_offset,
                    req,
                ));
                continue;
            }
            cache_pieces.push((piece.d_offset, piece.len));
            ops.push(self.data_op(
                Tier::CServers,
                piece.c_file,
                IoKind::Read,
                piece.c_offset,
                piece.len,
                piece.d_offset,
                req,
            ));
        }
        for &(g_off, g_len) in &view.gaps {
            ops.push(self.data_op(
                Tier::DServers,
                req.file,
                IoKind::Read,
                g_off,
                g_len,
                g_off,
                req,
            ));
        }
        let mut plan = Plan {
            tag: 0,
            lead_in: self.config.decision_overhead,
            phases: vec![ops],
        };
        if !cache_pieces.is_empty() {
            // Pin the cached pieces this read references until the plan
            // completes, so eviction cannot free space under a queued
            // sub-request. (Fallback pieces read OPFS and need no pin.)
            let ranges: Vec<(FileId, u64, u64)> = cache_pieces
                .iter()
                .map(|&(d_offset, len)| (req.file, d_offset, len))
                .collect();
            self.pins.extend(ranges.iter().copied());
            let tag = self.next_tag;
            self.next_tag += 1;
            self.pending.insert(tag, Pending::Unpin(ranges));
            plan.tag = tag;
        }
        if view.fully_covered() {
            self.metrics.read_full_hits += 1;
        } else {
            if view.fully_missed() {
                self.metrics.read_misses += 1;
            } else {
                self.metrics.read_partial_hits += 1;
            }
            // No new cache fills while any CServer is quarantined: fetches
            // stripe over the whole tier, so they would land on the sick
            // server too.
            if critical && !self.health.any_unhealthy(now) {
                if self.config.eager_read_fetch {
                    self.plan_eager_fetch(cluster, req, cache, &view.gaps, &mut plan);
                } else if self.cdt.set_c_flag(req.file, req.offset, req.len) {
                    // Lazy caching: mark for the Rebuilder (line 18).
                    self.metrics.lazy_marks += 1;
                }
            }
        }
        let mut journal_ops = Vec::new();
        self.journal_op(cluster, &mut journal_ops);
        if !journal_ops.is_empty() {
            plan.phases.push(journal_ops);
        }
        plan
    }

    /// Eager-fetch ablation: append a second phase writing the missed gaps
    /// into the cache as part of the request itself.
    fn plan_eager_fetch(
        &mut self,
        cluster: &mut Cluster,
        req: &AppRequest,
        cache: FileId,
        gaps: &[(u64, u64)],
        plan: &mut Plan,
    ) {
        let total: u64 = gaps.iter().map(|&(_, l)| l).sum();
        if total == 0 || !self.make_room(cluster, total) {
            self.metrics.admission_denied_space += 1;
            return;
        }
        let mut phase = Vec::new();
        let mut pieces = Vec::new();
        for &(g_off, g_len) in gaps {
            let Some(allocs) = self.space.alloc(cache, g_len) else {
                continue; // make_room guaranteed capacity; skip the gap if not
            };
            let mut cursor = g_off;
            for p in allocs {
                phase.push(PlannedIo {
                    tier: Tier::CServers,
                    file: cache,
                    kind: IoKind::Write,
                    offset: p.c_offset,
                    len: p.len,
                    priority: Priority::Normal,
                    data: None,
                    app_offset: None,
                });
                pieces.push((cursor, p.len, cache, p.c_offset));
                cursor += p.len;
            }
        }
        let fetch = Pending::Fetch {
            orig: req.file,
            cdt_keys: vec![(req.offset, req.len)],
            pieces,
        };
        if plan.tag != 0 {
            // The read already registered an Unpin action; chain them.
            let chained = match self.pending.remove(&plan.tag) {
                Some(existing) => Pending::Multi(vec![existing, fetch]),
                None => fetch,
            };
            self.pending.insert(plan.tag, chained);
        } else {
            let tag = self.next_tag;
            self.next_tag += 1;
            self.pending.insert(tag, fetch);
            plan.tag = tag;
        }
        self.metrics.fetches += 1;
        self.metrics.fetched_bytes += total;
        plan.phases.push(phase);
    }

    #[allow(clippy::too_many_arguments)]
    fn data_op(
        &self,
        tier: Tier,
        file: FileId,
        kind: IoKind,
        offset: u64,
        len: u64,
        app_offset: u64,
        req: &AppRequest,
    ) -> PlannedIo {
        let data = match (kind, &req.data) {
            (IoKind::Write, Some(full)) => {
                let at = (app_offset - req.offset) as usize;
                // None (short payload) degrades to a sizing-only op.
                full.get(at..at + len as usize).map(<[u8]>::to_vec)
            }
            _ => None,
        };
        PlannedIo {
            tier,
            file,
            kind,
            offset,
            len,
            priority: Priority::Normal,
            data,
            app_offset: Some(app_offset),
        }
    }

    /// Builds the Rebuilder's flush plans (dirty → DServers, §III.F step 1).
    ///
    /// Adjacent dirty extents of the same file are flushed as one group:
    /// the CServer reads of a group run concurrently (merged where the
    /// cache-file ranges happen to be contiguous too), and the DServer
    /// write is a single large sequential I/O.
    fn build_flushes(&mut self, cluster: &mut Cluster, now: SimTime, plans: &mut Vec<Plan>) {
        // With `flush_on_risk`, a CServer showing trouble (quarantine, a
        // recent failure, or a latency EWMA above the threshold) triggers
        // flushing *everything* dirty — shrinking the data-loss window a
        // subsequent crash could hit.
        let limit = if self.config.flush_on_risk
            && self
                .health
                .any_at_risk(now, self.config.degraded_latency_ratio)
        {
            usize::MAX
        } else {
            self.config.max_flush_per_wake
        };
        let mut candidates = self.dmt.dirty_lru(limit);
        candidates.retain(|(f, d, _)| !self.inflight_flush.contains(&(*f, *d)));
        candidates.sort_by_key(|(f, d, _)| (f.0, *d));
        let mut intents: Vec<JournalRecord> = Vec::new();
        let mut i = 0;
        while let Some(&(file, start, first)) = candidates.get(i) {
            let mut items = vec![FlushItem {
                orig: file,
                d_offset: start,
                len: first.len,
                c_file: first.c_file,
                c_offset: first.c_offset,
                version: first.version,
            }];
            let mut end = start + first.len;
            let mut j = i + 1;
            while let Some(&(f2, d2, e2)) = candidates.get(j) {
                if f2 == file && d2 == end && (end - start) + e2.len <= MAX_GROUP_BYTES {
                    items.push(FlushItem {
                        orig: f2,
                        d_offset: d2,
                        len: e2.len,
                        c_file: e2.c_file,
                        c_offset: e2.c_offset,
                        version: e2.version,
                    });
                    end = d2 + e2.len;
                    j += 1;
                } else {
                    break;
                }
            }
            i = j;
            // Phase 1: read the cached bytes (merge cache-contiguous runs).
            let mut reads: Vec<PlannedIo> = Vec::new();
            for item in &items {
                if let Some(last) = reads.last_mut() {
                    if last.file == item.c_file && last.offset + last.len == item.c_offset {
                        last.len += item.len;
                        continue;
                    }
                }
                reads.push(PlannedIo {
                    tier: Tier::CServers,
                    file: item.c_file,
                    kind: IoKind::Read,
                    offset: item.c_offset,
                    len: item.len,
                    priority: Priority::Background,
                    data: None,
                    app_offset: None,
                });
            }
            // Phase 2: one sequential write to the original file.
            let write = PlannedIo {
                tier: Tier::DServers,
                file,
                kind: IoKind::Write,
                offset: start,
                len: end - start,
                priority: Priority::Background,
                data: None,
                app_offset: None,
            };
            let tag = self.next_tag;
            self.next_tag += 1;
            self.metrics.flushes += items.len() as u64;
            self.metrics.flushed_bytes += end - start;
            for item in &items {
                self.inflight_flush.insert((item.orig, item.d_offset));
            }
            intents.push(JournalRecord::FlushIntent {
                d_file: file,
                d_offset: start,
            });
            self.pending.insert(tag, Pending::Flush(items));
            plans.push(Plan {
                tag,
                lead_in: SimDuration::ZERO,
                phases: vec![reads, vec![write]],
            });
        }
        if !intents.is_empty() {
            // Journal the intents before any flush plan can run: recovery
            // sees which ranges were mid-flush and that a re-flush is due.
            // The matching commit is the SetClean record at completion, so
            // a crash between the two re-flushes idempotently.
            self.append_journal_sync(cluster, &intents);
        }
    }

    /// Builds the Rebuilder's fetch plans (CDT `C_flag` data → CServers,
    /// §III.F step 2). Adjacent flagged entries of a file are fetched as
    /// one group so sequential critical data costs one large DServer read.
    fn build_fetches(&mut self, cluster: &mut Cluster, now: SimTime, plans: &mut Vec<Plan>) {
        // Fetches create new cache data striped over every CServer; pause
        // them entirely while any server is quarantined (the flags stay
        // set, so fetching resumes once the tier is healthy again).
        if self.health.any_unhealthy(now) {
            return;
        }
        let mut flagged = self.cdt.flagged(self.config.max_fetch_per_wake);
        flagged.retain(|e| !self.inflight_fetch.contains(&(e.file, e.offset, e.len)));
        flagged.sort_by_key(|e| (e.file.0, e.offset));
        let mut i = 0;
        while let Some(head) = flagged.get(i) {
            let file = head.file;
            let start = head.offset;
            let mut end = start + head.len;
            let mut keys = vec![(head.offset, head.len)];
            let mut j = i + 1;
            while let Some(e) = flagged.get(j) {
                if e.file == file && e.offset == end && (end - start) + e.len <= MAX_GROUP_BYTES {
                    end = e.offset + e.len;
                    keys.push((e.offset, e.len));
                    j += 1;
                } else {
                    break;
                }
            }
            i = j;
            let Some(&cache) = self.cache_file_of.get(&file) else {
                continue;
            };
            let view = self.dmt.view(file, start, end - start);
            if view.fully_covered() {
                for &(o, l) in &keys {
                    self.cdt.clear_c_flag(file, o, l);
                }
                continue;
            }
            let total: u64 = view.gaps.iter().map(|&(_, l)| l).sum();
            if !self.make_room(cluster, total) {
                // No clean space to reclaim: stop fetching this wake.
                break;
            }
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            let mut pieces = Vec::new();
            for &(g_off, g_len) in &view.gaps {
                let Some(allocs) = self.space.alloc(cache, g_len) else {
                    continue; // make_room guaranteed capacity; skip the gap if not
                };
                reads.push(PlannedIo {
                    tier: Tier::DServers,
                    file,
                    kind: IoKind::Read,
                    offset: g_off,
                    len: g_len,
                    priority: Priority::Background,
                    data: None,
                    app_offset: None,
                });
                let mut cursor = g_off;
                for p in allocs {
                    writes.push(PlannedIo {
                        tier: Tier::CServers,
                        file: cache,
                        kind: IoKind::Write,
                        offset: p.c_offset,
                        len: p.len,
                        priority: Priority::Background,
                        data: None,
                        app_offset: None,
                    });
                    pieces.push((cursor, p.len, cache, p.c_offset));
                    cursor += p.len;
                }
            }
            let tag = self.next_tag;
            self.next_tag += 1;
            for &(o, l) in &keys {
                self.inflight_fetch.insert((file, o, l));
            }
            self.pending.insert(
                tag,
                Pending::Fetch {
                    orig: file,
                    cdt_keys: keys,
                    pieces,
                },
            );
            self.metrics.fetches += 1;
            self.metrics.fetched_bytes += total;
            plans.push(Plan {
                tag,
                lead_in: SimDuration::ZERO,
                phases: vec![reads, writes],
            });
        }
    }

    fn apply_pending(&mut self, cluster: &mut Cluster, action: Option<Pending>) {
        match action {
            Some(Pending::Multi(actions)) => {
                for a in actions {
                    self.apply_pending(cluster, Some(a));
                }
            }
            Some(Pending::Unpin(ranges)) => {
                for range in ranges {
                    if let Some(i) = self.pins.iter().position(|&p| p == range) {
                        self.pins.swap_remove(i);
                    }
                }
            }
            Some(Pending::Flush(items)) => self.finish_flush_group(cluster, items),
            Some(Pending::Fetch {
                orig,
                cdt_keys,
                pieces,
            }) => self.finish_fetch(cluster, orig, cdt_keys, pieces),
            Some(Pending::Seal(targets)) => self.finish_seals(cluster, targets),
            None => {}
        }
    }

    /// Seals extents whose plan completed: reads the cached bytes back,
    /// checksums them, and attaches the seal if no write raced (version
    /// gate). Timing-mode stores hold no bytes; sealing is skipped there.
    fn finish_seals(&mut self, cluster: &mut Cluster, targets: Vec<(FileId, u64, u64)>) {
        for (orig, d_offset, version) in targets {
            let Some(e) = self.dmt.get(orig, d_offset) else {
                continue;
            };
            if e.version != version {
                continue;
            }
            let (c_file, c_offset, len) = (e.c_file, e.c_offset, e.len);
            let Ok(Some(bytes)) = cluster.cpfs().read_bytes(c_file, c_offset, len) else {
                continue;
            };
            let sum = journal::crc32(&bytes);
            self.dmt.seal_if(orig, d_offset, version, sum);
        }
    }

    fn finish_flush_group(&mut self, cluster: &mut Cluster, items: Vec<FlushItem>) {
        let mut seals: Vec<(FileId, u64, u64)> = Vec::new();
        for item in items {
            // The extent may have vanished while the flush was in flight —
            // a crash invalidated it, or eviction raced — and its cache
            // space may already hold *other* data. Copying then would
            // corrupt the original file, so the item is skipped; whoever
            // removed the extent accounted for its bytes.
            let still_there = self.dmt.get(item.orig, item.d_offset).is_some_and(|e| {
                e.c_file == item.c_file && e.c_offset == item.c_offset && e.len >= item.len
            });
            if still_there {
                // Apply the data effect of the simulated copy (current
                // bytes — if a write raced the flush, DServers receive the
                // newest data and the extent simply stays dirty for a
                // later flush).
                let allowed = self.fuse_consume(CrashSite::FlushCopy, item.len);
                if allowed > 0 {
                    let _ = cluster.copy_range(
                        (Tier::CServers, item.c_file, item.c_offset),
                        (Tier::DServers, item.orig, item.d_offset),
                        allowed,
                    );
                }
                // The commit (SetClean) only follows a complete copy; a
                // torn copy leaves the extent dirty, so recovery re-flushes
                // the whole range — idempotent because the same bytes land
                // on the same DServer offsets.
                if allowed == item.len
                    && self
                        .dmt
                        .mark_clean_if(item.orig, item.d_offset, item.version)
                {
                    seals.push((item.orig, item.d_offset, item.version));
                }
            }
            self.inflight_flush.remove(&(item.orig, item.d_offset));
        }
        // Flushing does not change the cached bytes: seal any flushed
        // extent that was still unverified.
        seals.retain(|&(f, o, _)| self.dmt.get(f, o).is_some_and(|e| e.checksum.is_none()));
        self.finish_seals(cluster, seals);
    }

    fn finish_fetch(
        &mut self,
        cluster: &mut Cluster,
        orig: FileId,
        cdt_keys: Vec<(u64, u64)>,
        pieces: Vec<(u64, u64, FileId, u64)>,
    ) {
        let mut seals: Vec<(FileId, u64, u64)> = Vec::new();
        for (d_off, len, c_file, c_off) in pieces {
            // A foreground write may have mapped (parts of) this range while
            // the fetch was in flight; only fill the still-missing gaps and
            // return the rest of the reservation.
            let view = self.dmt.view(orig, d_off, len);
            for &(g_off, g_len) in &view.gaps {
                let rel = g_off - d_off;
                let allowed = self.fuse_consume(CrashSite::FetchFill, g_len);
                if allowed > 0 {
                    let _ = cluster.copy_range(
                        (Tier::DServers, orig, g_off),
                        (Tier::CServers, c_file, c_off + rel),
                        allowed,
                    );
                }
                // Data-before-metadata: the mapping only exists once the
                // fill completed. A torn fill leaves orphaned cache bytes
                // for the recovery sweep, never a mapping to a hole.
                if allowed == g_len {
                    self.dmt
                        .insert(orig, g_off, g_len, c_file, c_off + rel, false);
                    if let Some(e) = self.dmt.get(orig, g_off) {
                        seals.push((orig, g_off, e.version));
                    }
                } else {
                    self.space.release(c_file, c_off + rel, g_len);
                }
            }
            // Give back the parts of the reservation that a racing write
            // already mapped elsewhere.
            for piece in &view.pieces {
                let rel = piece.d_offset - d_off;
                self.space.release(c_file, c_off + rel, piece.len);
            }
        }
        for (o, l) in cdt_keys {
            self.cdt.clear_c_flag(orig, o, l);
            self.inflight_fetch.remove(&(orig, o, l));
        }
        self.finish_seals(cluster, seals);
    }

    /// Installs a DMT checkpoint snapshot once enough journal growth has
    /// accumulated, then compacts (discards) the journal region the
    /// snapshot covers. Double-buffered slots plus a CRC over the whole
    /// snapshot make the install atomic: a torn write fails the CRC and
    /// recovery falls back to the previous slot.
    fn maybe_checkpoint(&mut self, cluster: &mut Cluster) {
        let records_since = self
            .dmt
            .journal_records_total()
            .saturating_sub(self.records_at_last_ckpt);
        let bytes_since = self.journal_offset.saturating_sub(self.last_ckpt_tail);
        if records_since < self.config.checkpoint_after_records
            && bytes_since < self.config.checkpoint_after_bytes
        {
            return;
        }
        // Force-drain so the snapshot covers every journaled mutation and
        // the tail past `tail_offset` is an exact record-order suffix.
        self.append_journal_sync(cluster, &[]);
        if self.fuse_dead() {
            return;
        }
        let tail_offset = self.journal_offset;
        let mut live: Vec<(FileId, u64, crate::dmt::MapExtent)> = self
            .dmt
            .iter_extents()
            .map(|(f, o, e)| (f, o, *e))
            .collect();
        // Sorted snapshot order keeps the byte stream — and therefore the
        // torture harness's crash points — deterministic.
        live.sort_unstable_by_key(|&(f, o, _)| (f.0, o));
        let mut records = Vec::with_capacity(live.len());
        for (f, o, e) in live {
            records.push(JournalRecord::Insert {
                d_file: f,
                d_offset: o,
                len: e.len,
                c_file: e.c_file,
                c_offset: e.c_offset,
                dirty: e.dirty,
            });
            if let Some(sum) = e.checksum {
                records.push(JournalRecord::Seal {
                    d_file: f,
                    d_offset: o,
                    checksum: sum,
                    len: e.len,
                });
            }
        }
        let seq = self.checkpoint_seq + 1;
        let data = journal::encode_checkpoint(seq, tail_offset, &records);
        let slot_name = if seq % 2 == 1 {
            CKPT_SLOT_A
        } else {
            CKPT_SLOT_B
        };
        let slot = cluster.cpfs_mut().create_or_open(slot_name);
        let len = data.len() as u64;
        let allowed = self.fuse_consume(CrashSite::CheckpointWrite, len);
        let _ = cluster
            .cpfs_mut()
            .apply_bytes(slot, 0, allowed, Some(&data));
        if allowed < len {
            // Torn install: the CRC trailer never landed, so recovery keeps
            // using the previous slot. This instance is dead.
            return;
        }
        // Compact: the journal below the snapshot's tail is dead weight.
        let compacted = tail_offset.saturating_sub(self.journal_base);
        if compacted > 0 {
            let journal = self.ensure_journal(cluster);
            let allowed = self.fuse_consume(CrashSite::JournalTruncate, compacted);
            if allowed > 0 {
                let _ = cluster
                    .cpfs_mut()
                    .discard(journal, self.journal_base, allowed);
            }
        }
        self.checkpoint_seq = seq;
        self.last_ckpt_tail = tail_offset;
        self.records_at_last_ckpt = self.dmt.journal_records_total();
        self.journal_base = tail_offset;
        self.metrics.checkpoints += 1;
        self.metrics.checkpoint_bytes += len;
        self.metrics.records_compacted += records_since;
    }

    /// Verifies one extent against its seal; the scrubber's unit of work.
    /// Returns the bytes scanned, or `None` when the stores are
    /// timing-only (no bytes exist to verify — the caller stops).
    ///
    /// Decisions: a clean extent failing its seal (or unsealed) is
    /// byte-compared against OPFS and repaired from there — DServers hold
    /// the same logical bytes for clean data. A *dirty* extent failing its
    /// seal is unrecoverable (the cache held the only copy); the mapping
    /// is removed — with the Remove journaled before the discard — and the
    /// loss is surfaced, so reads serve the last flushed version instead
    /// of silently returning bad bytes. Dirty unsealed extents are skipped.
    fn scrub_extent(&mut self, cluster: &mut Cluster, orig: FileId, d_offset: u64) -> Option<u64> {
        let Some(e) = self.dmt.get(orig, d_offset).copied() else {
            return Some(0);
        };
        let bytes = match cluster.cpfs().read_bytes(e.c_file, e.c_offset, e.len) {
            Ok(Some(b)) => b,
            _ => return None,
        };
        let sum = journal::crc32(&bytes);
        match (e.dirty, e.checksum) {
            (false, Some(expect)) if expect == sum => {}
            (false, _) => {
                // Clean: OPFS is ground truth. Repair on mismatch, then
                // (re-)seal with the verified content.
                let Ok(Some(truth)) = cluster.opfs().read_bytes(orig, d_offset, e.len) else {
                    return None;
                };
                if truth != bytes {
                    let _ = cluster.copy_range(
                        (Tier::DServers, orig, d_offset),
                        (Tier::CServers, e.c_file, e.c_offset),
                        e.len,
                    );
                    self.metrics.scrub_repaired_bytes += e.len;
                }
                self.dmt
                    .seal_if(orig, d_offset, e.version, journal::crc32(&truth));
            }
            (true, Some(expect)) if expect != sum => {
                // Unrecoverable: the only up-to-date copy is corrupt.
                self.dmt.remove(orig, d_offset);
                self.append_journal_sync(cluster, &[]);
                let allowed = self.fuse_consume(CrashSite::EvictDiscard, e.len);
                if allowed > 0 {
                    let _ = cluster.cpfs_mut().discard(e.c_file, e.c_offset, allowed);
                }
                self.space.release(e.c_file, e.c_offset, e.len);
                self.metrics.scrub_lost_bytes += e.len;
                self.metrics.dirty_bytes_lost += e.len;
            }
            (true, Some(_)) => {} // sealed dirty extent, intact
            (true, None) => {
                self.metrics.scrub_unverified_bytes += e.len;
            }
        }
        self.metrics.scrub_scanned_bytes += e.len;
        Some(e.len)
    }

    /// One background scrub pass: verifies extents in `(file, offset)`
    /// order, resuming after the cursor, until the per-wake byte budget is
    /// spent. Wraps around, so every extent is eventually visited.
    fn run_scrub(&mut self, cluster: &mut Cluster) {
        let mut targets: Vec<(FileId, u64)> =
            self.dmt.iter_extents().map(|(f, o, _)| (f, o)).collect();
        if targets.is_empty() {
            return;
        }
        targets.sort_unstable_by_key(|&(f, o)| (f.0, o));
        let start = match self.scrub_cursor {
            None => 0,
            Some((cf, co)) => targets
                .iter()
                .position(|&(f, o)| (f.0, o) > (cf.0, co))
                .unwrap_or(0),
        };
        let mut budget = self.config.scrub_bytes_per_wake;
        for k in 0..targets.len() {
            if budget == 0 {
                break;
            }
            // s4d-lint: allow(panic) — index is taken modulo `targets.len()`, which the loop guard keeps non-zero
            let (f, o) = targets[(start + k) % targets.len()];
            match self.scrub_extent(cluster, f, o) {
                None => return,
                Some(scanned) => {
                    budget = budget.saturating_sub(scanned.max(1));
                    self.scrub_cursor = Some((f, o));
                }
            }
        }
    }

    /// A pass-through plan routing the request straight to DServers —
    /// the fallback when the file has no cache mapping (never opened
    /// through the middleware) and for `force_miss` mode.
    fn direct_plan(&mut self, req: &AppRequest) -> Plan {
        let mut op = PlannedIo::data_op(
            Tier::DServers,
            req.file,
            req.kind,
            req.offset,
            req.len,
            req.offset,
        );
        op.data = req.data.clone();
        match req.kind {
            IoKind::Write => self.metrics.writes_to_disk += 1,
            IoKind::Read => self.metrics.read_misses += 1,
        }
        Plan {
            tag: 0,
            lead_in: self.config.decision_overhead,
            phases: vec![vec![op]],
        }
    }

    /// Verifies every cached extent overlapping a range — the
    /// `verify_on_read` pre-pass.
    fn verify_range(&mut self, cluster: &mut Cluster, file: FileId, offset: u64, len: u64) {
        let targets: Vec<u64> = self
            .dmt
            .extents_overlapping(file, offset, len)
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        for o in targets {
            if self.scrub_extent(cluster, file, o).is_none() {
                return;
            }
        }
    }
}

impl Middleware for S4dCache {
    fn open(
        &mut self,
        cluster: &mut Cluster,
        _rank: Rank,
        name: &str,
    ) -> Result<FileId, MiddlewareError> {
        self.ensure_space_manager();
        self.ensure_health(cluster);
        self.ensure_journal(cluster);
        let orig = cluster.opfs_mut().create_or_open(name);
        // The paper opens a correlating cache file alongside each original
        // file (MPI_File_open, §IV.B).
        let cache_name = format!("{name}.cache");
        let cache = cluster.cpfs_mut().create_or_open(&cache_name);
        self.cache_file_of.insert(orig, cache);
        Ok(orig)
    }

    fn plan_io(&mut self, cluster: &mut Cluster, now: SimTime, req: &AppRequest) -> Plan {
        self.ensure_health(cluster);
        let critical = self.identify(req);
        if self.config.force_miss {
            // Fig. 11 mode: full bookkeeping, no redirection.
            return self.direct_plan(req);
        }
        let plan = match req.kind {
            IoKind::Write => self.plan_write(cluster, now, req, critical),
            IoKind::Read => self.plan_read(cluster, now, req, critical),
        };
        // Journal-before-ack audit: every DMT mutation this operation made
        // is in the journaling pipeline before the plan is handed back.
        debug_assert_eq!(
            self.dmt.pending_records(),
            0,
            "plan_io returned with uncollected journal records"
        );
        plan
    }

    fn close(
        &mut self,
        _cluster: &mut Cluster,
        _rank: Rank,
        _file: FileId,
    ) -> Result<(), MiddlewareError> {
        // Cached data outlives the open (that is the point of the second-run
        // read experiments); nothing to tear down per close.
        Ok(())
    }

    fn on_plan_complete(&mut self, cluster: &mut Cluster, _now: SimTime, tag: u64) {
        let action = self.pending.remove(&tag);
        self.apply_pending(cluster, action);
        // Journal-before-ack audit: completion-side mutations (SetClean,
        // fetch Inserts, Seals) enter the journaling pipeline before the
        // runner regains control.
        self.collect_pending_records();
        debug_assert_eq!(
            self.dmt.pending_records(),
            0,
            "on_plan_complete returned with uncollected journal records"
        );
    }

    fn on_io_error(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        failure: &SubIoFailure,
    ) -> ErrorDirective {
        if failure.tier == Tier::DServers {
            // OPFS is the durability root and has no health machinery
            // here: ride out transient errors with backoff, and let an
            // outage fail the plan so the runner re-plans it later.
            return match failure.error {
                IoFault::Transient if failure.attempts < self.config.retry_max_attempts => {
                    self.metrics.retries += 1;
                    ErrorDirective::Retry {
                        delay: self.retry_backoff(failure.attempts),
                    }
                }
                _ => ErrorDirective::GiveUp,
            };
        }
        self.ensure_health(cluster);
        match failure.error {
            IoFault::Offline => {
                // An offline CServer is a crash window: its stores are
                // gone. Quarantine it and invalidate every extent it held
                // before anything re-plans against the stale mapping.
                self.handle_crash(cluster, failure.server, now);
                ErrorDirective::GiveUp
            }
            IoFault::Transient => {
                if self.health.record_failure(
                    failure.server,
                    now,
                    self.config.quarantine_after,
                    self.config.quarantine_duration,
                ) {
                    self.metrics.quarantines += 1;
                }
                if self.health.is_unhealthy(failure.server, now)
                    || failure.attempts >= self.config.retry_max_attempts
                {
                    ErrorDirective::GiveUp
                } else {
                    self.metrics.retries += 1;
                    ErrorDirective::Retry {
                        delay: self.retry_backoff(failure.attempts),
                    }
                }
            }
        }
    }

    fn on_io_complete(
        &mut self,
        tier: Tier,
        server: usize,
        _kind: IoKind,
        len: u64,
        latency: SimDuration,
    ) {
        if tier != Tier::CServers {
            return;
        }
        self.health.ensure_servers(server + 1);
        // Observed-over-predicted latency feeds the degradation EWMA. The
        // prediction is the cost model's T_C for a request of this size;
        // the observation includes queueing, so the ratio is noisy — the
        // EWMA and a generous threshold absorb that.
        let predicted = t_cservers(self.evaluator.params(), 0, len, SmMode::Table2);
        let ratio = if predicted > 0.0 {
            latency.as_secs_f64() / predicted
        } else {
            1.0
        };
        self.health.record_success(server, ratio);
    }

    fn on_plan_failed(&mut self, _cluster: &mut Cluster, _now: SimTime, tag: u64) {
        let action = self.pending.remove(&tag);
        self.abandon_pending(action);
    }

    fn durability(&self) -> Option<DurabilityCounts> {
        Some(DurabilityCounts {
            journal_writes: self.metrics.journal_writes,
            journal_bytes: self.metrics.journal_bytes,
            checkpoints: self.metrics.checkpoints,
            checkpoint_bytes: self.metrics.checkpoint_bytes,
            records_compacted: self.metrics.records_compacted,
            recovery_records_replayed: self.last_recovery.map_or(0, |r| r.records_replayed()),
            recovery_dropped_bytes: self.last_recovery.map_or(0, |r| r.dropped_journal_bytes),
        })
    }

    fn poll_background(&mut self, cluster: &mut Cluster, now: SimTime) -> BackgroundPoll {
        if self.config.force_miss {
            return BackgroundPoll {
                plans: Vec::new(),
                next_wake: Some(now + self.config.rebuild_period),
                work_pending: false,
            };
        }
        let mut plans = Vec::new();
        if !self.config.persistent_placement {
            // CARL-style placement keeps data on the CServers for good:
            // nothing is ever written back, so there is nothing to flush.
            self.build_flushes(cluster, now, &mut plans);
        }
        self.build_fetches(cluster, now, &mut plans);
        if self.config.scrub_bytes_per_wake > 0 {
            self.run_scrub(cluster);
        }
        self.maybe_checkpoint(cluster);
        // Persist any straggling journal records with background priority.
        if let Some(op) = self.drain_journal(cluster, Priority::Background) {
            plans.push(Plan::single_phase(vec![op]));
        }
        debug_assert_eq!(
            self.dmt.pending_records(),
            0,
            "poll_background returned with uncollected journal records"
        );
        // A pending Seal is advisory bookkeeping (checksums attach on
        // completion) and must not keep the drain loop spinning.
        fn blocks_idle(p: &Pending) -> bool {
            match p {
                Pending::Seal(_) => false,
                Pending::Multi(actions) => actions.iter().any(blocks_idle),
                _ => true,
            }
        }
        let work_pending = !plans.is_empty()
            || self.pending.values().any(blocks_idle)
            || (!self.config.persistent_placement && self.dmt.dirty_bytes() > 0);
        BackgroundPoll {
            plans,
            next_wake: Some(now + self.config.rebuild_period),
            work_pending,
        }
    }

    fn name(&self) -> &str {
        "s4d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DMT_RECORD_BYTES;
    use s4d_storage::presets;

    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;

    fn params_small() -> CostParams {
        CostParams::from_hardware(
            &presets::hdd_seagate_st3250(),
            &presets::ssd_ocz_revodrive_x2(),
            2,
            1,
            64 * KIB,
        )
        .with_network_bandwidth(117.0e6)
    }

    fn setup(capacity: u64) -> (Cluster, S4dCache, FileId) {
        // Journal batch of 1 so tests can observe per-request journaling.
        let config = S4dConfig::new(capacity).with_journal_batch(1);
        let mut cluster = Cluster::paper_testbed_small(9);
        let mut mw = S4dCache::new(config, params_small());
        let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
        (cluster, mw, f)
    }

    fn write_req(file: FileId, offset: u64, len: u64) -> AppRequest {
        AppRequest {
            rank: Rank(0),
            file,
            kind: IoKind::Write,
            offset,
            len,
            data: None,
        }
    }

    fn read_req(file: FileId, offset: u64, len: u64) -> AppRequest {
        AppRequest {
            rank: Rank(0),
            file,
            kind: IoKind::Read,
            offset,
            len,
            data: None,
        }
    }

    fn tiers_of(plan: &Plan) -> Vec<Tier> {
        plan.phases
            .iter()
            .flatten()
            .filter(|op| op.app_offset.is_some())
            .map(|op| op.tier)
            .collect()
    }

    #[test]
    fn critical_write_is_admitted_to_cservers() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        assert_eq!(tiers_of(&plan), vec![Tier::CServers]);
        assert_eq!(mw.dmt().mapped_bytes(), 16 * KIB);
        assert_eq!(mw.dmt().dirty_bytes(), 16 * KIB);
        assert!(mw.cdt().contains(f, 0, 16 * KIB));
        assert_eq!(mw.metrics().writes_to_cache, 1);
        // The plan carries a journal write for the DMT mutation.
        let journal_ops: Vec<_> = plan
            .phases
            .iter()
            .flatten()
            .filter(|op| op.app_offset.is_none())
            .collect();
        assert_eq!(journal_ops.len(), 1);
        assert_eq!(journal_ops[0].tier, Tier::CServers);
        assert!(journal_ops[0].len >= DMT_RECORD_BYTES);
    }

    #[test]
    fn large_write_goes_to_dservers() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 8 * MIB));
        assert_eq!(tiers_of(&plan), vec![Tier::DServers]);
        assert_eq!(mw.dmt().mapped_bytes(), 0);
        assert!(!mw.cdt().contains(f, 0, 8 * MIB));
        assert_eq!(mw.metrics().writes_to_disk, 1);
    }

    #[test]
    fn write_hit_updates_cache_and_stays_dirty() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        assert_eq!(tiers_of(&plan), vec![Tier::CServers]);
        assert_eq!(mw.dmt().mapped_bytes(), 16 * KIB, "no double mapping");
        assert_eq!(mw.metrics().writes_to_cache, 2);
    }

    #[test]
    fn read_hit_served_from_cache_miss_from_disk() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        let hit = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
        assert_eq!(tiers_of(&hit), vec![Tier::CServers]);
        assert_eq!(mw.metrics().read_full_hits, 1);
        let miss = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, MIB, 16 * KIB));
        assert_eq!(tiers_of(&miss), vec![Tier::DServers]);
        assert_eq!(mw.metrics().read_misses, 1);
    }

    #[test]
    fn partial_hit_splits_across_tiers() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        // Read 32 KiB: first 16 cached, second 16 not.
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 32 * KIB));
        let tiers = tiers_of(&plan);
        assert!(tiers.contains(&Tier::CServers));
        assert!(tiers.contains(&Tier::DServers));
        assert_eq!(mw.metrics().read_partial_hits, 1);
    }

    #[test]
    fn critical_read_miss_is_lazily_marked() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
        // Served from DServers now...
        assert_eq!(tiers_of(&plan), vec![Tier::DServers]);
        // ...but flagged for the Rebuilder.
        assert_eq!(mw.metrics().lazy_marks, 1);
        assert_eq!(mw.cdt().flagged(10).len(), 1);
    }

    #[test]
    fn capacity_exhaustion_spills_to_dservers() {
        // Cache of 32 KiB: the first critical write fills it; the second
        // (all-dirty cache, nothing evictable) must spill.
        let (mut cluster, mut mw, f) = setup(32 * KIB);
        let p1 = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
        assert_eq!(tiers_of(&p1), vec![Tier::CServers]);
        let p2 = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, MIB, 32 * KIB));
        assert_eq!(tiers_of(&p2), vec![Tier::DServers]);
        assert_eq!(mw.metrics().admission_denied_space, 1);
        assert_eq!(mw.metrics().writes_to_disk, 1);
    }

    #[test]
    fn clean_lru_space_is_reused() {
        let (mut cluster, mut mw, f) = setup(32 * KIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
        // Flush the dirty extent so it becomes clean.
        let mut plans = Vec::new();
        mw.build_flushes(&mut cluster, SimTime::ZERO, &mut plans);
        assert_eq!(plans.len(), 1);
        let tag = plans[0].tag;
        mw.on_plan_complete(&mut cluster, SimTime::ZERO, tag);
        assert_eq!(mw.dmt().dirty_bytes(), 0);
        // A new critical write now evicts the clean extent and is admitted.
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, MIB, 32 * KIB));
        assert_eq!(tiers_of(&plan), vec![Tier::CServers]);
        assert_eq!(mw.metrics().evictions, 1);
        assert_eq!(mw.metrics().evicted_bytes, 32 * KIB);
        // The evicted range now misses.
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 32 * KIB));
        assert_eq!(tiers_of(&plan), vec![Tier::DServers]);
    }

    #[test]
    fn inflight_reads_pin_extents_against_eviction() {
        // Regression test for a data-loss race found by the equivalence
        // property suite: a clean extent referenced by a queued read must
        // not be evicted (the read would return freed space).
        let (mut cluster, mut mw, f) = setup(32 * KIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
        // Make it clean via a flush cycle.
        let mut plans = Vec::new();
        mw.build_flushes(&mut cluster, SimTime::ZERO, &mut plans);
        let tag = plans[0].tag;
        mw.on_plan_complete(&mut cluster, SimTime::ZERO, tag);
        assert_eq!(mw.dmt().dirty_bytes(), 0);
        // A read of the cached range is now "in flight" (plan issued, not
        // yet complete).
        let read_plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 32 * KIB));
        assert_ne!(read_plan.tag, 0, "read plans carry an unpin action");
        // A critical write elsewhere wants space; the only clean extent is
        // pinned, so admission must FAIL (spill to DServers), not evict.
        let w = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &write_req(f, 4 * MIB, 32 * KIB),
        );
        assert_eq!(tiers_of(&w), vec![Tier::DServers]);
        assert_eq!(mw.metrics().evictions, 0, "pinned extent survived");
        assert_eq!(mw.dmt().mapped_bytes(), 32 * KIB);
        // Once the read completes, the pin lifts and eviction proceeds.
        mw.on_plan_complete(&mut cluster, SimTime::from_secs(1), read_plan.tag);
        let w = mw.plan_io(
            &mut cluster,
            SimTime::from_secs(1),
            &write_req(f, 8 * MIB, 32 * KIB),
        );
        assert_eq!(tiers_of(&w), vec![Tier::CServers]);
        assert_eq!(mw.metrics().evictions, 1);
    }

    #[test]
    fn rebuilder_flush_cycle_marks_clean() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        let poll = mw.poll_background(&mut cluster, SimTime::ZERO);
        assert_eq!(poll.plans.len(), 1);
        assert!(poll.work_pending);
        let plan = &poll.plans[0];
        // Flush = background read from CServers, then background write to D.
        assert_eq!(plan.phases.len(), 2);
        assert_eq!(plan.phases[0][0].tier, Tier::CServers);
        assert_eq!(plan.phases[0][0].priority, Priority::Background);
        assert_eq!(plan.phases[1][0].tier, Tier::DServers);
        // A second poll must not re-issue the in-flight flush.
        let poll2 = mw.poll_background(&mut cluster, SimTime::from_secs(1));
        assert!(poll2.plans.is_empty());
        assert!(poll2.work_pending);
        mw.on_plan_complete(&mut cluster, SimTime::from_secs(2), plan.tag);
        assert_eq!(mw.dmt().dirty_bytes(), 0);
        assert_eq!(mw.metrics().flushes, 1);
        // The clean transition's journal record drains on the next wake...
        let poll3 = mw.poll_background(&mut cluster, SimTime::from_secs(3));
        assert_eq!(poll3.plans.len(), 1, "journal drain only");
        assert!(poll3.plans[0]
            .phases
            .iter()
            .flatten()
            .all(|op| op.app_offset.is_none()));
        // ...after which the Rebuilder is fully idle.
        let poll4 = mw.poll_background(&mut cluster, SimTime::from_secs(4));
        assert!(poll4.plans.is_empty());
        assert!(!poll4.work_pending, "everything clean and settled");
    }

    #[test]
    fn rebuilder_fetch_cycle_caches_flagged_reads() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
        assert_eq!(mw.cdt().flagged(10).len(), 1);
        let poll = mw.poll_background(&mut cluster, SimTime::ZERO);
        assert_eq!(poll.plans.len(), 1);
        let plan = &poll.plans[0];
        assert_eq!(plan.phases.len(), 2);
        assert_eq!(plan.phases[0][0].tier, Tier::DServers);
        assert_eq!(plan.phases[0][0].kind, IoKind::Read);
        assert_eq!(plan.phases[1][0].tier, Tier::CServers);
        assert_eq!(plan.phases[1][0].kind, IoKind::Write);
        mw.on_plan_complete(&mut cluster, SimTime::from_secs(1), plan.tag);
        // Mapped clean; the C_flag is cleared; a re-read now hits.
        assert_eq!(mw.dmt().mapped_bytes(), 16 * KIB);
        assert_eq!(mw.dmt().dirty_bytes(), 0);
        assert!(mw.cdt().flagged(10).is_empty());
        let plan = mw.plan_io(
            &mut cluster,
            SimTime::from_secs(2),
            &read_req(f, 0, 16 * KIB),
        );
        assert_eq!(tiers_of(&plan), vec![Tier::CServers]);
        assert_eq!(mw.metrics().read_full_hits, 1);
    }

    #[test]
    fn force_miss_mode_never_redirects() {
        let mut cluster = Cluster::paper_testbed_small(9);
        let mut mw = S4dCache::new(
            S4dConfig::new(64 * MIB).with_force_miss(true),
            params_small(),
        );
        let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
        let w = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        assert_eq!(tiers_of(&w), vec![Tier::DServers]);
        let r = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
        assert_eq!(tiers_of(&r), vec![Tier::DServers]);
        // Bookkeeping still ran (the overhead the paper measures).
        assert_eq!(mw.metrics().evaluated, 2);
        assert!(!w.lead_in.is_zero());
        let poll = mw.poll_background(&mut cluster, SimTime::ZERO);
        assert!(poll.plans.is_empty());
    }

    #[test]
    fn never_admit_policy_behaves_like_stock() {
        let mut cluster = Cluster::paper_testbed_small(9);
        let mut mw = S4dCache::new(
            S4dConfig::new(64 * MIB).with_admission(AdmissionPolicy::NeverAdmit),
            params_small(),
        );
        let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
        let w = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        assert_eq!(tiers_of(&w), vec![Tier::DServers]);
        assert_eq!(mw.metrics().critical, 0);
        assert!(mw.cdt().is_empty());
    }

    #[test]
    fn always_admit_caches_large_writes_too() {
        let mut cluster = Cluster::paper_testbed_small(9);
        let mut mw = S4dCache::new(
            S4dConfig::new(64 * MIB).with_admission(AdmissionPolicy::AlwaysAdmit),
            params_small(),
        );
        let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
        let w = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 8 * MIB));
        assert_eq!(tiers_of(&w), vec![Tier::CServers]);
    }

    #[test]
    fn eager_fetch_ablation_adds_cache_fill_phase() {
        let mut cluster = Cluster::paper_testbed_small(9);
        let mut mw = S4dCache::new(
            S4dConfig::new(64 * MIB).with_eager_read_fetch(true),
            params_small(),
        );
        let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
        let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
        assert_eq!(plan.phases.len(), 2, "read phase + cache-fill phase");
        assert!(plan.tag != 0);
        mw.on_plan_complete(&mut cluster, SimTime::from_secs(1), plan.tag);
        assert_eq!(mw.dmt().mapped_bytes(), 16 * KIB);
        let again = mw.plan_io(
            &mut cluster,
            SimTime::from_secs(2),
            &read_req(f, 0, 16 * KIB),
        );
        assert_eq!(tiers_of(&again), vec![Tier::CServers]);
    }

    #[test]
    fn journal_group_commit_batches() {
        let mut cluster = Cluster::paper_testbed_small(9);
        let mut mw = S4dCache::new(
            S4dConfig::new(64 * MIB).with_journal_batch(4),
            params_small(),
        );
        let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
        // Each admitted write produces one DMT insert record; no journal op
        // until four records accumulate.
        for i in 0..3u64 {
            let plan = mw.plan_io(
                &mut cluster,
                SimTime::ZERO,
                &write_req(f, i * MIB, 16 * KIB),
            );
            assert!(
                plan.phases
                    .iter()
                    .flatten()
                    .all(|op| op.app_offset.is_some()),
                "no journal op before the batch fills"
            );
        }
        let plan = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &write_req(f, 3 * MIB, 16 * KIB),
        );
        let journal: Vec<_> = plan
            .phases
            .iter()
            .flatten()
            .filter(|op| op.app_offset.is_none())
            .collect();
        assert_eq!(journal.len(), 1, "batch full: one grouped journal write");
        assert_eq!(journal[0].len, 4 * DMT_RECORD_BYTES);
        // The Rebuilder persists stragglers with background priority.
        mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &write_req(f, 4 * MIB, 16 * KIB),
        );
        let poll = mw.poll_background(&mut cluster, SimTime::from_secs(1));
        let has_bg_journal = poll.plans.iter().any(|p| {
            p.phases.iter().flatten().any(|op| {
                op.app_offset.is_none()
                    && op.priority == Priority::Background
                    && op.kind == IoKind::Write
                    && op.file == FileId(0)
            })
        });
        assert!(has_bg_journal, "pending records drain on the next wake");
    }

    #[test]
    fn persistent_placement_never_flushes_and_fills_up() {
        let mut cluster = Cluster::paper_testbed_small(9);
        let mut mw = S4dCache::new(
            S4dConfig::new(32 * KIB).with_persistent_placement(true),
            params_small(),
        );
        let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
        // Fill the placement space.
        let p = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
        assert_eq!(tiers_of(&p), vec![Tier::CServers]);
        // The Rebuilder never flushes in placement mode; its only activity
        // is draining the pending journal records of the placement itself.
        let poll = mw.poll_background(&mut cluster, SimTime::ZERO);
        assert!(poll
            .plans
            .iter()
            .flat_map(|p| p.phases.iter().flatten())
            .all(|op| op.app_offset.is_none() && op.kind == IoKind::Write));
        let poll = mw.poll_background(&mut cluster, SimTime::from_secs(1));
        assert!(poll.plans.is_empty());
        assert!(!poll.work_pending);
        // A later critical write cannot be placed: space never frees.
        let p = mw.plan_io(
            &mut cluster,
            SimTime::from_secs(5),
            &write_req(f, MIB, 32 * KIB),
        );
        assert_eq!(tiers_of(&p), vec![Tier::DServers]);
        assert_eq!(mw.metrics().flushes, 0);
        assert_eq!(mw.metrics().evictions, 0);
        // Placed data keeps serving reads from the CServers.
        let p = mw.plan_io(
            &mut cluster,
            SimTime::from_secs(6),
            &read_req(f, 0, 32 * KIB),
        );
        assert_eq!(tiers_of(&p), vec![Tier::CServers]);
    }

    fn transient_failure(server: usize, attempts: u32) -> SubIoFailure {
        SubIoFailure {
            tier: Tier::CServers,
            server,
            kind: IoKind::Write,
            len: 16 * KIB,
            error: IoFault::Transient,
            attempts,
            overhead: false,
        }
    }

    fn offline_failure(server: usize) -> SubIoFailure {
        SubIoFailure {
            error: IoFault::Offline,
            ..transient_failure(server, 1)
        }
    }

    /// Quarantines CServer 0 through three consecutive transient errors.
    fn quarantine_server_zero(cluster: &mut Cluster, mw: &mut S4dCache, now: SimTime) {
        for attempts in 1..=3 {
            mw.on_io_error(cluster, now, &transient_failure(0, attempts));
        }
        assert!(mw.health().is_unhealthy(0, now));
    }

    #[test]
    fn transient_errors_retry_with_growing_backoff_then_quarantine() {
        let (mut cluster, mut mw, _f) = setup(64 * MIB);
        let base = mw.config().retry_base_delay;
        let d1 = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, 1));
        assert_eq!(d1, ErrorDirective::Retry { delay: base });
        let d2 = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, 2));
        assert_eq!(d2, ErrorDirective::Retry { delay: base * 2 });
        // Third consecutive failure crosses `quarantine_after`: give up.
        let d3 = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, 3));
        assert_eq!(d3, ErrorDirective::GiveUp);
        assert_eq!(mw.metrics().retries, 2);
        assert_eq!(mw.metrics().quarantines, 1);
        assert!(mw.health().is_unhealthy(0, SimTime::ZERO));
        // A success during probation clears the state entirely.
        mw.on_io_complete(
            Tier::CServers,
            0,
            IoKind::Write,
            16 * KIB,
            SimDuration::from_micros(200),
        );
        assert!(!mw.health().is_unhealthy(0, SimTime::ZERO));
    }

    #[test]
    fn backoff_is_capped() {
        let (_cluster, mw, _f) = setup(64 * MIB);
        assert_eq!(mw.retry_backoff(1), mw.config().retry_base_delay);
        assert_eq!(mw.retry_backoff(40), mw.config().retry_max_delay);
    }

    #[test]
    fn exhausted_attempts_give_up_without_quarantine() {
        let (mut cluster, mut mw, _f) = setup(64 * MIB);
        let max = mw.config().retry_max_attempts;
        let d = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, max));
        assert_eq!(d, ErrorDirective::GiveUp);
        assert!(!mw.health().is_unhealthy(0, SimTime::ZERO));
    }

    #[test]
    fn dserver_transient_errors_retry_too() {
        let (mut cluster, mut mw, _f) = setup(64 * MIB);
        let failure = SubIoFailure {
            tier: Tier::DServers,
            ..transient_failure(1, 1)
        };
        assert!(matches!(
            mw.on_io_error(&mut cluster, SimTime::ZERO, &failure),
            ErrorDirective::Retry { .. }
        ));
        // DServer failures never touch CServer health.
        assert!(!mw.health().any_unhealthy(SimTime::ZERO));
        let offline = SubIoFailure {
            tier: Tier::DServers,
            ..offline_failure(1)
        };
        assert_eq!(
            mw.on_io_error(&mut cluster, SimTime::ZERO, &offline),
            ErrorDirective::GiveUp
        );
    }

    #[test]
    fn quarantine_blocks_admission_and_serves_clean_reads_from_opfs() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        // A clean cached extent at 0 and a dirty one at 1 MiB.
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        let mut plans = Vec::new();
        mw.build_flushes(&mut cluster, SimTime::ZERO, &mut plans);
        let tag = plans[0].tag;
        mw.on_plan_complete(&mut cluster, SimTime::ZERO, tag);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, MIB, 16 * KIB));
        assert_eq!(mw.dmt().dirty_bytes(), 16 * KIB);

        let now = SimTime::from_secs(1);
        quarantine_server_zero(&mut cluster, &mut mw, now);
        // New admissions pause...
        let w = mw.plan_io(&mut cluster, now, &write_req(f, 2 * MIB, 16 * KIB));
        assert_eq!(tiers_of(&w), vec![Tier::DServers]);
        assert_eq!(mw.metrics().admission_denied_health, 1);
        // ...clean pieces fall back to OPFS...
        let r = mw.plan_io(&mut cluster, now, &read_req(f, 0, 16 * KIB));
        assert_eq!(tiers_of(&r), vec![Tier::DServers]);
        assert_eq!(r.tag, 0, "fallback reads pin nothing");
        assert_eq!(mw.metrics().fallback_reads, 1);
        assert_eq!(mw.metrics().fallback_bytes, 16 * KIB);
        // ...dirty pieces keep routing to the cache (only copy)...
        let r = mw.plan_io(&mut cluster, now, &read_req(f, MIB, 16 * KIB));
        assert_eq!(tiers_of(&r), vec![Tier::CServers]);
        // ...and critical read misses are not marked for fetching.
        let lazy_before = mw.metrics().lazy_marks;
        mw.plan_io(&mut cluster, now, &read_req(f, 4 * MIB, 16 * KIB));
        assert_eq!(mw.metrics().lazy_marks, lazy_before);

        // After the quarantine expires, routing and admission resume.
        let later = now + mw.config().quarantine_duration;
        let r = mw.plan_io(&mut cluster, later, &read_req(f, 0, 16 * KIB));
        assert_eq!(tiers_of(&r), vec![Tier::CServers]);
        let w = mw.plan_io(&mut cluster, later, &write_req(f, 3 * MIB, 16 * KIB));
        assert_eq!(tiers_of(&w), vec![Tier::CServers]);
    }

    #[test]
    fn fetches_pause_while_quarantined() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
        assert_eq!(mw.cdt().flagged(10).len(), 1);
        quarantine_server_zero(&mut cluster, &mut mw, SimTime::ZERO);
        let poll = mw.poll_background(&mut cluster, SimTime::from_secs(1));
        assert!(poll.plans.is_empty(), "no fetches into a sick tier");
        // The flag survives; fetching resumes after the quarantine.
        let later = SimTime::from_secs(1) + mw.config().quarantine_duration;
        mw.on_io_complete(
            Tier::CServers,
            0,
            IoKind::Write,
            16 * KIB,
            SimDuration::from_micros(200),
        );
        let poll = mw.poll_background(&mut cluster, later);
        assert_eq!(poll.plans.len(), 1);
    }

    #[test]
    fn offline_error_invalidates_lost_extents_once() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        // Clean extent at 0, dirty extent at 1 MiB.
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        let mut plans = Vec::new();
        mw.build_flushes(&mut cluster, SimTime::ZERO, &mut plans);
        let tag = plans[0].tag;
        mw.on_plan_complete(&mut cluster, SimTime::ZERO, tag);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, MIB, 16 * KIB));
        let available = mw.space().available();

        let now = SimTime::from_secs(1);
        let d = mw.on_io_error(&mut cluster, now, &offline_failure(0));
        assert_eq!(d, ErrorDirective::GiveUp);
        assert_eq!(mw.metrics().crash_invalidated_bytes, 16 * KIB);
        assert_eq!(mw.metrics().dirty_bytes_lost, 16 * KIB);
        assert_eq!(mw.metrics().quarantines, 1);
        assert_eq!(mw.dmt().mapped_bytes(), 0, "all lost extents removed");
        assert_eq!(mw.space().available(), available + 32 * KIB);
        assert!(mw.health().is_unhealthy(0, now));
        // The same outage is never accounted twice.
        mw.on_io_error(&mut cluster, now, &offline_failure(0));
        assert_eq!(mw.metrics().dirty_bytes_lost, 16 * KIB);
        // Reads now miss and go to OPFS — no stale cache routing.
        let r = mw.plan_io(&mut cluster, now, &read_req(f, 0, 16 * KIB));
        assert_eq!(tiers_of(&r), vec![Tier::DServers]);
    }

    #[test]
    fn failed_plan_releases_pins_and_markers() {
        let (mut cluster, mut mw, f) = setup(32 * KIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
        let mut plans = Vec::new();
        mw.build_flushes(&mut cluster, SimTime::ZERO, &mut plans);
        let flush_tag = plans[0].tag;
        // The flush plan fails: the extent stays dirty and is retried.
        mw.on_plan_failed(&mut cluster, SimTime::ZERO, flush_tag);
        assert_eq!(mw.dmt().dirty_bytes(), 32 * KIB);
        let mut plans = Vec::new();
        mw.build_flushes(&mut cluster, SimTime::from_secs(1), &mut plans);
        assert_eq!(plans.len(), 1, "flush re-issued after failure");
        let tag = plans[0].tag;
        mw.on_plan_complete(&mut cluster, SimTime::from_secs(1), tag);
        // A pinned read whose plan fails must still unpin.
        let r = mw.plan_io(
            &mut cluster,
            SimTime::from_secs(2),
            &read_req(f, 0, 32 * KIB),
        );
        assert_ne!(r.tag, 0);
        mw.on_plan_failed(&mut cluster, SimTime::from_secs(2), r.tag);
        let w = mw.plan_io(
            &mut cluster,
            SimTime::from_secs(3),
            &write_req(f, MIB, 32 * KIB),
        );
        assert_eq!(tiers_of(&w), vec![Tier::CServers], "eviction unblocked");
    }

    #[test]
    fn flush_on_risk_floods_dirty_data() {
        let mut cluster = Cluster::paper_testbed_small(9);
        let mut mw = S4dCache::new(
            S4dConfig::new(64 * MIB).with_flush_on_risk(true),
            params_small(),
        );
        // Keep the per-wake trickle tiny so the flood is observable.
        mw.config.max_flush_per_wake = 1;
        let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
        for i in 0..4u64 {
            // Non-adjacent extents so they cannot merge into one group.
            mw.plan_io(
                &mut cluster,
                SimTime::ZERO,
                &write_req(f, i * MIB, 16 * KIB),
            );
        }
        let mut plans = Vec::new();
        mw.build_flushes(&mut cluster, SimTime::ZERO, &mut plans);
        assert_eq!(plans.len(), 1, "healthy tier: trickle of one per wake");
        // One failure marks the tier at risk: everything dirty flushes.
        mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, 1));
        let mut plans = Vec::new();
        mw.build_flushes(&mut cluster, SimTime::ZERO, &mut plans);
        assert_eq!(plans.len(), 3, "at risk: all remaining dirty extents");
    }

    #[test]
    fn crashed_flush_in_flight_does_not_corrupt_source_file() {
        let (mut cluster, mut mw, f) = setup(64 * MIB);
        mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
        let mut plans = Vec::new();
        mw.build_flushes(&mut cluster, SimTime::ZERO, &mut plans);
        let tag = plans[0].tag;
        // The CServer crashes while the flush is in flight; the extent is
        // invalidated and its space handed back.
        mw.on_io_error(&mut cluster, SimTime::from_secs(1), &offline_failure(0));
        assert_eq!(mw.metrics().dirty_bytes_lost, 16 * KIB);
        // The flush completion then arrives; it must notice the mapping is
        // gone and not copy reallocated/wiped space over the original.
        mw.on_plan_complete(&mut cluster, SimTime::from_secs(2), tag);
        assert_eq!(mw.dmt().mapped_bytes(), 0);
        assert!(!mw.inflight_flush.contains(&(f, 0)));
    }

    #[test]
    fn open_creates_cache_file_and_journal() {
        let (cluster, mw, f) = setup(64 * MIB);
        assert!(mw.cache_file_of.contains_key(&f));
        assert!(cluster.cpfs().open("data.cache").is_ok());
        assert!(cluster.cpfs().open("__dmt_journal").is_ok());
        assert_eq!(mw.name(), "s4d");
    }
}
