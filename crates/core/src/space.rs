//! CServer cache-space management.
//!
//! Tracks how much of the configured cache capacity is in use, hands out
//! extents within per-original-file cache files, and recycles space freed
//! by eviction. Allocation never fails on fragmentation: a request may be
//! satisfied by several non-contiguous pieces (each becomes its own DMT
//! extent), so the only failure mode is genuine lack of capacity.

use std::collections::HashMap;

use s4d_pfs::FileId;

/// One allocated piece within a cache file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocPiece {
    /// Offset within the cache file.
    pub c_offset: u64,
    /// Piece length.
    pub len: u64,
}

/// Cache-space allocator over the CServers.
#[derive(Debug, Clone)]
pub struct SpaceManager {
    capacity: u64,
    allocated: u64,
    /// Per cache file: next fresh (never-used) offset.
    bump: HashMap<FileId, u64>,
    /// Per cache file: freed extents available for reuse.
    free: HashMap<FileId, Vec<(u64, u64)>>,
    alloc_ops: u64,
    free_ops: u64,
    over_releases: u64,
}

impl SpaceManager {
    /// Creates a manager over `capacity` bytes of total cache space.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        SpaceManager {
            capacity,
            allocated: 0,
            bump: HashMap::new(),
            free: HashMap::new(),
            alloc_ops: 0,
            free_ops: 0,
            over_releases: 0,
        }
    }

    /// Total capacity, bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Bytes still available without eviction.
    pub fn available(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// `(allocations, frees)` performed, for reports.
    pub fn churn(&self) -> (u64, u64) {
        (self.alloc_ops, self.free_ops)
    }

    /// True if `len` more bytes fit without eviction.
    pub fn fits(&self, len: u64) -> bool {
        len <= self.available()
    }

    /// Allocates `len` bytes in `c_file`, reusing freed extents first and
    /// extending the file otherwise. Returns the pieces (file order), or
    /// `None` if capacity is insufficient — the caller then evicts clean
    /// space and retries, or falls back to DServers.
    pub fn alloc(&mut self, c_file: FileId, len: u64) -> Option<Vec<AllocPiece>> {
        if len == 0 || !self.fits(len) {
            return if len == 0 { Some(Vec::new()) } else { None };
        }
        let mut pieces = Vec::new();
        let mut remaining = len;
        let free = self.free.entry(c_file).or_default();
        while remaining > 0 {
            match free.pop() {
                Some((off, flen)) => {
                    let take = flen.min(remaining);
                    pieces.push(AllocPiece {
                        c_offset: off,
                        len: take,
                    });
                    if take < flen {
                        free.push((off + take, flen - take));
                    }
                    remaining -= take;
                }
                None => {
                    let bump = self.bump.entry(c_file).or_insert(0);
                    pieces.push(AllocPiece {
                        c_offset: *bump,
                        len: remaining,
                    });
                    *bump += remaining;
                    remaining = 0;
                }
            }
        }
        self.allocated += len;
        self.alloc_ops += 1;
        Some(pieces)
    }

    /// Rebuilds allocator state from the live extents of a recovered DMT.
    ///
    /// Each cache file's bump pointer restarts past its highest recovered
    /// extent; space between recovered extents is not returned to the free
    /// lists (post-recovery fragmentation is reclaimed as extents are
    /// evicted), so the allocator can never hand out a live range.
    ///
    /// # Panics
    ///
    /// Panics if the recovered extents exceed `capacity`.
    pub fn rebuild(capacity: u64, extents: impl Iterator<Item = (FileId, u64, u64)>) -> Self {
        let mut s = SpaceManager::new(capacity);
        for (c_file, c_offset, len) in extents {
            s.allocated += len;
            let bump = s.bump.entry(c_file).or_insert(0);
            *bump = (*bump).max(c_offset + len);
        }
        assert!(
            s.allocated <= capacity,
            "recovered extents ({}) exceed capacity ({capacity})",
            s.allocated
        );
        s
    }

    /// Returns an extent to the pool (after eviction or file deletion).
    ///
    /// A release that cannot correspond to a live allocation — more
    /// bytes than are currently allocated, a range beyond the file's
    /// bump frontier, or overlap with an extent already on the free
    /// list — is an accounting bug in the caller (a double or
    /// over-release). Such a release is counted (see
    /// [`SpaceManager::over_releases`], surfaced as the
    /// `space_over_releases` metric) and dropped without freeing, so
    /// the allocator can never hand the same range to two owners; the
    /// bytes are leaked instead, the recoverable direction.
    pub fn release(&mut self, c_file: FileId, c_offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let within_bump = c_offset
            .checked_add(len)
            .is_some_and(|end| end <= self.bump.get(&c_file).copied().unwrap_or(0));
        let no_free_overlap = self.free.get(&c_file).is_none_or(|fl| {
            fl.iter()
                .all(|&(off, flen)| c_offset + len <= off || off + flen <= c_offset)
        });
        if len > self.allocated || !within_bump || !no_free_overlap {
            self.over_releases += 1;
            return;
        }
        self.allocated -= len;
        self.free.entry(c_file).or_default().push((c_offset, len));
        self.free_ops += 1;
    }

    /// Releases that failed the double/over-release accounting check and
    /// were dropped (must stay 0 in a correct run).
    pub fn over_releases(&self) -> u64 {
        self.over_releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const CF: FileId = FileId(9);

    #[test]
    fn fresh_allocations_bump() {
        let mut s = SpaceManager::new(1000);
        let a = s.alloc(CF, 100).unwrap();
        assert_eq!(
            a,
            vec![AllocPiece {
                c_offset: 0,
                len: 100
            }]
        );
        let b = s.alloc(CF, 50).unwrap();
        assert_eq!(
            b,
            vec![AllocPiece {
                c_offset: 100,
                len: 50
            }]
        );
        assert_eq!(s.allocated(), 150);
        assert_eq!(s.available(), 850);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut s = SpaceManager::new(100);
        assert!(s.alloc(CF, 60).is_some());
        assert!(s.alloc(CF, 60).is_none(), "only 40 left");
        assert!(s.fits(40));
        assert!(!s.fits(41));
        assert!(s.alloc(CF, 40).is_some());
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn released_space_is_reused_possibly_fragmented() {
        let mut s = SpaceManager::new(100);
        s.alloc(CF, 100).unwrap();
        s.release(CF, 10, 20);
        s.release(CF, 50, 20);
        assert_eq!(s.allocated(), 60);
        let pieces = s.alloc(CF, 30).unwrap();
        // 30 bytes out of two 20-byte holes: must be 2 pieces.
        assert_eq!(pieces.len(), 2);
        let total: u64 = pieces.iter().map(|p| p.len).sum();
        assert_eq!(total, 30);
        assert_eq!(s.allocated(), 90);
    }

    #[test]
    fn zero_len_alloc_is_empty() {
        let mut s = SpaceManager::new(10);
        assert_eq!(s.alloc(CF, 0).unwrap(), Vec::new());
        s.release(CF, 0, 0);
        assert_eq!(s.allocated(), 0);
    }

    #[test]
    fn distinct_files_have_distinct_spaces() {
        let mut s = SpaceManager::new(1000);
        let a = s.alloc(FileId(1), 10).unwrap();
        let b = s.alloc(FileId(2), 10).unwrap();
        assert_eq!(a[0].c_offset, 0);
        assert_eq!(b[0].c_offset, 0, "each cache file starts at zero");
    }

    #[test]
    fn churn_counters() {
        let mut s = SpaceManager::new(100);
        s.alloc(CF, 10).unwrap();
        s.release(CF, 0, 10);
        assert_eq!(s.churn(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        SpaceManager::new(0);
    }

    #[test]
    fn double_and_over_releases_are_counted_not_applied() {
        let mut s = SpaceManager::new(100);
        s.alloc(CF, 40).unwrap();
        // Legitimate release works.
        s.release(CF, 0, 10);
        assert_eq!(s.allocated(), 30);
        assert_eq!(s.over_releases(), 0);
        // Double release of the same range: counted, not freed again.
        s.release(CF, 0, 10);
        assert_eq!(s.allocated(), 30, "double release must not free twice");
        assert_eq!(s.over_releases(), 1);
        // Partial overlap with a free extent is also a double release.
        s.release(CF, 5, 10);
        assert_eq!(s.over_releases(), 2);
        // Releasing more than is allocated in total.
        s.release(CF, 10, 31);
        assert_eq!(s.over_releases(), 3);
        assert_eq!(s.allocated(), 30);
        // Releasing a range past the bump frontier (never handed out).
        s.release(CF, 90, 5);
        assert_eq!(s.over_releases(), 4);
        // Releasing in a file that never allocated anything.
        s.release(FileId(77), 0, 1);
        assert_eq!(s.over_releases(), 5);
        // The allocator still works and never double-hands space.
        let pieces = s.alloc(CF, 20).unwrap();
        let total: u64 = pieces.iter().map(|p| p.len).sum();
        assert_eq!(total, 20);
        assert_eq!(s.allocated(), 50);
    }

    #[test]
    fn rebuild_resumes_past_recovered_extents() {
        let extents = vec![(CF, 0u64, 30u64), (CF, 50, 20), (FileId(2), 10, 5)];
        let mut s = SpaceManager::rebuild(100, extents.into_iter());
        assert_eq!(s.allocated(), 55);
        // New allocations in CF start past offset 70.
        let a = s.alloc(CF, 10).unwrap();
        assert_eq!(a[0].c_offset, 70);
        // And in file 2 past offset 15.
        let b = s.alloc(FileId(2), 10).unwrap();
        assert_eq!(b[0].c_offset, 15);
    }

    #[test]
    #[should_panic(expected = "exceed capacity")]
    fn rebuild_rejects_overflow() {
        SpaceManager::rebuild(10, vec![(CF, 0u64, 20u64)].into_iter());
    }

    proptest! {
        /// Allocated bytes always equal the sum of live pieces, never
        /// exceed capacity, and pieces returned by a single alloc never
        /// overlap each other or previously live pieces.
        #[test]
        fn prop_no_overlap_and_conservation(
            ops in proptest::collection::vec((1u64..64, any::<bool>()), 1..60)
        ) {
            let mut s = SpaceManager::new(512);
            // live pieces as (offset, len), kept sorted for overlap checks
            let mut live: Vec<AllocPiece> = Vec::new();
            for (len, do_free) in ops {
                if do_free && !live.is_empty() {
                    let p = live.swap_remove(0);
                    s.release(CF, p.c_offset, p.len);
                } else if let Some(pieces) = s.alloc(CF, len) {
                    for p in pieces {
                        // No overlap with anything live.
                        for q in &live {
                            let disjoint = p.c_offset + p.len <= q.c_offset
                                || q.c_offset + q.len <= p.c_offset;
                            prop_assert!(disjoint, "overlap {:?} vs {:?}", p, q);
                        }
                        live.push(p);
                    }
                }
                let live_total: u64 = live.iter().map(|p| p.len).sum();
                prop_assert_eq!(s.allocated(), live_total);
                prop_assert!(s.allocated() <= s.capacity());
            }
        }
    }
}
