//! Fault handling: retry/backoff directives, latency observation, and
//! CServer crash invalidation.
//!
//! The decision bodies behind `Middleware::on_io_error` and
//! `on_io_complete` live here, next to [`S4dCache::handle_crash`] — the
//! one failure path that mutates cache metadata (and therefore goes
//! through the durability engine's journal-before-discard handle).

use s4d_cost::{t_cservers, SmMode};
use s4d_mpiio::{Cluster, ErrorDirective, SubIoFailure, Tier};
use s4d_pfs::{FileId, IoFault};
use s4d_sim::{SimDuration, SimTime};

use crate::layer::S4dCache;

impl S4dCache {
    /// Capped exponential backoff for attempt number `attempts` (≥ 1).
    pub(crate) fn retry_backoff(&self, attempts: u32) -> SimDuration {
        let exp = attempts.saturating_sub(1).min(20);
        let base = self.config.retry_base_delay.as_secs_f64();
        let delay = base * (1u64 << exp) as f64;
        SimDuration::from_secs_f64(delay.min(self.config.retry_max_delay.as_secs_f64()))
    }

    /// Applies a CServer hard crash to the cache metadata: every extent
    /// with bytes on the lost server is invalidated. Clean extents are a
    /// pure cache miss afterwards (OPFS still has the data); dirty
    /// extents are genuine data loss and are surfaced as such. Runs once
    /// per outage (re-armed when the server completes an op again).
    pub(crate) fn handle_crash(&mut self, cluster: &mut Cluster, server: usize, now: SimTime) {
        self.ensure_health(cluster);
        let until = now + self.config.quarantine_duration;
        if self.health.quarantine(server, now, until) {
            self.metrics.quarantines += 1;
        }
        if !self.health.claim_crash_handling(server) {
            return;
        }
        let layout = cluster.cpfs().layout();
        let stripe = layout.stripe_size();
        let n = layout.server_count();
        let mut doomed: Vec<(FileId, u64, u64, FileId, u64, bool)> = self
            .plane
            .iter_extents()
            .filter(|(_, _, e)| {
                let first = e.c_offset / stripe;
                let last = (e.c_offset + e.len - 1) / stripe;
                last - first + 1 >= n as u64
                    || (first..=last).any(|k| (k % n as u64) as usize == server)
            })
            .map(|(f, o, e)| (f, o, e.len, e.c_file, e.c_offset, e.dirty))
            .collect();
        doomed.sort_unstable_by_key(|&(f, o, ..)| (f.0, o));
        if doomed.is_empty() {
            return;
        }
        for &(file, d_off, len, _, _, dirty) in &doomed {
            if dirty {
                self.metrics.dirty_bytes_lost += len;
            } else {
                self.metrics.crash_invalidated_bytes += len;
            }
            // `remove` journals a Remove record, so recovery agrees.
            self.plane.remove(file, d_off);
        }
        // The Removes must be durable before the bytes go away: recovering
        // a mapping to discarded space would serve garbage. (Orphaned bytes
        // from the reverse order are merely swept and discarded.)
        let Some(proof) = self.dur.append_journal_sync(
            cluster,
            &mut self.plane,
            &self.config,
            &mut self.metrics,
            &[],
        ) else {
            // Journal stalled (ENOSPC / media error): the extents are
            // already invalidated in memory, but until their Removes are
            // durable the cache ranges may be neither discarded nor
            // released for reuse (a crash would recover the old mapping
            // over fresh bytes). Park the cleanup; `poll_background`
            // finishes it once the stall clears.
            let router = self.plane.router();
            self.stalled_discards.extend(doomed.iter().map(
                |&(file, d_off, len, c_file, c_off, _)| {
                    (router.shard_of(file, d_off), c_file, c_off, len)
                },
            ));
            return;
        };
        for &(file, d_off, len, c_file, c_off, _) in &doomed {
            let shard = self.plane.router().shard_of(file, d_off);
            self.plane.release(shard, c_file, c_off, len);
            self.dur.discard_cache(cluster, &proof, c_file, c_off, len);
        }
    }

    /// The `Middleware::on_io_error` decision: retry with backoff, give
    /// up, or (for an offline CServer) invalidate and give up.
    pub(crate) fn error_directive(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        failure: &SubIoFailure,
    ) -> ErrorDirective {
        if failure.tier == Tier::DServers {
            // OPFS is the durability root and has no health machinery
            // here: ride out transient errors with backoff, and let an
            // outage fail the plan so the runner re-plans it later.
            return match failure.error {
                IoFault::Transient if failure.attempts < self.config.retry_max_attempts => {
                    self.metrics.retries += 1;
                    ErrorDirective::Retry {
                        delay: self.retry_backoff(failure.attempts),
                    }
                }
                _ => ErrorDirective::GiveUp,
            };
        }
        self.ensure_health(cluster);
        // The failed attempt is settled either way; a granted retry
        // re-opens the depth accounting when it is re-dispatched.
        self.health.on_settle(failure.server);
        match failure.error {
            IoFault::Offline => {
                // An offline CServer is a crash window: its stores are
                // gone. Quarantine it and invalidate every extent it held
                // before anything re-plans against the stale mapping.
                self.handle_crash(cluster, failure.server, now);
                ErrorDirective::GiveUp
            }
            IoFault::NoSpace => {
                // The server is healthy, its SSD is just full: retrying
                // cannot help within this request's lifetime. Give up so
                // the runner re-plans; admission control degrades new
                // writes to OPFS while the exhaustion lasts.
                self.metrics.nospace_failures += 1;
                ErrorDirective::GiveUp
            }
            IoFault::Media => {
                // A media error is permanent for the sector: retrying the
                // same range is futile, and a device developing bad
                // sectors is suspect — count it against the server's
                // health so repeats quarantine it.
                self.metrics.media_failures += 1;
                if self.health.record_failure(
                    failure.server,
                    now,
                    self.config.quarantine_after,
                    self.config.quarantine_duration,
                ) {
                    self.metrics.quarantines += 1;
                }
                ErrorDirective::GiveUp
            }
            IoFault::Transient => {
                if self.health.record_failure(
                    failure.server,
                    now,
                    self.config.quarantine_after,
                    self.config.quarantine_duration,
                ) {
                    self.metrics.quarantines += 1;
                }
                if self.health.is_unhealthy(failure.server, now)
                    || failure.attempts >= self.config.retry_max_attempts
                {
                    ErrorDirective::GiveUp
                } else {
                    self.metrics.retries += 1;
                    ErrorDirective::Retry {
                        delay: self.retry_backoff(failure.attempts),
                    }
                }
            }
        }
    }

    /// The `Middleware::on_io_complete` observation: feed the
    /// observed-over-predicted latency ratio into the health EWMA.
    pub(crate) fn record_latency(
        &mut self,
        tier: Tier,
        server: usize,
        len: u64,
        latency: SimDuration,
    ) {
        if tier != Tier::CServers {
            return;
        }
        self.health.ensure_servers(server + 1);
        // The completion settles the depth opened at dispatch.
        self.health.on_settle(server);
        // Observed-over-predicted latency feeds the degradation EWMA. The
        // prediction is the cost model's T_C for a request of this size;
        // the observation includes queueing, so the ratio is noisy — the
        // EWMA and a generous threshold absorb that.
        let predicted = t_cservers(self.evaluator.params(), 0, len, SmMode::Table2);
        let ratio = if predicted > 0.0 {
            latency.as_secs_f64() / predicted
        } else {
            1.0
        };
        self.health.record_success(server, ratio);
    }
}
