//! Deterministic crash-point injection for the middleware itself.
//!
//! PR 1 hardened the cache against *server* failures; this module is the
//! instrument for failing the **middleware**: a [`CrashFuse`] carries a
//! byte budget, and every durable effect the middleware produces — cache
//! data writes, journal appends, checkpoint installs, eviction discards,
//! flush and fetch copies — asks the fuse for permission *per byte*. When
//! the budget runs out mid-effect, only the affordable prefix is applied
//! and the fuse is dead: every later durable effect is suppressed
//! entirely. That models a power failure at an arbitrary byte boundary,
//! which is exactly the fault the paper's synchronous journaling (§III.D)
//! claims to survive.
//!
//! The torture harness first runs a workload with an [unlimited]
//! fuse, which records every durable step `(site, offset, len)`. The
//! recorded trace then defines the crash matrix: re-running the same
//! deterministic workload with the budget pointed at each step boundary
//! (and mid-step) crashes the middleware at every distinct site. Because
//! the workload and the cluster are deterministic, each budget reproduces
//! the same crash exactly.
//!
//! Only durable effects consult the fuse. In-memory bookkeeping continues
//! after death — the crashed middleware instance is discarded anyway, and
//! recovery reads nothing but the cluster's persisted bytes, so letting
//! the doomed instance finish its turn keeps the injection surface small
//! without weakening the model.
//!
//! [unlimited]: CrashFuse::unlimited

use std::cell::RefCell;
use std::rc::Rc;

/// Which durable effect a fuse charge belongs to.
///
/// Each variant is one crash *site* in the torture matrix: a place where
/// persisted state is mutated and a power failure would leave a torn or
/// missing effect for recovery to mend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrashSite {
    /// Application payload bytes written to cache or original files as
    /// part of a planned request.
    DataWrite,
    /// A group-committed journal append carried by a planned request
    /// (crashing here tears a journal frame).
    JournalWrite,
    /// A synchronous journal append outside any plan (eviction, flush
    /// intent, end-of-operation drain).
    SyncAppend,
    /// Discarding an evicted extent's cache bytes.
    EvictDiscard,
    /// Copying a flushed dirty extent from CServers to DServers.
    FlushCopy,
    /// Filling a fetched range from DServers into CServers.
    FetchFill,
    /// Writing a checkpoint snapshot into its slot file.
    CheckpointWrite,
    /// Truncating the journal after a checkpoint was installed.
    JournalTruncate,
    /// *During recovery*: truncating the undecodable journal suffix.
    RecoveryTruncate,
    /// *During recovery*: discarding a dropped (under-covered) extent's
    /// cache bytes.
    RecoveryDrop,
    /// *During recovery*: discarding orphaned cache bytes in the sweep.
    RecoverySweep,
}

/// One recorded durable step: site, cumulative byte offset at which the
/// step started, and its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashStep {
    /// The durable effect charged.
    pub site: CrashSite,
    /// Total bytes consumed by earlier steps when this one began.
    pub start: u64,
    /// Bytes this step charged.
    pub len: u64,
}

/// A byte-budgeted crash injector (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct CrashFuse {
    budget: Option<u64>,
    consumed: u64,
    dead: bool,
    steps: Vec<CrashStep>,
}

impl CrashFuse {
    /// A fuse that never blows; it records every durable step so a later
    /// run can target each one.
    pub fn unlimited() -> Self {
        CrashFuse::default()
    }

    /// A fuse that allows exactly `budget` durable bytes, then crashes.
    pub fn armed(budget: u64) -> Self {
        CrashFuse {
            budget: Some(budget),
            ..CrashFuse::default()
        }
    }

    /// Convenience: a shareable handle, as the middleware holds it.
    pub fn shared(self) -> Rc<RefCell<CrashFuse>> {
        Rc::new(RefCell::new(self))
    }

    /// Charges `len` bytes at `site`, returning how many may actually be
    /// applied. Anything short of `len` means the fuse died mid-step: the
    /// caller must apply exactly the returned prefix and nothing else.
    /// Once dead, every charge returns zero.
    pub fn consume(&mut self, site: CrashSite, len: u64) -> u64 {
        if self.dead {
            return 0;
        }
        self.steps.push(CrashStep {
            site,
            start: self.consumed,
            len,
        });
        let allowed = match self.budget {
            None => len,
            Some(b) => len.min(b.saturating_sub(self.consumed)),
        };
        self.consumed += allowed;
        if allowed < len {
            self.dead = true;
        }
        allowed
    }

    /// True once a charge was cut short: the simulated machine is off.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Total durable bytes allowed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The recorded durable steps, in execution order.
    pub fn steps(&self) -> &[CrashStep] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_records_without_dying() {
        let mut f = CrashFuse::unlimited();
        assert_eq!(f.consume(CrashSite::DataWrite, 100), 100);
        assert_eq!(f.consume(CrashSite::JournalWrite, 28), 28);
        assert!(!f.is_dead());
        assert_eq!(f.consumed(), 128);
        assert_eq!(
            f.steps(),
            &[
                CrashStep {
                    site: CrashSite::DataWrite,
                    start: 0,
                    len: 100
                },
                CrashStep {
                    site: CrashSite::JournalWrite,
                    start: 100,
                    len: 28
                },
            ]
        );
    }

    #[test]
    fn armed_fuse_tears_the_step_then_blocks_everything() {
        let mut f = CrashFuse::armed(150);
        assert_eq!(f.consume(CrashSite::DataWrite, 100), 100);
        // Mid-step death: only 50 of 80 bytes land.
        assert_eq!(f.consume(CrashSite::FlushCopy, 80), 50);
        assert!(f.is_dead());
        // Every later effect is suppressed entirely, and not recorded.
        assert_eq!(f.consume(CrashSite::SyncAppend, 28), 0);
        assert_eq!(f.steps().len(), 2);
        assert_eq!(f.consumed(), 150);
    }

    #[test]
    fn zero_budget_dies_on_first_nonempty_charge() {
        let mut f = CrashFuse::armed(0);
        assert_eq!(f.consume(CrashSite::EvictDiscard, 0), 0);
        assert!(!f.is_dead(), "an empty step cannot blow the fuse");
        assert_eq!(f.consume(CrashSite::EvictDiscard, 1), 0);
        assert!(f.is_dead());
    }

    #[test]
    fn exact_budget_survives() {
        let mut f = CrashFuse::armed(28);
        assert_eq!(f.consume(CrashSite::CheckpointWrite, 28), 28);
        assert!(!f.is_dead(), "a fully-affordable step is not a crash");
    }
}
