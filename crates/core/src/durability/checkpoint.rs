//! Checkpoint snapshots: the periodic DMT images that bound journal
//! replay.
//!
//! A checkpoint is one self-verifying blob — magic, sequence number, the
//! journal offset it covers, and an `Insert` (plus `Seal`) record per live
//! extent, closed by a CRC32 trailer over everything before it. Two slots
//! are written alternately ([`crate::names::CKPT_SLOT_A`]/`_B`), so a
//! crash mid-install loses at most the slot being written; recovery picks
//! the newest slot that decodes and replays only the journal tail past its
//! `tail_offset`. The codec lives here; the policy that decides *when* to
//! checkpoint (and the slot rotation) stays with the durability engine.

use crate::durability::journal::{crc32, decode_batch, FrameReader, JournalError, JournalRecord};
use crate::DMT_RECORD_BYTES;

/// Magic bytes opening every checkpoint snapshot.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"S4DSNAP1";
/// Fixed checkpoint header: magic + sequence + journal tail + record count.
pub const CHECKPOINT_HEADER_BYTES: usize = 32;

/// A decoded DMT checkpoint snapshot.
///
/// On-disk layout: [`CHECKPOINT_MAGIC`] (8 bytes), `covers_seq` u64 LE,
/// `tail_offset` u64 LE, record count u64 LE, `count` encoded
/// [`JournalRecord`] frames, then a CRC32 trailer over everything before
/// it. Decoding is all-or-nothing: a torn install fails the CRC and the
/// recovery falls back to the other slot. Bytes past the declared length
/// are ignored, so installing a shorter snapshot over a longer stale one
/// needs no truncation to stay valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotonic checkpoint sequence number (slot freshness arbiter).
    pub covers_seq: u64,
    /// Journal offset the snapshot covers: recovery replays only records
    /// at or past this offset on top of the snapshot.
    pub tail_offset: u64,
    /// The snapshot itself: one `Insert` (plus `Seal`, when the extent had
    /// a verified checksum) per live extent.
    pub records: Vec<JournalRecord>,
}

/// Failure to decode a checkpoint snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer is shorter than the declared snapshot.
    TooShort(usize),
    /// The magic bytes do not match [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The CRC32 trailer does not match the snapshot contents.
    BadChecksum {
        /// CRC32 recomputed over the snapshot.
        expected: u32,
        /// CRC32 stored in the trailer.
        found: u32,
    },
    /// A snapshot record frame failed to decode.
    BadRecord(JournalError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::TooShort(n) => write!(f, "checkpoint truncated at {n} bytes"),
            CheckpointError::BadMagic => write!(f, "checkpoint magic mismatch"),
            CheckpointError::BadChecksum { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: computed {expected:#010x}, stored {found:#010x}"
            ),
            CheckpointError::BadRecord(e) => write!(f, "checkpoint record invalid: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialises a checkpoint snapshot (see [`Checkpoint`] for the layout).
pub fn encode_checkpoint(covers_seq: u64, tail_offset: u64, records: &[JournalRecord]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(CHECKPOINT_HEADER_BYTES + records.len() * DMT_RECORD_BYTES as usize + 4);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&covers_seq.to_le_bytes());
    out.extend_from_slice(&tail_offset.to_le_bytes());
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.encode());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Deserialises a checkpoint snapshot, all-or-nothing.
///
/// # Errors
///
/// Returns [`CheckpointError`] when the buffer is shorter than the
/// declared snapshot, the magic or CRC do not match, or a record frame is
/// invalid. Trailing bytes beyond the declared length are ignored.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    if bytes.len() < CHECKPOINT_HEADER_BYTES + 4 {
        return Err(CheckpointError::TooShort(bytes.len()));
    }
    if bytes.get(..8) != Some(CHECKPOINT_MAGIC.as_slice()) {
        return Err(CheckpointError::BadMagic);
    }
    let mut header = FrameReader { buf: bytes, at: 8 };
    let covers_seq = header.u64();
    let tail_offset = header.u64();
    let count = header.u64();
    let body =
        (CHECKPOINT_HEADER_BYTES as u64).saturating_add(count.saturating_mul(DMT_RECORD_BYTES));
    let total = body.saturating_add(4);
    if (bytes.len() as u64) < total {
        return Err(CheckpointError::TooShort(bytes.len()));
    }
    let body = body as usize;
    let expected = crc32(bytes.get(..body).unwrap_or_default());
    let mut trailer = FrameReader {
        buf: bytes,
        at: body,
    };
    let found = trailer.u32();
    if expected != found {
        return Err(CheckpointError::BadChecksum { expected, found });
    }
    let records = decode_batch(bytes.get(CHECKPOINT_HEADER_BYTES..body).unwrap_or_default())
        .map_err(CheckpointError::BadRecord)?;
    Ok(Checkpoint {
        covers_seq,
        tail_offset,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use s4d_pfs::FileId;

    const F: FileId = FileId(3);
    const CF: FileId = FileId(9);

    proptest! {
        /// A checkpoint round-trips, and any single bit flip is detected.
        #[test]
        fn prop_checkpoint_roundtrip_and_bitflip(
            seq in 0u64..1000,
            tail in 0u64..(1 << 40),
            n in 0usize..8,
            flip in any::<u64>(),
        ) {
            let records: Vec<JournalRecord> = (0..n as u64)
                .map(|i| JournalRecord::Insert {
                    d_file: F, d_offset: i * 100, len: 50,
                    c_file: CF, c_offset: i * 50, dirty: i % 2 == 0,
                })
                .collect();
            let bytes = encode_checkpoint(seq, tail, &records);
            let ck = decode_checkpoint(&bytes).unwrap();
            prop_assert_eq!(ck.covers_seq, seq);
            prop_assert_eq!(ck.tail_offset, tail);
            prop_assert_eq!(&ck.records, &records);
            let mut corrupt = bytes.clone();
            let bit = (flip % (corrupt.len() as u64 * 8)) as usize;
            corrupt[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(decode_checkpoint(&corrupt).is_err(),
                "bit flip at {} went undetected", bit);
        }
    }

    #[test]
    fn checkpoint_ignores_trailing_stale_bytes() {
        let records = vec![JournalRecord::Insert {
            d_file: F,
            d_offset: 0,
            len: 64,
            c_file: CF,
            c_offset: 0,
            dirty: false,
        }];
        let mut bytes = encode_checkpoint(7, 1234, &records);
        // A shorter snapshot installed over a longer stale one leaves the
        // stale tail in place; decoding must not care.
        bytes.extend_from_slice(&[0xAB; 300]);
        let ck = decode_checkpoint(&bytes).unwrap();
        assert_eq!(ck.covers_seq, 7);
        assert_eq!(ck.records, records);
        // But a torn install (prefix only) is rejected.
        let full = encode_checkpoint(8, 99, &records);
        for cut in 0..full.len() {
            assert!(decode_checkpoint(&full[..cut]).is_err(), "cut {cut}");
        }
        assert!(matches!(
            decode_checkpoint(&[0u8; 64]),
            Err(CheckpointError::BadMagic)
        ));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::TooShort(3).to_string().contains('3'));
        assert!(CheckpointError::BadRecord(JournalError::BadTag(9))
            .to_string()
            .contains("tag 9"));
        assert!(CheckpointError::BadChecksum {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum"));
    }
}
