//! Per-shard append queues coalesced into group-committed journal batches.
//!
//! Each metadata shard appends its journal records to its own queue; when
//! any queue reaches the group-commit threshold, [`GroupCommitQueue::drain_all`]
//! coalesces *every* queue — in shard order, preserving per-queue order —
//! into one batch that the durability engine writes as a single journal
//! frame run with one fsync. That is the whole point of group commit: with
//! `N` shards filling at similar rates, one durable write carries roughly
//! `N ×` threshold records, multiplying appends-per-fsync without relaxing
//! durability (records are acked only after the batch lands).
//!
//! With one shard there is exactly one queue, `any_due` degenerates to a
//! plain length check, and `drain_all` returns records in the order they
//! were pushed — byte-identical journal output to the pre-shard engine.
//!
//! Shard tags are never written to disk: a record's owning shard is a pure
//! function of its durable key ([`JournalRecord::d_key`] through
//! [`ShardRouter::shard_of`]), so recovery and requeue re-derive the tag
//! from the record itself and the on-disk frame format is unchanged.

use std::collections::VecDeque;

use crate::journal::JournalRecord;
use crate::shard::ShardRouter;

/// Per-shard journal append queues feeding one group-committed batch.
#[derive(Debug)]
pub struct GroupCommitQueue {
    queues: Vec<VecDeque<JournalRecord>>,
}

impl GroupCommitQueue {
    /// Creates one queue per shard (a zero count is clamped to 1).
    pub fn new(shards: usize) -> Self {
        GroupCommitQueue {
            queues: (0..shards.max(1)).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Number of per-shard queues.
    pub fn shard_count(&self) -> usize {
        self.queues.len()
    }

    /// Appends a record to its shard's queue. An out-of-range shard index
    /// falls back to queue 0 rather than panicking — the router can never
    /// produce one, so this path only guards against a misconfigured
    /// caller.
    pub fn push(&mut self, shard: usize, record: JournalRecord) {
        let idx = if shard < self.queues.len() { shard } else { 0 };
        if let Some(q) = self.queues.get_mut(idx) {
            q.push_back(record);
        }
    }

    /// Appends a run of records to one shard's queue, preserving order.
    pub fn extend(&mut self, shard: usize, records: impl IntoIterator<Item = JournalRecord>) {
        for r in records {
            self.push(shard, r);
        }
    }

    /// Total records queued across all shards.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when no shard has queued records.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Length of the longest per-shard queue.
    pub fn max_queue_len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).max().unwrap_or(0)
    }

    /// True when any shard's queue has reached the group-commit threshold.
    /// With one shard this is exactly `len() >= threshold` — the pre-shard
    /// batching condition.
    pub fn any_due(&self, threshold: u64) -> bool {
        self.max_queue_len() as u64 >= threshold
    }

    /// Per-shard queue lengths, in shard order (bench occupancy probe).
    pub fn per_queue_lens(&self) -> Vec<usize> {
        self.queues.iter().map(VecDeque::len).collect()
    }

    /// Drains every queue into one batch: shard 0's records first, then
    /// shard 1's, and so on, each in append order. Deterministic by
    /// construction — no map iteration anywhere.
    pub fn drain_all(&mut self) -> Vec<JournalRecord> {
        let mut out = Vec::with_capacity(self.len());
        for q in &mut self.queues {
            out.extend(q.drain(..));
        }
        out
    }

    /// Requeues a failed batch at the *front* of the owning queues so the
    /// retry carries the same records ahead of anything pushed since.
    /// Iterating the batch in reverse and pushing each record to the front
    /// of its shard's queue restores every per-queue prefix in its
    /// original order, so a later [`GroupCommitQueue::drain_all`]
    /// reproduces the failed batch's record order exactly (replay order is
    /// preserved; no hole, no reordering).
    pub fn requeue_front(&mut self, records: Vec<JournalRecord>, router: &ShardRouter) {
        for r in records.into_iter().rev() {
            let (f, o) = r.d_key();
            let shard = router.shard_of(f, o);
            let idx = if shard < self.queues.len() { shard } else { 0 };
            if let Some(q) = self.queues.get_mut(idx) {
                q.push_front(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_pfs::FileId;

    fn rec(file: u64, offset: u64) -> JournalRecord {
        JournalRecord::SetClean {
            d_file: FileId(file),
            d_offset: offset,
        }
    }

    #[test]
    fn single_shard_is_a_plain_fifo() {
        let mut q = GroupCommitQueue::new(1);
        assert!(q.is_empty());
        q.push(0, rec(1, 10));
        q.push(0, rec(1, 20));
        q.push(0, rec(2, 30));
        assert_eq!(q.len(), 3);
        assert!(!q.any_due(4));
        assert!(q.any_due(3));
        assert_eq!(q.drain_all(), vec![rec(1, 10), rec(1, 20), rec(2, 30)]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_is_shard_order_then_append_order() {
        let mut q = GroupCommitQueue::new(3);
        q.push(2, rec(2, 1));
        q.push(0, rec(0, 1));
        q.push(2, rec(2, 2));
        q.push(1, rec(1, 1));
        assert_eq!(q.per_queue_lens(), vec![1, 1, 2]);
        assert_eq!(q.max_queue_len(), 2);
        assert_eq!(
            q.drain_all(),
            vec![rec(0, 1), rec(1, 1), rec(2, 1), rec(2, 2)]
        );
    }

    #[test]
    fn any_due_fires_on_the_longest_queue() {
        let mut q = GroupCommitQueue::new(4);
        q.extend(3, [rec(3, 1), rec(3, 2), rec(3, 3)]);
        q.push(0, rec(0, 1));
        assert!(!q.any_due(4));
        q.push(3, rec(3, 4));
        assert!(q.any_due(4));
    }

    #[test]
    fn requeue_then_drain_reproduces_the_failed_batch() {
        // Router: stripe 10, 2 shards — file 0 offsets 0..10 -> shard 0,
        // 10..20 -> shard 1.
        let router = ShardRouter::new(2, 10);
        let mut q = GroupCommitQueue::new(2);
        q.push(0, rec(0, 0));
        q.push(1, rec(0, 10));
        q.push(0, rec(0, 5));
        q.push(1, rec(0, 15));
        let batch = q.drain_all();
        assert_eq!(batch, vec![rec(0, 0), rec(0, 5), rec(0, 10), rec(0, 15)]);
        // New records arrive while the failed batch awaits its retry.
        q.push(0, rec(0, 7));
        q.requeue_front(batch.clone(), &router);
        let retry = q.drain_all();
        assert_eq!(&retry[..2], &batch[..2]);
        assert_eq!(retry[2], rec(0, 7), "newer record follows the requeue");
        assert_eq!(&retry[3..], &batch[2..]);
    }

    #[test]
    fn out_of_range_shard_falls_back_to_queue_zero() {
        let mut q = GroupCommitQueue::new(2);
        q.push(9, rec(0, 1));
        assert_eq!(q.per_queue_lens(), vec![1, 0]);
    }
}
