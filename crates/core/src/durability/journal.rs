//! DMT journal records and crash recovery.
//!
//! The paper persists every Data Mapping Table change synchronously "in
//! order to survive power failures" (§III.D), storing records of six
//! four-byte fields in a Berkeley DB file on CServers. This module gives
//! the reproduction the same property *verifiably*: every DMT mutation
//! emits a fixed-size CRC32-framed [`JournalRecord`], and [`replay`]
//! reconstructs the mapping table (and, through
//! [`crate::SpaceManager::rebuild`], the cache-space allocator) from the
//! record stream alone. The crash-recovery integration tests run a
//! workload, "power-fail" the middleware, rebuild it from the journal, and
//! verify that every byte still reads back correctly.
//!
//! A crash can tear the final record (partial write) or storage can flip
//! bits anywhere in the stream. [`decode_prefix`] therefore recovers the
//! longest valid prefix: it stops at the first frame whose CRC or tag does
//! not verify and at a partial final frame, reporting what was dropped
//! instead of failing the whole recovery. Stopping (rather than skipping a
//! bad frame and continuing) is deliberate — later records can depend on
//! earlier ones (a skipped `Remove` followed by an overlapping `Insert`
//! would corrupt the table), while every *prefix* of the journal is a
//! consistent mapping by construction.

use s4d_pfs::FileId;
use serde::{Deserialize, Serialize};

use crate::{DMT_PAYLOAD_BYTES, DMT_RECORD_BYTES};

pub use super::checkpoint::{
    decode_checkpoint, encode_checkpoint, Checkpoint, CheckpointError, CHECKPOINT_HEADER_BYTES,
    CHECKPOINT_MAGIC,
};
pub use super::replay::{apply_record_tolerant, replay, replay_tolerant};

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // Const-initializer: evaluated at build time, where an
        // out-of-bounds index is a compile error — outside the runtime
        // panic rules by construction.
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`, as used for journal record framing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let e = CRC32_TABLE
            .get(((crc ^ u32::from(b)) & 0xFF) as usize)
            .copied()
            .unwrap_or(0); // masked to 0xFF, always < the 256-entry table
        crc = (crc >> 8) ^ e;
    }
    !crc
}

/// One persisted DMT mutation.
///
/// Encodes to exactly [`DMT_RECORD_BYTES`] (28) bytes: a 24-byte payload —
/// the record size the paper's §V.E.1 metadata-overhead analysis assumes —
/// followed by a CRC32 trailer over the payload. Field widths: file ids 24
/// bits, offsets 48 bits (256 TiB), lengths 32 bits (4 GiB per extent),
/// which comfortably cover the simulated deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A new extent mapping was created.
    Insert {
        /// Original file.
        d_file: FileId,
        /// Offset in the original file.
        d_offset: u64,
        /// Extent length.
        len: u64,
        /// Cache file.
        c_file: FileId,
        /// Offset in the cache file.
        c_offset: u64,
        /// Initial dirty flag.
        dirty: bool,
    },
    /// A range was overwritten in the cache: mark it dirty (splitting
    /// boundary extents exactly as the live table did).
    SetDirty {
        /// Original file.
        d_file: FileId,
        /// Range offset.
        d_offset: u64,
        /// Range length.
        len: u64,
    },
    /// A flush completed: the extent starting here is clean.
    SetClean {
        /// Original file.
        d_file: FileId,
        /// Extent start.
        d_offset: u64,
    },
    /// An extent was evicted.
    Remove {
        /// Original file.
        d_file: FileId,
        /// Extent start.
        d_offset: u64,
    },
    /// The extent's cached bytes were verified: a content checksum was
    /// attached to the mapping. The length is part of the record so a
    /// seal never applies to an extent that was split or re-created with
    /// different bounds after the seal was journaled.
    Seal {
        /// Original file.
        d_file: FileId,
        /// Extent start.
        d_offset: u64,
        /// CRC32 of the extent's cached bytes.
        checksum: u32,
        /// Extent length the checksum covers.
        len: u64,
    },
    /// The Rebuilder is about to flush the dirty run starting here; the
    /// matching `SetClean` records are the commit. An intent without a
    /// commit after recovery means the flush may have partially reached
    /// DServers — harmless, because flushing re-writes the same bytes and
    /// the extents stay dirty until a commit lands.
    FlushIntent {
        /// Original file.
        d_file: FileId,
        /// First extent of the flush group.
        d_offset: u64,
    },
}

/// Failure to decode a journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// The record tag byte is not a known kind.
    BadTag(u8),
    /// The buffer is not exactly [`DMT_RECORD_BYTES`] long.
    BadLength(usize),
    /// The CRC32 trailer does not match the payload (bit-flip in flight or
    /// at rest).
    BadChecksum {
        /// CRC32 recomputed over the payload.
        expected: u32,
        /// CRC32 stored in the frame trailer.
        found: u32,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::BadTag(t) => write!(f, "unknown journal record tag {t}"),
            JournalError::BadLength(n) => {
                write!(
                    f,
                    "journal record must be {DMT_RECORD_BYTES} bytes, got {n}"
                )
            }
            JournalError::BadChecksum { expected, found } => write!(
                f,
                "journal record checksum mismatch: computed {expected:#010x}, stored {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// Sequential little-endian writer over a fixed frame buffer.
///
/// All field widths in the on-disk layout are laid out back-to-back, so
/// encoding never needs random offsets; bounds are checked (a write past
/// the frame is truncated, which the encode/decode round-trip tests would
/// catch immediately) instead of panicking.
struct FrameWriter {
    buf: [u8; DMT_RECORD_BYTES as usize],
    at: usize,
}

impl FrameWriter {
    fn new() -> Self {
        FrameWriter {
            buf: [0u8; DMT_RECORD_BYTES as usize],
            at: 0,
        }
    }

    fn put(&mut self, bytes: &[u8]) {
        for (dst, src) in self.buf.iter_mut().skip(self.at).zip(bytes) {
            *dst = *src;
        }
        self.at += bytes.len();
    }

    fn put_u8(&mut self, v: u8) {
        self.put(&[v]);
    }

    fn put_u24(&mut self, v: u64) {
        debug_assert!(v < (1 << 24), "file id exceeds 24 bits");
        self.put((v as u32).to_le_bytes().get(..3).unwrap_or_default());
    }

    fn put_u32(&mut self, v: u32) {
        self.put(&v.to_le_bytes());
    }

    fn put_u48(&mut self, v: u64) {
        debug_assert!(v < (1 << 48), "offset exceeds 48 bits");
        self.put(v.to_le_bytes().get(..6).unwrap_or_default());
    }

    /// Seeks to `at` (the CRC trailer position).
    fn seek(&mut self, at: usize) {
        self.at = at;
    }
}

/// Sequential little-endian reader over a byte slice. Reads past the end
/// yield zero bytes — callers length-check the frame before decoding, so
/// that path is never taken on well-formed input and a truncated frame
/// fails its CRC rather than panicking. Shared with the checkpoint codec
/// ([`super::checkpoint`]), which frames its header the same way.
pub(super) struct FrameReader<'a> {
    pub(super) buf: &'a [u8],
    pub(super) at: usize,
}

impl FrameReader<'_> {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(self.buf.iter().skip(self.at)) {
            *dst = *src;
        }
        self.at += N;
        out
    }

    fn u8(&mut self) -> u8 {
        let [b] = self.take::<1>();
        b
    }

    fn u24(&mut self) -> u64 {
        let [a, b, c] = self.take::<3>();
        u64::from(a) | u64::from(b) << 8 | u64::from(c) << 16
    }

    pub(super) fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn u48(&mut self) -> u64 {
        let [a, b, c, d, e, f] = self.take::<6>();
        u64::from_le_bytes([a, b, c, d, e, f, 0, 0])
    }

    pub(super) fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }
}

impl JournalRecord {
    /// Serialises to the fixed on-disk layout.
    ///
    /// # Panics
    ///
    /// Debug-panics if a field exceeds its encoded width (file ids 24 bits,
    /// offsets 48 bits, lengths 32 bits).
    pub fn encode(&self) -> [u8; DMT_RECORD_BYTES as usize] {
        const PAYLOAD: usize = DMT_PAYLOAD_BYTES as usize;
        let mut w = FrameWriter::new();
        // Common prefix: tag, d_file, d_offset — then per-kind fields,
        // all laid out back-to-back.
        let (tag, d_file, d_offset) = match *self {
            JournalRecord::Insert {
                d_file, d_offset, ..
            } => (1u8, d_file, d_offset),
            JournalRecord::SetDirty {
                d_file, d_offset, ..
            } => (2, d_file, d_offset),
            JournalRecord::SetClean { d_file, d_offset } => (3, d_file, d_offset),
            JournalRecord::Remove { d_file, d_offset } => (4, d_file, d_offset),
            JournalRecord::Seal {
                d_file, d_offset, ..
            } => (5, d_file, d_offset),
            JournalRecord::FlushIntent { d_file, d_offset } => (6, d_file, d_offset),
        };
        w.put_u8(tag);
        w.put_u24(d_file.0);
        w.put_u48(d_offset);
        match *self {
            JournalRecord::Insert {
                len,
                c_file,
                c_offset,
                dirty,
                ..
            } => {
                debug_assert!(len < (1 << 32), "extent length exceeds 32 bits");
                w.put_u32(len as u32);
                w.put_u24(c_file.0);
                w.put_u48(c_offset);
                w.put_u8(u8::from(dirty));
            }
            JournalRecord::SetDirty { len, .. } => {
                debug_assert!(len < (1 << 32));
                w.put_u32(len as u32);
            }
            JournalRecord::Seal { checksum, len, .. } => {
                w.put_u32(checksum);
                debug_assert!(len < (1 << 32));
                w.put_u32(len as u32);
            }
            JournalRecord::SetClean { .. }
            | JournalRecord::Remove { .. }
            | JournalRecord::FlushIntent { .. } => {}
        }
        let crc = crc32(w.buf.get(..PAYLOAD).unwrap_or_default());
        w.seek(PAYLOAD);
        w.put_u32(crc);
        w.buf
    }

    /// Deserialises from the fixed on-disk layout.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] on wrong length, checksum mismatch, or
    /// unknown tag.
    pub fn decode(buf: &[u8]) -> Result<Self, JournalError> {
        if buf.len() != DMT_RECORD_BYTES as usize {
            return Err(JournalError::BadLength(buf.len()));
        }
        let payload = buf.get(..DMT_PAYLOAD_BYTES as usize).unwrap_or_default();
        let expected = crc32(payload);
        let mut trailer = FrameReader {
            buf,
            at: DMT_PAYLOAD_BYTES as usize,
        };
        let found = trailer.u32();
        if expected != found {
            return Err(JournalError::BadChecksum { expected, found });
        }
        let mut r = FrameReader { buf, at: 0 };
        let tag = r.u8();
        let d_file = FileId(r.u24());
        let d_offset = r.u48();
        match tag {
            1 => {
                let len = u64::from(r.u32());
                Ok(JournalRecord::Insert {
                    d_file,
                    d_offset,
                    len,
                    c_file: FileId(r.u24()),
                    c_offset: r.u48(),
                    dirty: r.u8() != 0,
                })
            }
            2 => Ok(JournalRecord::SetDirty {
                d_file,
                d_offset,
                len: u64::from(r.u32()),
            }),
            3 => Ok(JournalRecord::SetClean { d_file, d_offset }),
            4 => Ok(JournalRecord::Remove { d_file, d_offset }),
            5 => Ok(JournalRecord::Seal {
                d_file,
                d_offset,
                checksum: r.u32(),
                len: u64::from(r.u32()),
            }),
            6 => Ok(JournalRecord::FlushIntent { d_file, d_offset }),
            t => Err(JournalError::BadTag(t)),
        }
    }

    /// The durable key `(d_file, d_offset)` of the mutation — the input to
    /// shard routing. Every record kind carries it, so a group-commit
    /// batch can be split back into per-shard record runs when a failed
    /// batch requeues and when recovery replays shard-tagged records.
    pub fn d_key(&self) -> (FileId, u64) {
        match *self {
            JournalRecord::Insert {
                d_file, d_offset, ..
            }
            | JournalRecord::SetDirty {
                d_file, d_offset, ..
            }
            | JournalRecord::SetClean { d_file, d_offset }
            | JournalRecord::Remove { d_file, d_offset }
            | JournalRecord::Seal {
                d_file, d_offset, ..
            }
            | JournalRecord::FlushIntent { d_file, d_offset } => (d_file, d_offset),
        }
    }
}

/// Serialises a batch of records into one journal write payload.
pub fn encode_batch(records: &[JournalRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * DMT_RECORD_BYTES as usize);
    for r in records {
        out.extend_from_slice(&r.encode());
    }
    out
}

/// Parses a journal byte stream back into records.
///
/// # Errors
///
/// Returns [`JournalError`] if the stream length is not a multiple of the
/// record size or a record fails to decode.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<JournalRecord>, JournalError> {
    if !bytes.len().is_multiple_of(DMT_RECORD_BYTES as usize) {
        return Err(JournalError::BadLength(bytes.len()));
    }
    bytes
        .chunks_exact(DMT_RECORD_BYTES as usize)
        .map(JournalRecord::decode)
        .collect()
}

/// Outcome of tolerant journal decoding ([`decode_prefix`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJournal {
    /// The longest valid record prefix of the stream.
    pub records: Vec<JournalRecord>,
    /// Bytes past the valid prefix that were dropped (torn tail and/or a
    /// corrupted frame plus everything after it).
    pub dropped_bytes: u64,
    /// The error that ended decoding, if the stream did not end cleanly at
    /// a frame boundary. `Some(BadLength)` means only a torn final frame;
    /// `Some(BadChecksum)`/`Some(BadTag)` mean real corruption.
    pub truncated_by: Option<JournalError>,
}

impl RecoveredJournal {
    /// True if the whole stream decoded (nothing dropped).
    pub fn is_clean(&self) -> bool {
        self.dropped_bytes == 0 && self.truncated_by.is_none()
    }
}

/// Decodes the longest valid prefix of a journal byte stream.
///
/// Unlike [`decode_batch`], this never fails: a torn final frame (partial
/// write during a crash) is truncated, and a frame with a checksum or tag
/// error ends decoding at the last good record. Everything before the
/// first bad frame is returned; see the module docs for why decoding stops
/// rather than skipping.
pub fn decode_prefix(bytes: &[u8]) -> RecoveredJournal {
    let frame = DMT_RECORD_BYTES as usize;
    let mut records = Vec::with_capacity(bytes.len() / frame);
    let mut at = 0usize;
    let mut truncated_by = None;
    while at < bytes.len() {
        let end = at + frame.min(bytes.len() - at);
        match JournalRecord::decode(bytes.get(at..end).unwrap_or_default()) {
            Ok(r) => {
                records.push(r);
                at = end;
            }
            Err(e) => {
                truncated_by = Some(e);
                break;
            }
        }
    }
    RecoveredJournal {
        records,
        dropped_bytes: (bytes.len() - at) as u64,
        truncated_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const F: FileId = FileId(3);
    const CF: FileId = FileId(9);

    #[test]
    fn record_roundtrips() {
        let records = [
            JournalRecord::Insert {
                d_file: F,
                d_offset: 123_456_789,
                len: 16384,
                c_file: CF,
                c_offset: 987_654,
                dirty: true,
            },
            JournalRecord::SetDirty {
                d_file: F,
                d_offset: 42,
                len: 4096,
            },
            JournalRecord::SetClean {
                d_file: F,
                d_offset: 0,
            },
            JournalRecord::Remove {
                d_file: FileId((1 << 24) - 1),
                d_offset: (1 << 48) - 1,
            },
            JournalRecord::Seal {
                d_file: F,
                d_offset: 8192,
                checksum: 0xDEAD_BEEF,
                len: (1 << 32) - 1,
            },
            JournalRecord::FlushIntent {
                d_file: F,
                d_offset: 77,
            },
        ];
        for r in records {
            let encoded = r.encode();
            assert_eq!(encoded.len(), DMT_RECORD_BYTES as usize);
            assert_eq!(JournalRecord::decode(&encoded).unwrap(), r);
        }
    }

    #[test]
    fn batch_roundtrips() {
        let records = vec![
            JournalRecord::SetClean {
                d_file: F,
                d_offset: 10,
            },
            JournalRecord::Remove {
                d_file: F,
                d_offset: 20,
            },
        ];
        let bytes = encode_batch(&records);
        assert_eq!(bytes.len(), 2 * DMT_RECORD_BYTES as usize);
        assert_eq!(decode_batch(&bytes).unwrap(), records);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            JournalRecord::decode(&[0u8; 10]),
            Err(JournalError::BadLength(10))
        );
        let mut bad = JournalRecord::SetClean {
            d_file: F,
            d_offset: 7,
        }
        .encode();
        bad[0] = 99; // breaks both the tag and the checksum
        assert!(matches!(
            JournalRecord::decode(&bad),
            Err(JournalError::BadChecksum { .. })
        ));
        // Valid checksum over an invalid tag: still rejected.
        bad[0] = 99;
        let crc = crc32(&bad[..DMT_PAYLOAD_BYTES as usize]);
        bad[DMT_PAYLOAD_BYTES as usize..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(JournalRecord::decode(&bad), Err(JournalError::BadTag(99)));
        assert_eq!(
            decode_batch(&[0u8; DMT_RECORD_BYTES as usize + 1]),
            Err(JournalError::BadLength(DMT_RECORD_BYTES as usize + 1))
        );
        assert!(JournalError::BadTag(9).to_string().contains("tag 9"));
        assert!(JournalError::BadLength(1).to_string().contains("28 bytes"));
        assert!(JournalError::BadChecksum {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum"));
    }

    #[test]
    fn flipping_any_single_bit_is_detected() {
        let record = JournalRecord::Insert {
            d_file: F,
            d_offset: 123_456,
            len: 16384,
            c_file: CF,
            c_offset: 777,
            dirty: false,
        };
        let good = record.encode();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut flipped = good;
                flipped[byte] ^= 1 << bit;
                assert!(
                    JournalRecord::decode(&flipped).is_err(),
                    "bit flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn decode_prefix_truncates_torn_tail() {
        let records = vec![
            JournalRecord::SetClean {
                d_file: F,
                d_offset: 10,
            },
            JournalRecord::Remove {
                d_file: F,
                d_offset: 20,
            },
        ];
        let mut bytes = encode_batch(&records);
        // A crash tears the final record mid-write.
        bytes.extend_from_slice(
            &JournalRecord::SetClean {
                d_file: F,
                d_offset: 30,
            }
            .encode()[..11],
        );
        let out = decode_prefix(&bytes);
        assert_eq!(out.records, records);
        assert_eq!(out.dropped_bytes, 11);
        assert_eq!(out.truncated_by, Some(JournalError::BadLength(11)));
        assert!(!out.is_clean());

        let clean = decode_prefix(&encode_batch(&records));
        assert!(clean.is_clean());
        assert_eq!(clean.records, records);
    }

    #[test]
    fn decode_prefix_stops_at_corruption() {
        let records: Vec<JournalRecord> = (0..5)
            .map(|i| JournalRecord::SetClean {
                d_file: F,
                d_offset: i * 100,
            })
            .collect();
        let mut bytes = encode_batch(&records);
        // Flip one bit in the third record's payload.
        bytes[2 * DMT_RECORD_BYTES as usize + 5] ^= 0x40;
        let out = decode_prefix(&bytes);
        assert_eq!(out.records, records[..2]);
        assert_eq!(out.dropped_bytes, 3 * DMT_RECORD_BYTES);
        assert!(matches!(
            out.truncated_by,
            Some(JournalError::BadChecksum { .. })
        ));
    }

    proptest! {
        /// encode/decode is a bijection over the record space.
        #[test]
        fn prop_codec_roundtrip(
            tag in 1u8..7,
            d_file in 0u64..(1 << 24),
            d_offset in 0u64..(1 << 48),
            len in 0u64..(1 << 32),
            c_file in 0u64..(1 << 24),
            c_offset in 0u64..(1 << 48),
            dirty in any::<bool>(),
        ) {
            let r = match tag {
                1 => JournalRecord::Insert {
                    d_file: FileId(d_file), d_offset, len,
                    c_file: FileId(c_file), c_offset, dirty,
                },
                2 => JournalRecord::SetDirty { d_file: FileId(d_file), d_offset, len },
                3 => JournalRecord::SetClean { d_file: FileId(d_file), d_offset },
                4 => JournalRecord::Remove { d_file: FileId(d_file), d_offset },
                5 => JournalRecord::Seal {
                    d_file: FileId(d_file), d_offset,
                    checksum: (c_offset & 0xFFFF_FFFF) as u32, len,
                },
                _ => JournalRecord::FlushIntent { d_file: FileId(d_file), d_offset },
            };
            prop_assert_eq!(JournalRecord::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn d_key_is_the_routing_key_of_every_kind() {
        let records = [
            JournalRecord::Insert {
                d_file: F,
                d_offset: 11,
                len: 4,
                c_file: CF,
                c_offset: 0,
                dirty: false,
            },
            JournalRecord::SetDirty {
                d_file: F,
                d_offset: 22,
                len: 4,
            },
            JournalRecord::SetClean {
                d_file: F,
                d_offset: 33,
            },
            JournalRecord::Remove {
                d_file: F,
                d_offset: 44,
            },
            JournalRecord::Seal {
                d_file: F,
                d_offset: 55,
                checksum: 1,
                len: 4,
            },
            JournalRecord::FlushIntent {
                d_file: F,
                d_offset: 66,
            },
        ];
        let keys: Vec<u64> = records.iter().map(|r| r.d_key().1).collect();
        assert_eq!(keys, vec![11, 22, 33, 44, 55, 66]);
        assert!(records.iter().all(|r| r.d_key().0 == F));
    }
}
