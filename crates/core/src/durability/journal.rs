//! DMT journal records and crash recovery.
//!
//! The paper persists every Data Mapping Table change synchronously "in
//! order to survive power failures" (§III.D), storing records of six
//! four-byte fields in a Berkeley DB file on CServers. This module gives
//! the reproduction the same property *verifiably*: every DMT mutation
//! emits a fixed-size CRC32-framed [`JournalRecord`], and [`replay`]
//! reconstructs the mapping table (and, through
//! [`crate::SpaceManager::rebuild`], the cache-space allocator) from the
//! record stream alone. The crash-recovery integration tests run a
//! workload, "power-fail" the middleware, rebuild it from the journal, and
//! verify that every byte still reads back correctly.
//!
//! A crash can tear the final record (partial write) or storage can flip
//! bits anywhere in the stream. [`decode_prefix`] therefore recovers the
//! longest valid prefix: it stops at the first frame whose CRC or tag does
//! not verify and at a partial final frame, reporting what was dropped
//! instead of failing the whole recovery. Stopping (rather than skipping a
//! bad frame and continuing) is deliberate — later records can depend on
//! earlier ones (a skipped `Remove` followed by an overlapping `Insert`
//! would corrupt the table), while every *prefix* of the journal is a
//! consistent mapping by construction.

use s4d_pfs::FileId;
use serde::{Deserialize, Serialize};

use crate::dmt::Dmt;
use crate::{DMT_PAYLOAD_BYTES, DMT_RECORD_BYTES};

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // Const-initializer: evaluated at build time, where an
        // out-of-bounds index is a compile error — outside the runtime
        // panic rules by construction.
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`, as used for journal record framing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let e = CRC32_TABLE
            .get(((crc ^ u32::from(b)) & 0xFF) as usize)
            .copied()
            .unwrap_or(0); // masked to 0xFF, always < the 256-entry table
        crc = (crc >> 8) ^ e;
    }
    !crc
}

/// One persisted DMT mutation.
///
/// Encodes to exactly [`DMT_RECORD_BYTES`] (28) bytes: a 24-byte payload —
/// the record size the paper's §V.E.1 metadata-overhead analysis assumes —
/// followed by a CRC32 trailer over the payload. Field widths: file ids 24
/// bits, offsets 48 bits (256 TiB), lengths 32 bits (4 GiB per extent),
/// which comfortably cover the simulated deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A new extent mapping was created.
    Insert {
        /// Original file.
        d_file: FileId,
        /// Offset in the original file.
        d_offset: u64,
        /// Extent length.
        len: u64,
        /// Cache file.
        c_file: FileId,
        /// Offset in the cache file.
        c_offset: u64,
        /// Initial dirty flag.
        dirty: bool,
    },
    /// A range was overwritten in the cache: mark it dirty (splitting
    /// boundary extents exactly as the live table did).
    SetDirty {
        /// Original file.
        d_file: FileId,
        /// Range offset.
        d_offset: u64,
        /// Range length.
        len: u64,
    },
    /// A flush completed: the extent starting here is clean.
    SetClean {
        /// Original file.
        d_file: FileId,
        /// Extent start.
        d_offset: u64,
    },
    /// An extent was evicted.
    Remove {
        /// Original file.
        d_file: FileId,
        /// Extent start.
        d_offset: u64,
    },
    /// The extent's cached bytes were verified: a content checksum was
    /// attached to the mapping. The length is part of the record so a
    /// seal never applies to an extent that was split or re-created with
    /// different bounds after the seal was journaled.
    Seal {
        /// Original file.
        d_file: FileId,
        /// Extent start.
        d_offset: u64,
        /// CRC32 of the extent's cached bytes.
        checksum: u32,
        /// Extent length the checksum covers.
        len: u64,
    },
    /// The Rebuilder is about to flush the dirty run starting here; the
    /// matching `SetClean` records are the commit. An intent without a
    /// commit after recovery means the flush may have partially reached
    /// DServers — harmless, because flushing re-writes the same bytes and
    /// the extents stay dirty until a commit lands.
    FlushIntent {
        /// Original file.
        d_file: FileId,
        /// First extent of the flush group.
        d_offset: u64,
    },
}

/// Failure to decode a journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// The record tag byte is not a known kind.
    BadTag(u8),
    /// The buffer is not exactly [`DMT_RECORD_BYTES`] long.
    BadLength(usize),
    /// The CRC32 trailer does not match the payload (bit-flip in flight or
    /// at rest).
    BadChecksum {
        /// CRC32 recomputed over the payload.
        expected: u32,
        /// CRC32 stored in the frame trailer.
        found: u32,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::BadTag(t) => write!(f, "unknown journal record tag {t}"),
            JournalError::BadLength(n) => {
                write!(
                    f,
                    "journal record must be {DMT_RECORD_BYTES} bytes, got {n}"
                )
            }
            JournalError::BadChecksum { expected, found } => write!(
                f,
                "journal record checksum mismatch: computed {expected:#010x}, stored {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// Sequential little-endian writer over a fixed frame buffer.
///
/// All field widths in the on-disk layout are laid out back-to-back, so
/// encoding never needs random offsets; bounds are checked (a write past
/// the frame is truncated, which the encode/decode round-trip tests would
/// catch immediately) instead of panicking.
struct FrameWriter {
    buf: [u8; DMT_RECORD_BYTES as usize],
    at: usize,
}

impl FrameWriter {
    fn new() -> Self {
        FrameWriter {
            buf: [0u8; DMT_RECORD_BYTES as usize],
            at: 0,
        }
    }

    fn put(&mut self, bytes: &[u8]) {
        for (dst, src) in self.buf.iter_mut().skip(self.at).zip(bytes) {
            *dst = *src;
        }
        self.at += bytes.len();
    }

    fn put_u8(&mut self, v: u8) {
        self.put(&[v]);
    }

    fn put_u24(&mut self, v: u64) {
        debug_assert!(v < (1 << 24), "file id exceeds 24 bits");
        self.put((v as u32).to_le_bytes().get(..3).unwrap_or_default());
    }

    fn put_u32(&mut self, v: u32) {
        self.put(&v.to_le_bytes());
    }

    fn put_u48(&mut self, v: u64) {
        debug_assert!(v < (1 << 48), "offset exceeds 48 bits");
        self.put(v.to_le_bytes().get(..6).unwrap_or_default());
    }

    /// Seeks to `at` (the CRC trailer position).
    fn seek(&mut self, at: usize) {
        self.at = at;
    }
}

/// Sequential little-endian reader over a byte slice. Reads past the end
/// yield zero bytes — callers length-check the frame before decoding, so
/// that path is never taken on well-formed input and a truncated frame
/// fails its CRC rather than panicking.
struct FrameReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl FrameReader<'_> {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(self.buf.iter().skip(self.at)) {
            *dst = *src;
        }
        self.at += N;
        out
    }

    fn u8(&mut self) -> u8 {
        let [b] = self.take::<1>();
        b
    }

    fn u24(&mut self) -> u64 {
        let [a, b, c] = self.take::<3>();
        u64::from(a) | u64::from(b) << 8 | u64::from(c) << 16
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn u48(&mut self) -> u64 {
        let [a, b, c, d, e, f] = self.take::<6>();
        u64::from_le_bytes([a, b, c, d, e, f, 0, 0])
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }
}

impl JournalRecord {
    /// Serialises to the fixed on-disk layout.
    ///
    /// # Panics
    ///
    /// Debug-panics if a field exceeds its encoded width (file ids 24 bits,
    /// offsets 48 bits, lengths 32 bits).
    pub fn encode(&self) -> [u8; DMT_RECORD_BYTES as usize] {
        const PAYLOAD: usize = DMT_PAYLOAD_BYTES as usize;
        let mut w = FrameWriter::new();
        // Common prefix: tag, d_file, d_offset — then per-kind fields,
        // all laid out back-to-back.
        let (tag, d_file, d_offset) = match *self {
            JournalRecord::Insert {
                d_file, d_offset, ..
            } => (1u8, d_file, d_offset),
            JournalRecord::SetDirty {
                d_file, d_offset, ..
            } => (2, d_file, d_offset),
            JournalRecord::SetClean { d_file, d_offset } => (3, d_file, d_offset),
            JournalRecord::Remove { d_file, d_offset } => (4, d_file, d_offset),
            JournalRecord::Seal {
                d_file, d_offset, ..
            } => (5, d_file, d_offset),
            JournalRecord::FlushIntent { d_file, d_offset } => (6, d_file, d_offset),
        };
        w.put_u8(tag);
        w.put_u24(d_file.0);
        w.put_u48(d_offset);
        match *self {
            JournalRecord::Insert {
                len,
                c_file,
                c_offset,
                dirty,
                ..
            } => {
                debug_assert!(len < (1 << 32), "extent length exceeds 32 bits");
                w.put_u32(len as u32);
                w.put_u24(c_file.0);
                w.put_u48(c_offset);
                w.put_u8(u8::from(dirty));
            }
            JournalRecord::SetDirty { len, .. } => {
                debug_assert!(len < (1 << 32));
                w.put_u32(len as u32);
            }
            JournalRecord::Seal { checksum, len, .. } => {
                w.put_u32(checksum);
                debug_assert!(len < (1 << 32));
                w.put_u32(len as u32);
            }
            JournalRecord::SetClean { .. }
            | JournalRecord::Remove { .. }
            | JournalRecord::FlushIntent { .. } => {}
        }
        let crc = crc32(w.buf.get(..PAYLOAD).unwrap_or_default());
        w.seek(PAYLOAD);
        w.put_u32(crc);
        w.buf
    }

    /// Deserialises from the fixed on-disk layout.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] on wrong length, checksum mismatch, or
    /// unknown tag.
    pub fn decode(buf: &[u8]) -> Result<Self, JournalError> {
        if buf.len() != DMT_RECORD_BYTES as usize {
            return Err(JournalError::BadLength(buf.len()));
        }
        let payload = buf.get(..DMT_PAYLOAD_BYTES as usize).unwrap_or_default();
        let expected = crc32(payload);
        let mut trailer = FrameReader {
            buf,
            at: DMT_PAYLOAD_BYTES as usize,
        };
        let found = trailer.u32();
        if expected != found {
            return Err(JournalError::BadChecksum { expected, found });
        }
        let mut r = FrameReader { buf, at: 0 };
        let tag = r.u8();
        let d_file = FileId(r.u24());
        let d_offset = r.u48();
        match tag {
            1 => {
                let len = u64::from(r.u32());
                Ok(JournalRecord::Insert {
                    d_file,
                    d_offset,
                    len,
                    c_file: FileId(r.u24()),
                    c_offset: r.u48(),
                    dirty: r.u8() != 0,
                })
            }
            2 => Ok(JournalRecord::SetDirty {
                d_file,
                d_offset,
                len: u64::from(r.u32()),
            }),
            3 => Ok(JournalRecord::SetClean { d_file, d_offset }),
            4 => Ok(JournalRecord::Remove { d_file, d_offset }),
            5 => Ok(JournalRecord::Seal {
                d_file,
                d_offset,
                checksum: r.u32(),
                len: u64::from(r.u32()),
            }),
            6 => Ok(JournalRecord::FlushIntent { d_file, d_offset }),
            t => Err(JournalError::BadTag(t)),
        }
    }
}

/// Serialises a batch of records into one journal write payload.
pub fn encode_batch(records: &[JournalRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * DMT_RECORD_BYTES as usize);
    for r in records {
        out.extend_from_slice(&r.encode());
    }
    out
}

/// Parses a journal byte stream back into records.
///
/// # Errors
///
/// Returns [`JournalError`] if the stream length is not a multiple of the
/// record size or a record fails to decode.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<JournalRecord>, JournalError> {
    if !bytes.len().is_multiple_of(DMT_RECORD_BYTES as usize) {
        return Err(JournalError::BadLength(bytes.len()));
    }
    bytes
        .chunks_exact(DMT_RECORD_BYTES as usize)
        .map(JournalRecord::decode)
        .collect()
}

/// Outcome of tolerant journal decoding ([`decode_prefix`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJournal {
    /// The longest valid record prefix of the stream.
    pub records: Vec<JournalRecord>,
    /// Bytes past the valid prefix that were dropped (torn tail and/or a
    /// corrupted frame plus everything after it).
    pub dropped_bytes: u64,
    /// The error that ended decoding, if the stream did not end cleanly at
    /// a frame boundary. `Some(BadLength)` means only a torn final frame;
    /// `Some(BadChecksum)`/`Some(BadTag)` mean real corruption.
    pub truncated_by: Option<JournalError>,
}

impl RecoveredJournal {
    /// True if the whole stream decoded (nothing dropped).
    pub fn is_clean(&self) -> bool {
        self.dropped_bytes == 0 && self.truncated_by.is_none()
    }
}

/// Decodes the longest valid prefix of a journal byte stream.
///
/// Unlike [`decode_batch`], this never fails: a torn final frame (partial
/// write during a crash) is truncated, and a frame with a checksum or tag
/// error ends decoding at the last good record. Everything before the
/// first bad frame is returned; see the module docs for why decoding stops
/// rather than skipping.
pub fn decode_prefix(bytes: &[u8]) -> RecoveredJournal {
    let frame = DMT_RECORD_BYTES as usize;
    let mut records = Vec::with_capacity(bytes.len() / frame);
    let mut at = 0usize;
    let mut truncated_by = None;
    while at < bytes.len() {
        let end = at + frame.min(bytes.len() - at);
        match JournalRecord::decode(bytes.get(at..end).unwrap_or_default()) {
            Ok(r) => {
                records.push(r);
                at = end;
            }
            Err(e) => {
                truncated_by = Some(e);
                break;
            }
        }
    }
    RecoveredJournal {
        records,
        dropped_bytes: (bytes.len() - at) as u64,
        truncated_by,
    }
}

/// Rebuilds a Data Mapping Table from a journal record stream — the
/// recovery path after a middleware crash.
///
/// Versions and LRU recency are runtime state and start fresh; the mapping
/// itself (extents, cache locations, dirty flags) is reconstructed exactly.
pub fn replay(records: &[JournalRecord]) -> Dmt {
    let mut dmt = Dmt::new();
    for r in records {
        match *r {
            JournalRecord::Insert {
                d_file,
                d_offset,
                len,
                c_file,
                c_offset,
                dirty,
            } => dmt.insert(d_file, d_offset, len, c_file, c_offset, dirty),
            _ => apply_tolerant(&mut dmt, r),
        }
    }
    // Replaying re-recorded every mutation; a recovered table starts with
    // an empty pending set.
    let _ = dmt.take_pending_journal();
    dmt
}

/// Applies one record to a table that may not be in the exact state the
/// record was produced against. `Insert` fills only the still-uncovered
/// gaps of its range (with correspondingly shifted cache offsets); every
/// other record no-ops when its target extent is absent or mismatched.
fn apply_tolerant(dmt: &mut Dmt, r: &JournalRecord) {
    match *r {
        JournalRecord::Insert {
            d_file,
            d_offset,
            len,
            c_file,
            c_offset,
            dirty,
        } => {
            let view = dmt.view(d_file, d_offset, len);
            for (g_off, g_len) in view.gaps {
                dmt.insert(
                    d_file,
                    g_off,
                    g_len,
                    c_file,
                    c_offset + (g_off - d_offset),
                    dirty,
                );
            }
        }
        JournalRecord::SetDirty {
            d_file,
            d_offset,
            len,
        } => dmt.mark_dirty(d_file, d_offset, len),
        JournalRecord::SetClean { d_file, d_offset } => {
            dmt.force_clean(d_file, d_offset);
        }
        JournalRecord::Remove { d_file, d_offset } => {
            dmt.remove(d_file, d_offset);
        }
        JournalRecord::Seal {
            d_file,
            d_offset,
            checksum,
            len,
        } => {
            dmt.apply_seal(d_file, d_offset, len, checksum);
        }
        JournalRecord::FlushIntent { .. } => {}
    }
}

/// Rebuilds a table tolerantly: like [`replay`], but every record — not
/// just the non-`Insert` kinds — is applied with tolerant (skip, don't
/// panic) semantics, so a stream whose prefix was already folded into a
/// checkpoint snapshot (or that lost interior records to a torn journal
/// region) replays without panicking. On a well-formed exact history the
/// result is identical to [`replay`].
pub fn replay_tolerant(dmt: &mut Dmt, records: &[JournalRecord]) {
    for r in records {
        apply_tolerant(dmt, r);
    }
    let _ = dmt.take_pending_journal();
}

/// Magic bytes opening every checkpoint snapshot.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"S4DSNAP1";
/// Fixed checkpoint header: magic + sequence + journal tail + record count.
pub const CHECKPOINT_HEADER_BYTES: usize = 32;

/// A decoded DMT checkpoint snapshot.
///
/// On-disk layout: [`CHECKPOINT_MAGIC`] (8 bytes), `covers_seq` u64 LE,
/// `tail_offset` u64 LE, record count u64 LE, `count` encoded
/// [`JournalRecord`] frames, then a CRC32 trailer over everything before
/// it. Decoding is all-or-nothing: a torn install fails the CRC and the
/// recovery falls back to the other slot. Bytes past the declared length
/// are ignored, so installing a shorter snapshot over a longer stale one
/// needs no truncation to stay valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotonic checkpoint sequence number (slot freshness arbiter).
    pub covers_seq: u64,
    /// Journal offset the snapshot covers: recovery replays only records
    /// at or past this offset on top of the snapshot.
    pub tail_offset: u64,
    /// The snapshot itself: one `Insert` (plus `Seal`, when the extent had
    /// a verified checksum) per live extent.
    pub records: Vec<JournalRecord>,
}

/// Failure to decode a checkpoint snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer is shorter than the declared snapshot.
    TooShort(usize),
    /// The magic bytes do not match [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The CRC32 trailer does not match the snapshot contents.
    BadChecksum {
        /// CRC32 recomputed over the snapshot.
        expected: u32,
        /// CRC32 stored in the trailer.
        found: u32,
    },
    /// A snapshot record frame failed to decode.
    BadRecord(JournalError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::TooShort(n) => write!(f, "checkpoint truncated at {n} bytes"),
            CheckpointError::BadMagic => write!(f, "checkpoint magic mismatch"),
            CheckpointError::BadChecksum { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: computed {expected:#010x}, stored {found:#010x}"
            ),
            CheckpointError::BadRecord(e) => write!(f, "checkpoint record invalid: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialises a checkpoint snapshot (see [`Checkpoint`] for the layout).
pub fn encode_checkpoint(covers_seq: u64, tail_offset: u64, records: &[JournalRecord]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(CHECKPOINT_HEADER_BYTES + records.len() * DMT_RECORD_BYTES as usize + 4);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&covers_seq.to_le_bytes());
    out.extend_from_slice(&tail_offset.to_le_bytes());
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.encode());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Deserialises a checkpoint snapshot, all-or-nothing.
///
/// # Errors
///
/// Returns [`CheckpointError`] when the buffer is shorter than the
/// declared snapshot, the magic or CRC do not match, or a record frame is
/// invalid. Trailing bytes beyond the declared length are ignored.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    if bytes.len() < CHECKPOINT_HEADER_BYTES + 4 {
        return Err(CheckpointError::TooShort(bytes.len()));
    }
    if bytes.get(..8) != Some(CHECKPOINT_MAGIC.as_slice()) {
        return Err(CheckpointError::BadMagic);
    }
    let mut header = FrameReader { buf: bytes, at: 8 };
    let covers_seq = header.u64();
    let tail_offset = header.u64();
    let count = header.u64();
    let body =
        (CHECKPOINT_HEADER_BYTES as u64).saturating_add(count.saturating_mul(DMT_RECORD_BYTES));
    let total = body.saturating_add(4);
    if (bytes.len() as u64) < total {
        return Err(CheckpointError::TooShort(bytes.len()));
    }
    let body = body as usize;
    let expected = crc32(bytes.get(..body).unwrap_or_default());
    let mut trailer = FrameReader {
        buf: bytes,
        at: body,
    };
    let found = trailer.u32();
    if expected != found {
        return Err(CheckpointError::BadChecksum { expected, found });
    }
    let records = decode_batch(bytes.get(CHECKPOINT_HEADER_BYTES..body).unwrap_or_default())
        .map_err(CheckpointError::BadRecord)?;
    Ok(Checkpoint {
        covers_seq,
        tail_offset,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const F: FileId = FileId(3);
    const CF: FileId = FileId(9);

    #[test]
    fn record_roundtrips() {
        let records = [
            JournalRecord::Insert {
                d_file: F,
                d_offset: 123_456_789,
                len: 16384,
                c_file: CF,
                c_offset: 987_654,
                dirty: true,
            },
            JournalRecord::SetDirty {
                d_file: F,
                d_offset: 42,
                len: 4096,
            },
            JournalRecord::SetClean {
                d_file: F,
                d_offset: 0,
            },
            JournalRecord::Remove {
                d_file: FileId((1 << 24) - 1),
                d_offset: (1 << 48) - 1,
            },
            JournalRecord::Seal {
                d_file: F,
                d_offset: 8192,
                checksum: 0xDEAD_BEEF,
                len: (1 << 32) - 1,
            },
            JournalRecord::FlushIntent {
                d_file: F,
                d_offset: 77,
            },
        ];
        for r in records {
            let encoded = r.encode();
            assert_eq!(encoded.len(), DMT_RECORD_BYTES as usize);
            assert_eq!(JournalRecord::decode(&encoded).unwrap(), r);
        }
    }

    #[test]
    fn batch_roundtrips() {
        let records = vec![
            JournalRecord::SetClean {
                d_file: F,
                d_offset: 10,
            },
            JournalRecord::Remove {
                d_file: F,
                d_offset: 20,
            },
        ];
        let bytes = encode_batch(&records);
        assert_eq!(bytes.len(), 2 * DMT_RECORD_BYTES as usize);
        assert_eq!(decode_batch(&bytes).unwrap(), records);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            JournalRecord::decode(&[0u8; 10]),
            Err(JournalError::BadLength(10))
        );
        let mut bad = JournalRecord::SetClean {
            d_file: F,
            d_offset: 7,
        }
        .encode();
        bad[0] = 99; // breaks both the tag and the checksum
        assert!(matches!(
            JournalRecord::decode(&bad),
            Err(JournalError::BadChecksum { .. })
        ));
        // Valid checksum over an invalid tag: still rejected.
        bad[0] = 99;
        let crc = crc32(&bad[..DMT_PAYLOAD_BYTES as usize]);
        bad[DMT_PAYLOAD_BYTES as usize..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(JournalRecord::decode(&bad), Err(JournalError::BadTag(99)));
        assert_eq!(
            decode_batch(&[0u8; DMT_RECORD_BYTES as usize + 1]),
            Err(JournalError::BadLength(DMT_RECORD_BYTES as usize + 1))
        );
        assert!(JournalError::BadTag(9).to_string().contains("tag 9"));
        assert!(JournalError::BadLength(1).to_string().contains("28 bytes"));
        assert!(JournalError::BadChecksum {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum"));
    }

    #[test]
    fn flipping_any_single_bit_is_detected() {
        let record = JournalRecord::Insert {
            d_file: F,
            d_offset: 123_456,
            len: 16384,
            c_file: CF,
            c_offset: 777,
            dirty: false,
        };
        let good = record.encode();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut flipped = good;
                flipped[byte] ^= 1 << bit;
                assert!(
                    JournalRecord::decode(&flipped).is_err(),
                    "bit flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn decode_prefix_truncates_torn_tail() {
        let records = vec![
            JournalRecord::SetClean {
                d_file: F,
                d_offset: 10,
            },
            JournalRecord::Remove {
                d_file: F,
                d_offset: 20,
            },
        ];
        let mut bytes = encode_batch(&records);
        // A crash tears the final record mid-write.
        bytes.extend_from_slice(
            &JournalRecord::SetClean {
                d_file: F,
                d_offset: 30,
            }
            .encode()[..11],
        );
        let out = decode_prefix(&bytes);
        assert_eq!(out.records, records);
        assert_eq!(out.dropped_bytes, 11);
        assert_eq!(out.truncated_by, Some(JournalError::BadLength(11)));
        assert!(!out.is_clean());

        let clean = decode_prefix(&encode_batch(&records));
        assert!(clean.is_clean());
        assert_eq!(clean.records, records);
    }

    #[test]
    fn decode_prefix_stops_at_corruption() {
        let records: Vec<JournalRecord> = (0..5)
            .map(|i| JournalRecord::SetClean {
                d_file: F,
                d_offset: i * 100,
            })
            .collect();
        let mut bytes = encode_batch(&records);
        // Flip one bit in the third record's payload.
        bytes[2 * DMT_RECORD_BYTES as usize + 5] ^= 0x40;
        let out = decode_prefix(&bytes);
        assert_eq!(out.records, records[..2]);
        assert_eq!(out.dropped_bytes, 3 * DMT_RECORD_BYTES);
        assert!(matches!(
            out.truncated_by,
            Some(JournalError::BadChecksum { .. })
        ));
    }

    #[test]
    fn replay_reconstructs_simple_history() {
        let mut live = Dmt::new();
        live.insert(F, 0, 100, CF, 0, false);
        live.mark_dirty(F, 20, 30);
        live.insert(F, 500, 50, CF, 100, true);
        let v = live.get(F, 500).unwrap().version;
        live.mark_clean_if(F, 500, v);
        live.remove(F, 0); // the [0,20) clean piece after the split
        let log = live.take_pending_journal();
        let recovered = replay(&log);
        // Byte-for-byte identical coverage.
        let a = live.view(F, 0, 600);
        let b = recovered.view(F, 0, 600);
        assert_eq!(a, b);
        assert_eq!(live.mapped_bytes(), recovered.mapped_bytes());
        assert_eq!(live.dirty_bytes(), recovered.dirty_bytes());
    }

    proptest! {
        /// Any sequence of inserts-into-gaps / dirty-markings / removals
        /// replays to an identical mapping.
        #[test]
        fn prop_replay_matches_live(
            ops in proptest::collection::vec((0u64..300, 1u64..50, 0u8..3), 1..50)
        ) {
            let mut live = Dmt::new();
            let mut next_c = 0u64;
            for (off, len, kind) in ops {
                match kind {
                    0 => {
                        // Insert the gaps of the range.
                        let view = live.view(F, off, len);
                        for (g_off, g_len) in view.gaps {
                            live.insert(F, g_off, g_len, CF, next_c, false);
                            next_c += g_len;
                        }
                    }
                    1 => live.mark_dirty(F, off, len),
                    _ => {
                        // Remove the extent at the range start, if any.
                        live.remove(F, off);
                    }
                }
            }
            let log = live.take_pending_journal();
            let recovered = replay(&log);
            prop_assert_eq!(live.view(F, 0, 512), recovered.view(F, 0, 512));
            prop_assert_eq!(live.mapped_bytes(), recovered.mapped_bytes());
            prop_assert_eq!(live.dirty_bytes(), recovered.dirty_bytes());
            prop_assert_eq!(live.entry_count(), recovered.entry_count());
        }

        /// encode/decode is a bijection over the record space.
        #[test]
        fn prop_codec_roundtrip(
            tag in 1u8..7,
            d_file in 0u64..(1 << 24),
            d_offset in 0u64..(1 << 48),
            len in 0u64..(1 << 32),
            c_file in 0u64..(1 << 24),
            c_offset in 0u64..(1 << 48),
            dirty in any::<bool>(),
        ) {
            let r = match tag {
                1 => JournalRecord::Insert {
                    d_file: FileId(d_file), d_offset, len,
                    c_file: FileId(c_file), c_offset, dirty,
                },
                2 => JournalRecord::SetDirty { d_file: FileId(d_file), d_offset, len },
                3 => JournalRecord::SetClean { d_file: FileId(d_file), d_offset },
                4 => JournalRecord::Remove { d_file: FileId(d_file), d_offset },
                5 => JournalRecord::Seal {
                    d_file: FileId(d_file), d_offset,
                    checksum: (c_offset & 0xFFFF_FFFF) as u32, len,
                },
                _ => JournalRecord::FlushIntent { d_file: FileId(d_file), d_offset },
            };
            prop_assert_eq!(JournalRecord::decode(&r.encode()).unwrap(), r);
        }

        /// A checkpoint round-trips, and any single bit flip is detected.
        #[test]
        fn prop_checkpoint_roundtrip_and_bitflip(
            seq in 0u64..1000,
            tail in 0u64..(1 << 40),
            n in 0usize..8,
            flip in any::<u64>(),
        ) {
            let records: Vec<JournalRecord> = (0..n as u64)
                .map(|i| JournalRecord::Insert {
                    d_file: F, d_offset: i * 100, len: 50,
                    c_file: CF, c_offset: i * 50, dirty: i % 2 == 0,
                })
                .collect();
            let bytes = encode_checkpoint(seq, tail, &records);
            let ck = decode_checkpoint(&bytes).unwrap();
            prop_assert_eq!(ck.covers_seq, seq);
            prop_assert_eq!(ck.tail_offset, tail);
            prop_assert_eq!(&ck.records, &records);
            let mut corrupt = bytes.clone();
            let bit = (flip % (corrupt.len() as u64 * 8)) as usize;
            corrupt[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(decode_checkpoint(&corrupt).is_err(),
                "bit flip at {} went undetected", bit);
        }
    }

    #[test]
    fn checkpoint_ignores_trailing_stale_bytes() {
        let records = vec![JournalRecord::Insert {
            d_file: F,
            d_offset: 0,
            len: 64,
            c_file: CF,
            c_offset: 0,
            dirty: false,
        }];
        let mut bytes = encode_checkpoint(7, 1234, &records);
        // A shorter snapshot installed over a longer stale one leaves the
        // stale tail in place; decoding must not care.
        bytes.extend_from_slice(&[0xAB; 300]);
        let ck = decode_checkpoint(&bytes).unwrap();
        assert_eq!(ck.covers_seq, 7);
        assert_eq!(ck.records, records);
        // But a torn install (prefix only) is rejected.
        let full = encode_checkpoint(8, 99, &records);
        for cut in 0..full.len() {
            assert!(decode_checkpoint(&full[..cut]).is_err(), "cut {cut}");
        }
        assert!(matches!(
            decode_checkpoint(&[0u8; 64]),
            Err(CheckpointError::BadMagic)
        ));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::TooShort(3).to_string().contains('3'));
        assert!(CheckpointError::BadRecord(JournalError::BadTag(9))
            .to_string()
            .contains("tag 9"));
        assert!(CheckpointError::BadChecksum {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum"));
    }

    #[test]
    fn tolerant_replay_of_a_duplicated_suffix_converges() {
        // A snapshot already contains the effect of records that were still
        // pending when it was taken; replaying them again on top must be a
        // no-op overall.
        let mut live = Dmt::new();
        live.insert(F, 0, 100, CF, 0, false);
        live.mark_dirty(F, 20, 30);
        live.remove(F, 0);
        let log = live.take_pending_journal();
        let mut dmt = replay(&log);
        replay_tolerant(&mut dmt, &log[1..]); // re-apply a suffix
        assert_eq!(dmt.view(F, 0, 200), live.view(F, 0, 200));
        assert_eq!(dmt.mapped_bytes(), live.mapped_bytes());
        assert_eq!(dmt.dirty_bytes(), live.dirty_bytes());
    }

    #[test]
    fn tolerant_insert_fills_only_gaps_with_shifted_cache_offsets() {
        let mut dmt = Dmt::new();
        dmt.insert(F, 20, 30, CF, 500, true);
        replay_tolerant(
            &mut dmt,
            &[JournalRecord::Insert {
                d_file: F,
                d_offset: 0,
                len: 100,
                c_file: CF,
                c_offset: 1000,
                dirty: false,
            }],
        );
        let v = dmt.view(F, 0, 100);
        assert!(v.fully_covered());
        // [0,20) and [50,100) filled from the record, shifted; [20,50) kept.
        assert_eq!(v.pieces[0].c_offset, 1000);
        assert_eq!(v.pieces[1].c_offset, 500);
        assert!(v.pieces[1].dirty);
        assert_eq!(v.pieces[2].c_offset, 1000 + 50);
    }

    #[test]
    fn seal_records_survive_replay_and_mismatch_is_dropped() {
        let mut live = Dmt::new();
        live.insert(F, 0, 64, CF, 0, false);
        live.insert(F, 100, 32, CF, 64, false);
        let v0 = live.get(F, 0).unwrap().version;
        assert!(live.seal_if(F, 0, v0, 0xFEED_FACE));
        let log = live.take_pending_journal();
        let recovered = replay(&log);
        assert_eq!(recovered.get(F, 0).unwrap().checksum, Some(0xFEED_FACE));
        assert_eq!(recovered.get(F, 100).unwrap().checksum, None);
        // A seal whose length no longer matches the extent does not apply.
        let mut dmt = Dmt::new();
        dmt.insert(F, 0, 32, CF, 0, false);
        replay_tolerant(
            &mut dmt,
            &[JournalRecord::Seal {
                d_file: F,
                d_offset: 0,
                checksum: 1,
                len: 64,
            }],
        );
        assert_eq!(dmt.get(F, 0).unwrap().checksum, None);
    }
}
