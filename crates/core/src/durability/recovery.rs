//! Crash recovery: rebuilding a middleware from persisted cluster state.
//!
//! Recovery reads nothing but what survives a middleware crash — the
//! checkpoint slots, the journal file, and the cache files on CPFS — and
//! never consults the crash fuse: a crash *during* recovery simply
//! re-enters this same deterministic procedure, so its discards need no
//! journal-before-effect ceremony.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use s4d_cost::CostParams;
use s4d_mpiio::Cluster;
use s4d_pfs::FileId;

use crate::config::S4dConfig;
use crate::dmt::Dmt;
use crate::durability::crash::{CrashFuse, CrashSite};
use crate::durability::journal;
use crate::layer::S4dCache;
use crate::metrics::S4dMetrics;
use crate::names::{CKPT_SLOT_A, CKPT_SLOT_B, JOURNAL_NAME};

/// What crash recovery found and rebuilt — see
/// [`S4dCache::recover_from_cluster`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint snapshot used, if any slot held a
    /// valid one.
    pub used_checkpoint: Option<u64>,
    /// Records replayed from the checkpoint snapshot.
    pub snapshot_records: u64,
    /// Records replayed from the journal tail past the snapshot.
    pub tail_records: u64,
    /// Journal bytes past the last decodable record (torn tail and
    /// anything after it) that recovery truncated.
    pub dropped_journal_bytes: u64,
    /// Extents dropped because their cache bytes were not fully present
    /// on CPFS (the mapping outran a torn data write).
    pub dropped_extents: u64,
    /// Bytes of dropped extents that were dirty — genuine data loss.
    pub dirty_bytes_lost: u64,
    /// Cache-file bytes present on CPFS but mapped by no extent (a data
    /// write outran its journaled mapping); the orphan sweep discarded
    /// them.
    pub orphan_bytes_discarded: u64,
}

impl RecoveryReport {
    /// Total records replayed (snapshot + tail): the work recovery did.
    pub fn records_replayed(&self) -> u64 {
        self.snapshot_records + self.tail_records
    }
}

impl S4dCache {
    /// Reconstructs a middleware after a crash from the persisted journal
    /// record stream: the DMT is replayed and the space allocator rebuilt
    /// from the live extents. The CDT and LRU recency are volatile
    /// (memory-only, as in the paper) and start empty; cache files are
    /// re-associated as applications re-open their files.
    pub fn recover(
        config: S4dConfig,
        params: CostParams,
        records: &[journal::JournalRecord],
    ) -> Self {
        let dmt = journal::replay(records);
        let capacity = config.cache_capacity;
        let mut s = S4dCache::new(config, params);
        // `adopt` redistributes the replayed extents to their owning
        // shards (the shard of every record is derivable from its d-key,
        // so the on-disk stream carries no shard tags) and rebuilds each
        // shard's space ledger from what it now maps.
        s.plane.adopt(dmt, capacity);
        s
    }

    /// Reconstructs a middleware from the cluster state alone — the
    /// checkpoint slots, the journal file, and the cache files on CPFS —
    /// which is exactly what survives a middleware crash. Requires
    /// functional-mode stores (timing-only stores hold no bytes to read
    /// back; recovery then sees an empty journal).
    ///
    /// The sequence is: pick the newest valid checkpoint slot, replay its
    /// snapshot, replay the journal tail past it (strict prefix — decoding
    /// stops at the first torn or corrupt frame and the undecodable suffix
    /// is truncated), conservatively unseal dirty extents, drop any mapping
    /// whose cache bytes are not fully present (a torn data write), rebuild
    /// the space allocator, and discard orphaned cache bytes no mapping
    /// claims (a data write that outran its journaled mapping).
    pub fn recover_from_cluster(
        config: S4dConfig,
        params: CostParams,
        cluster: &mut Cluster,
    ) -> (Self, RecoveryReport) {
        match Self::recover_from_cluster_fused(config, params, cluster, None) {
            Some(done) => done,
            // s4d-lint: allow(panic) — without a fuse no charge can be cut short, so the fused body always completes; panic-path witness: recover_from_cluster → recover_from_cluster_fused
            None => unreachable!("recovery without a fuse cannot crash"),
        }
    }

    /// [`S4dCache::recover_from_cluster`] with a crash fuse gating
    /// recovery's own destructive effects (the journal-suffix truncate,
    /// dropped-extent discards, and the orphan sweep). Returns `None` when
    /// the fuse dies mid-recovery — the partially-recovered instance is
    /// lost, exactly like a second power failure — after applying only the
    /// affordable prefix of the interrupted effect. The double-crash
    /// torture re-enters recovery afterwards and must converge to the same
    /// state, proving recovery idempotent.
    pub fn recover_from_cluster_fused(
        config: S4dConfig,
        params: CostParams,
        cluster: &mut Cluster,
        fuse: Option<Rc<RefCell<CrashFuse>>>,
    ) -> Option<(Self, RecoveryReport)> {
        let charge = |site: CrashSite, len: u64| -> u64 {
            match &fuse {
                Some(f) => f.borrow_mut().consume(site, len),
                None => len,
            }
        };
        let mut report = RecoveryReport::default();
        let mut snapshot: Option<journal::Checkpoint> = None;
        for slot in [CKPT_SLOT_A, CKPT_SLOT_B] {
            let Ok(file) = cluster.cpfs().open(slot) else {
                continue;
            };
            let Ok(size) = cluster.cpfs().meta(file).map(|m| m.size) else {
                continue;
            };
            let Ok(Some(bytes)) = cluster.cpfs().read_bytes(file, 0, size) else {
                continue;
            };
            if let Ok(ckpt) = journal::decode_checkpoint(&bytes) {
                if snapshot
                    .as_ref()
                    .is_none_or(|s| ckpt.covers_seq > s.covers_seq)
                {
                    snapshot = Some(ckpt);
                }
            }
        }
        let mut dmt = Dmt::new();
        let tail_start = match &snapshot {
            Some(ckpt) => {
                journal::replay_tolerant(&mut dmt, &ckpt.records);
                report.used_checkpoint = Some(ckpt.covers_seq);
                report.snapshot_records = ckpt.records.len() as u64;
                ckpt.tail_offset
            }
            None => 0,
        };
        let journal_file = cluster.cpfs_mut().create_or_open(JOURNAL_NAME);
        let journal_size = cluster
            .cpfs()
            .meta(journal_file)
            .map(|m| m.size)
            .unwrap_or(0);
        let mut journal_offset = tail_start;
        if journal_size > tail_start {
            if let Ok(Some(bytes)) =
                cluster
                    .cpfs()
                    .read_bytes(journal_file, tail_start, journal_size - tail_start)
            {
                let tail = journal::decode_prefix(&bytes);
                journal::replay_tolerant(&mut dmt, &tail.records);
                report.tail_records = tail.records.len() as u64;
                report.dropped_journal_bytes = tail.dropped_bytes;
                journal_offset = tail_start + (bytes.len() as u64 - tail.dropped_bytes);
                if tail.dropped_bytes > 0 {
                    // Truncate the undecodable suffix so future appends
                    // land on clean ground instead of behind a bad frame.
                    let allowed = charge(CrashSite::RecoveryTruncate, tail.dropped_bytes);
                    if allowed > 0 {
                        let _ = cluster
                            .cpfs_mut()
                            .discard(journal_file, journal_offset, allowed);
                    }
                    if allowed < tail.dropped_bytes {
                        return None;
                    }
                }
            }
        }
        // A dirty extent's seal may predate a torn overwrite of its bytes;
        // trusting it would let the scrubber discard acknowledged data.
        dmt.clear_dirty_checksums();
        // Coverage validation: a mapping whose cache bytes are not all
        // present points at a torn data write (or a crashed CServer). Drop
        // it — clean extents re-fetch from OPFS; dirty ones are real loss.
        let mut metrics = S4dMetrics::default();
        let mut extents: Vec<(FileId, u64, u64, FileId, u64, bool)> = dmt
            .iter_extents()
            .map(|(f, o, e)| (f, o, e.len, e.c_file, e.c_offset, e.dirty))
            .collect();
        extents.sort_unstable_by_key(|&(f, o, ..)| (f.0, o));
        for (file, d_off, len, c_file, c_off, dirty) in extents {
            let covered = cluster
                .cpfs()
                .covered_bytes(c_file, c_off, len)
                .unwrap_or(0);
            if covered == len {
                continue;
            }
            dmt.remove(file, d_off);
            let allowed = charge(CrashSite::RecoveryDrop, len);
            if allowed > 0 {
                let _ = cluster.cpfs_mut().discard(c_file, c_off, allowed);
            }
            if allowed < len {
                return None;
            }
            report.dropped_extents += 1;
            if dirty {
                report.dirty_bytes_lost += len;
                metrics.dirty_bytes_lost += len;
            } else {
                metrics.crash_invalidated_bytes += len;
            }
        }
        // The drops above are re-derived deterministically from cluster
        // state on any future recovery; they need no journal records.
        let _ = dmt.take_pending_journal();
        // Orphan sweep: cache-file bytes no extent maps. Per-shard cache
        // files (`*.s<k>.cache`) share the `.cache` suffix, so the sweep
        // covers every shard's file.
        let mut mapped_ranges: HashMap<FileId, Vec<(u64, u64)>> = HashMap::new();
        for (_, _, e) in dmt.iter_extents() {
            mapped_ranges
                .entry(e.c_file)
                .or_default()
                .push((e.c_offset, e.len));
        }
        let mut cache_files: Vec<(FileId, u64)> = cluster
            .cpfs()
            .iter_files()
            .filter(|m| m.name.ends_with(".cache"))
            .map(|m| (m.id, m.size))
            .collect();
        cache_files.sort_unstable_by_key(|&(f, _)| f.0);
        for (f, size) in cache_files {
            if size == 0 {
                continue;
            }
            let mut ranges = mapped_ranges.remove(&f).unwrap_or_default();
            ranges.sort_unstable();
            let mut cursor = 0u64;
            let mut holes: Vec<(u64, u64)> = Vec::new();
            for (off, len) in ranges {
                if off > cursor {
                    holes.push((cursor, off - cursor));
                }
                cursor = cursor.max(off + len);
            }
            if size > cursor {
                holes.push((cursor, size - cursor));
            }
            for (off, len) in holes {
                let covered = cluster.cpfs().covered_bytes(f, off, len).unwrap_or(0);
                if covered > 0 {
                    let allowed = charge(CrashSite::RecoverySweep, len);
                    if allowed > 0 {
                        let _ = cluster.cpfs_mut().discard(f, off, allowed);
                    }
                    if allowed < len {
                        return None;
                    }
                    report.orphan_bytes_discarded += covered;
                }
            }
        }
        let capacity = config.cache_capacity;
        let mut s = S4dCache::new(config, params);
        s.plane.adopt(dmt, capacity);
        s.metrics = metrics;
        s.dur.journal_file = Some(journal_file);
        s.dur.journal_offset = journal_offset;
        s.dur.journal_base = tail_start;
        s.dur.last_ckpt_tail = tail_start;
        s.dur.checkpoint_seq = report.used_checkpoint.unwrap_or(0);
        s.dur.records_at_last_ckpt = s.plane.journal_records_total();
        s.dur.last_recovery = Some(report);
        Some((s, report))
    }
}
