//! The durability engine: journal, checkpoint slots, crash fuse,
//! recovery.
//!
//! Everything that makes DMT mutations survive a middleware crash lives
//! behind [`DurabilityEngine`]: the append-only record journal (write
//! offsets, group-commit batching, synchronous appends), the A/B
//! checkpoint slots with journal compaction, and the crash fuse the
//! torture harness arms. [`recovery`] rebuilds a middleware from the
//! persisted cluster state alone; [`journal`] is the pure record codec;
//! [`crash`] is the fuse itself.
//!
//! Ordering is enforced by API shape, not convention: the only way to
//! discard cache bytes whose removal must first be journaled is
//! [`DurabilityEngine::discard_cache`], which demands a
//! [`DurabilityHandle`] — and the only source of handles is
//! [`DurabilityEngine::append_journal_sync`]. A caller cannot reach the
//! destructive effect without having made the metadata durable first
//! (DESIGN.md §9, §12).

pub mod checkpoint;
pub mod crash;
pub mod group;
pub mod journal;
pub(crate) mod recovery;
mod replay;

use std::cell::RefCell;
use std::rc::Rc;

use s4d_mpiio::{Cluster, PlannedIo, Tier};
use s4d_pfs::{FileId, Priority};
use s4d_storage::IoKind;

use crate::config::S4dConfig;
use crate::metrics::S4dMetrics;
use crate::names::{CKPT_SLOT_A, CKPT_SLOT_B, JOURNAL_NAME};
use crate::shard::{MetadataPlane, ShardRouter};

use crash::{CrashFuse, CrashSite};
use group::GroupCommitQueue;
use journal::JournalRecord;
use recovery::RecoveryReport;

/// Proof that every pending removal record is durably journaled.
///
/// Issued only by [`DurabilityEngine::append_journal_sync`] and demanded
/// by [`DurabilityEngine::discard_cache`], so the
/// journal-before-destruction ordering of DESIGN.md §9 is a type-system
/// fact rather than a reviewable convention.
#[derive(Debug)]
pub(crate) struct DurabilityHandle(());

/// Owns every durable-metadata concern of the cache: the DMT journal,
/// the double-buffered checkpoint slots, and the crash fuse that gates
/// all durable effects.
#[derive(Debug)]
pub(crate) struct DurabilityEngine {
    /// The DMT journal file in CPFS.
    journal_file: Option<FileId>,
    /// Next append offset in the journal file.
    journal_offset: u64,
    /// Per-shard queues of records awaiting the next group-committed
    /// journal write. With one shard this is a single queue and the
    /// batching rule is exactly the pre-shard one.
    group: GroupCommitQueue,
    /// The routing function shared with the metadata plane, used to
    /// requeue a failed batch back to its owning per-shard queues.
    router: ShardRouter,
    /// Full record log (kept only when the config asks; crash-recovery
    /// tests read it back as "the journal file's contents").
    journal_log: Vec<JournalRecord>,
    /// Torture-harness hook: when attached, every durable effect asks the
    /// fuse for permission and a crash truncates it mid-effect.
    crash_fuse: Option<Rc<RefCell<CrashFuse>>>,
    /// Sequence number of the last installed checkpoint (0 = none yet).
    checkpoint_seq: u64,
    /// Journal offset the last checkpoint covers.
    last_ckpt_tail: u64,
    /// `journal_records_total` at the last checkpoint (threshold base).
    records_at_last_ckpt: u64,
    /// Start of the live (uncompacted) journal region.
    journal_base: u64,
    /// True while a synchronous journal append has failed (space
    /// exhaustion or media error under the journal) and its records are
    /// waiting in `journal_pending` for a retry at the *same* offset.
    /// While stalled, no journal write may be planned at a later offset:
    /// a hole in the journal would truncate every later acked record at
    /// recovery.
    stalled: bool,
    /// What the last `recover_from_cluster` found, if this instance was
    /// built by one.
    last_recovery: Option<RecoveryReport>,
}

impl DurabilityEngine {
    /// A fresh engine: no journal file yet, nothing pending.
    pub(crate) fn new(router: ShardRouter) -> Self {
        DurabilityEngine {
            journal_file: None,
            journal_offset: 0,
            group: GroupCommitQueue::new(router.count()),
            router,
            journal_log: Vec::new(),
            crash_fuse: None,
            checkpoint_seq: 0,
            last_ckpt_tail: 0,
            records_at_last_ckpt: 0,
            journal_base: 0,
            stalled: false,
            last_recovery: None,
        }
    }

    /// Attaches the crash fuse for the torture harness.
    pub(crate) fn attach_crash_fuse(&mut self, fuse: Rc<RefCell<CrashFuse>>) {
        self.crash_fuse = Some(fuse);
    }

    /// True once an attached crash fuse has fired.
    pub(crate) fn fuse_dead(&self) -> bool {
        self.crash_fuse
            .as_ref()
            .is_some_and(|f| f.borrow().is_dead())
    }

    /// Charges the crash fuse for a durable effect of `len` bytes at
    /// `site`, returning the affordable prefix (all of `len` when no fuse
    /// is attached). Callers must apply only the returned prefix.
    pub(crate) fn fuse_consume(&mut self, site: CrashSite, len: u64) -> u64 {
        match &self.crash_fuse {
            Some(f) => f.borrow_mut().consume(site, len),
            None => len,
        }
    }

    /// The report of the recovery that built this instance, if any.
    pub(crate) fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// The retained journal record log.
    pub(crate) fn journal_log(&self) -> &[JournalRecord] {
        &self.journal_log
    }

    /// Resolves (creating on first use) the journal file.
    pub(crate) fn ensure_journal(&mut self, cluster: &mut Cluster) -> FileId {
        match self.journal_file {
            Some(f) => f,
            None => {
                let f = cluster.cpfs_mut().create_or_open(JOURNAL_NAME);
                self.journal_file = Some(f);
                f
            }
        }
    }

    /// Moves every shard's fresh mutation records into that shard's
    /// group-commit queue (and the retained log, when configured), in
    /// shard order — with one shard, the exact pre-shard collection order.
    pub(crate) fn collect_pending_records(
        &mut self,
        plane: &mut MetadataPlane,
        config: &S4dConfig,
    ) {
        for shard in 0..plane.shard_count() {
            let fresh = plane.take_shard_pending(shard);
            if fresh.is_empty() {
                continue;
            }
            if config.record_journal_log {
                self.journal_log.extend_from_slice(&fresh);
            }
            self.group.extend(shard, fresh);
        }
    }

    /// Accumulates pending DMT mutations and appends a journal write to
    /// `ops` once a group-commit batch is full. Returns the reserved
    /// offset and the records the frame carries, so the caller can
    /// register a [`crate::background::Pending::Journal`] unwind: if the
    /// plan carrying the op fails, the reservation must be rolled back
    /// ([`DurabilityEngine::unplan_journal`]) or the journal gets a hole
    /// that truncates every later acked record at recovery.
    pub(crate) fn journal_op(
        &mut self,
        cluster: &mut Cluster,
        plane: &mut MetadataPlane,
        config: &S4dConfig,
        metrics: &mut S4dMetrics,
        ops: &mut Vec<PlannedIo>,
    ) -> Option<(u64, Vec<JournalRecord>)> {
        self.collect_pending_records(plane, config);
        if !self.group.any_due(config.journal_batch_records) {
            return None;
        }
        let (op, records) =
            self.drain_journal(cluster, plane, config, metrics, Priority::Normal)?;
        let offset = op.offset;
        ops.push(op);
        Some((offset, records))
    }

    /// Builds a journal write covering every pending record, if any. The
    /// op carries the encoded frames, so functional-mode stores persist
    /// the real journal and recovery can read it back. The append offset
    /// is reserved now; the bytes land when the runner executes the op
    /// (crash before then = a hole that stops prefix decoding — the same
    /// safe outcome as losing the records outright).
    pub(crate) fn drain_journal(
        &mut self,
        cluster: &mut Cluster,
        plane: &mut MetadataPlane,
        config: &S4dConfig,
        metrics: &mut S4dMetrics,
        priority: Priority,
    ) -> Option<(PlannedIo, Vec<JournalRecord>)> {
        self.collect_pending_records(plane, config);
        if self.stalled {
            // A failed sync append owns the current offset; planning a
            // write past it would leave a hole that truncates every later
            // record at recovery. Records keep accumulating until the
            // retry succeeds.
            return None;
        }
        if self.group.is_empty() {
            return None;
        }
        let journal = self.ensure_journal(cluster);
        let records = self.group.drain_all();
        let data = journal::encode_batch(&records);
        let len = data.len() as u64;
        let op = PlannedIo {
            tier: Tier::CServers,
            file: journal,
            kind: IoKind::Write,
            offset: self.journal_offset,
            len,
            priority,
            data: Some(data),
            app_offset: None,
        };
        self.journal_offset += len;
        metrics.journal_writes += 1;
        metrics.journal_bytes += len;
        metrics.journal_records_written += records.len() as u64;
        Some((op, records))
    }

    /// Rolls back a planned journal frame whose carrying plan failed
    /// before the bytes landed. The records requeue ahead of anything
    /// newer (replay order is preserved), and when the frame was the
    /// newest reservation the append offset rewinds so the retry lands
    /// at the same place — no hole, so no later acked record is
    /// truncated at recovery.
    pub(crate) fn unplan_journal(
        &mut self,
        offset: u64,
        records: Vec<JournalRecord>,
        metrics: &mut S4dMetrics,
    ) {
        let len = records.len() as u64 * crate::DMT_RECORD_BYTES;
        if self.journal_offset == offset + len {
            self.journal_offset = offset;
        }
        // When a later frame is already reserved past this one the offset
        // stays (the hole is a torn tail recovery handles); the records
        // still requeue — at the front of their owning shard queues, so a
        // later drain reproduces the failed batch's order — and the
        // mutations eventually persist.
        self.group.requeue_front(records, &self.router);
        metrics.journal_requeues += 1;
    }

    /// Appends `extra` plus every pending record to the journal right now,
    /// bypassing the planned-I/O path — for records whose durability must
    /// precede an imminent destructive effect (Removes before a discard,
    /// FlushIntents before the flush plan is issued). The write is applied
    /// through the crash fuse: a torture crash leaves a torn suffix that
    /// recovery truncates.
    ///
    /// Returns the [`DurabilityHandle`] that unlocks
    /// [`DurabilityEngine::discard_cache`] for the effects the append
    /// covers, or `None` when the append failed (space exhaustion or a
    /// media error under the journal region): the records stay pending at
    /// the *same* offset, the engine is stalled (see
    /// [`DurabilityEngine::is_stalled`]), and the caller must not perform
    /// the destructive effect it wanted the proof for.
    pub(crate) fn append_journal_sync(
        &mut self,
        cluster: &mut Cluster,
        plane: &mut MetadataPlane,
        config: &S4dConfig,
        metrics: &mut S4dMetrics,
        extra: &[JournalRecord],
    ) -> Option<DurabilityHandle> {
        self.collect_pending_records(plane, config);
        if !extra.is_empty() {
            if config.record_journal_log {
                self.journal_log.extend_from_slice(extra);
            }
            for r in extra {
                let (f, o) = r.d_key();
                self.group.push(self.router.shard_of(f, o), *r);
            }
        }
        if self.group.is_empty() {
            self.stalled = false;
            return Some(DurabilityHandle(()));
        }
        let journal = self.ensure_journal(cluster);
        let records = self.group.drain_all();
        let data = journal::encode_batch(&records);
        let len = data.len() as u64;
        let allowed = self.fuse_consume(CrashSite::SyncAppend, len);
        match cluster
            .cpfs_mut()
            .apply_bytes(journal, self.journal_offset, allowed, Some(&data))
        {
            Ok(()) => {
                // The full reservation is consumed even on a torn write:
                // this instance is dead then, and recovery works from the
                // cluster.
                self.journal_offset += len;
                self.stalled = false;
                metrics.journal_writes += 1;
                metrics.journal_bytes += len;
                metrics.journal_records_written += records.len() as u64;
                Some(DurabilityHandle(()))
            }
            Err(err) => {
                // The append had no effect (apply_bytes is all-or-nothing
                // under injected faults). Requeue the records and do not
                // advance the offset: a hole in the journal would truncate
                // every later acked record at recovery. The engine stalls
                // until a retry at this same offset succeeds.
                self.group.requeue_front(records, &self.router);
                self.stalled = true;
                metrics.durability_stalls += 1;
                match err {
                    s4d_pfs::PfsError::NoSpace { .. } => metrics.nospace_failures += 1,
                    s4d_pfs::PfsError::MediaError { .. } => metrics.media_failures += 1,
                    _ => {}
                }
                None
            }
        }
    }

    /// True while a failed synchronous append is waiting to be retried.
    pub(crate) fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Retries a stalled synchronous append, if any. Returns `true` when
    /// the engine is unstalled afterwards (including when it never was).
    pub(crate) fn retry_stall(
        &mut self,
        cluster: &mut Cluster,
        plane: &mut MetadataPlane,
        config: &S4dConfig,
        metrics: &mut S4dMetrics,
    ) -> bool {
        if !self.stalled {
            return true;
        }
        self.append_journal_sync(cluster, plane, config, metrics, &[])
            .is_some()
    }

    /// Discards cache bytes whose removal records the presented handle
    /// proves durable, charging the eviction crash site. This is the
    /// *only* path to `discard` for mapped cache data — see the module
    /// docs for why the handle parameter exists.
    pub(crate) fn discard_cache(
        &mut self,
        cluster: &mut Cluster,
        _proof: &DurabilityHandle,
        c_file: FileId,
        c_offset: u64,
        len: u64,
    ) {
        let allowed = self.fuse_consume(CrashSite::EvictDiscard, len);
        if allowed > 0 {
            let _ = cluster.cpfs_mut().discard(c_file, c_offset, allowed);
        }
    }

    /// Installs a DMT checkpoint snapshot once enough journal growth has
    /// accumulated, then compacts (discards) the journal region the
    /// snapshot covers. Double-buffered slots plus a CRC over the whole
    /// snapshot make the install atomic: a torn write fails the CRC and
    /// recovery falls back to the previous slot.
    pub(crate) fn maybe_checkpoint(
        &mut self,
        cluster: &mut Cluster,
        plane: &mut MetadataPlane,
        config: &S4dConfig,
        metrics: &mut S4dMetrics,
    ) {
        let records_since = plane
            .journal_records_total()
            .saturating_sub(self.records_at_last_ckpt);
        let bytes_since = self.journal_offset.saturating_sub(self.last_ckpt_tail);
        if records_since < config.checkpoint_after_records
            && bytes_since < config.checkpoint_after_bytes
        {
            return;
        }
        // Force-drain so the snapshot covers every journaled mutation and
        // the tail past `tail_offset` is an exact record-order suffix.
        if self
            .append_journal_sync(cluster, plane, config, metrics, &[])
            .is_none()
        {
            // Journal stalled (ENOSPC / media error): a snapshot now would
            // claim coverage of records that are not durable. Skip; the
            // previous checkpoint plus the journal tail stay authoritative.
            metrics.checkpoints_skipped += 1;
            return;
        }
        if self.fuse_dead() {
            return;
        }
        let tail_offset = self.journal_offset;
        let mut live: Vec<(FileId, u64, crate::dmt::MapExtent)> =
            plane.iter_extents().map(|(f, o, e)| (f, o, *e)).collect();
        // Globally sorted snapshot order — independent of shard layout —
        // keeps the byte stream (and therefore the torture harness's
        // crash points) deterministic and identical at any shard count.
        live.sort_unstable_by_key(|&(f, o, _)| (f.0, o));
        let mut records = Vec::with_capacity(live.len());
        for (f, o, e) in live {
            records.push(JournalRecord::Insert {
                d_file: f,
                d_offset: o,
                len: e.len,
                c_file: e.c_file,
                c_offset: e.c_offset,
                dirty: e.dirty,
            });
            if let Some(sum) = e.checksum {
                records.push(JournalRecord::Seal {
                    d_file: f,
                    d_offset: o,
                    checksum: sum,
                    len: e.len,
                });
            }
        }
        let seq = self.checkpoint_seq + 1;
        let data = journal::encode_checkpoint(seq, tail_offset, &records);
        let slot_name = if seq % 2 == 1 {
            CKPT_SLOT_A
        } else {
            CKPT_SLOT_B
        };
        let slot = cluster.cpfs_mut().create_or_open(slot_name);
        let len = data.len() as u64;
        let allowed = self.fuse_consume(CrashSite::CheckpointWrite, len);
        if cluster
            .cpfs_mut()
            .apply_bytes(slot, 0, allowed, Some(&data))
            .is_err()
        {
            // Slot write failed outright (ENOSPC / media error on the
            // slot's extents): nothing landed, the previous checkpoint
            // stays authoritative, and we retry on a later poll.
            metrics.checkpoints_skipped += 1;
            return;
        }
        if allowed < len {
            // Torn install: the CRC trailer never landed, so recovery keeps
            // using the previous slot. This instance is dead.
            return;
        }
        // Compact: the journal below the snapshot's tail is dead weight.
        let compacted = tail_offset.saturating_sub(self.journal_base);
        if compacted > 0 {
            let journal = self.ensure_journal(cluster);
            let allowed = self.fuse_consume(CrashSite::JournalTruncate, compacted);
            if allowed > 0 {
                let _ = cluster
                    .cpfs_mut()
                    .discard(journal, self.journal_base, allowed);
            }
        }
        self.checkpoint_seq = seq;
        self.last_ckpt_tail = tail_offset;
        self.records_at_last_ckpt = plane.journal_records_total();
        self.journal_base = tail_offset;
        metrics.checkpoints += 1;
        metrics.checkpoint_bytes += len;
        metrics.records_compacted += records_since;
    }
}
