//! Journal replay: rebuilding a Data Mapping Table from a record stream.
//!
//! Split out of [`super::journal`] (which keeps the record/checkpoint
//! codecs) so each module stays within the file budget and so the sharded
//! metadata plane can re-use [`apply_record_tolerant`] — the single source
//! of truth for how one record mutates a table — when routing shard-tagged
//! records of a group-commit batch to their owning shards during recovery.

use crate::dmt::Dmt;
use crate::journal::JournalRecord;

/// Rebuilds a Data Mapping Table from a journal record stream — the
/// recovery path after a middleware crash.
///
/// Versions and LRU recency are runtime state and start fresh; the mapping
/// itself (extents, cache locations, dirty flags) is reconstructed exactly.
pub fn replay(records: &[JournalRecord]) -> Dmt {
    let mut dmt = Dmt::new();
    for r in records {
        match *r {
            JournalRecord::Insert {
                d_file,
                d_offset,
                len,
                c_file,
                c_offset,
                dirty,
            } => dmt.insert(d_file, d_offset, len, c_file, c_offset, dirty),
            _ => apply_record_tolerant(&mut dmt, r),
        }
    }
    // Replaying re-recorded every mutation; a recovered table starts with
    // an empty pending set.
    let _ = dmt.take_pending_journal();
    dmt
}

/// Applies one record to a table that may not be in the exact state the
/// record was produced against. `Insert` fills only the still-uncovered
/// gaps of its range (with correspondingly shifted cache offsets); every
/// other record no-ops when its target extent is absent or mismatched.
///
/// Shared by [`replay_tolerant`] and the per-shard replay of
/// [`crate::MetadataPlane`] so single-table and sharded recovery cannot
/// diverge.
pub fn apply_record_tolerant(dmt: &mut Dmt, r: &JournalRecord) {
    match *r {
        JournalRecord::Insert {
            d_file,
            d_offset,
            len,
            c_file,
            c_offset,
            dirty,
        } => {
            let view = dmt.view(d_file, d_offset, len);
            for (g_off, g_len) in view.gaps {
                dmt.insert(
                    d_file,
                    g_off,
                    g_len,
                    c_file,
                    c_offset + (g_off - d_offset),
                    dirty,
                );
            }
        }
        JournalRecord::SetDirty {
            d_file,
            d_offset,
            len,
        } => dmt.mark_dirty(d_file, d_offset, len),
        JournalRecord::SetClean { d_file, d_offset } => {
            dmt.force_clean(d_file, d_offset);
        }
        JournalRecord::Remove { d_file, d_offset } => {
            dmt.remove(d_file, d_offset);
        }
        JournalRecord::Seal {
            d_file,
            d_offset,
            checksum,
            len,
        } => {
            dmt.apply_seal(d_file, d_offset, len, checksum);
        }
        JournalRecord::FlushIntent { .. } => {}
    }
}

/// Rebuilds a table tolerantly: like [`replay`], but every record — not
/// just the non-`Insert` kinds — is applied with tolerant (skip, don't
/// panic) semantics, so a stream whose prefix was already folded into a
/// checkpoint snapshot (or that lost interior records to a torn journal
/// region) replays without panicking. On a well-formed exact history the
/// result is identical to [`replay`].
pub fn replay_tolerant(dmt: &mut Dmt, records: &[JournalRecord]) {
    for r in records {
        apply_record_tolerant(dmt, r);
    }
    let _ = dmt.take_pending_journal();
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use s4d_pfs::FileId;

    const F: FileId = FileId(3);
    const CF: FileId = FileId(9);

    #[test]
    fn replay_reconstructs_simple_history() {
        let mut live = Dmt::new();
        live.insert(F, 0, 100, CF, 0, false);
        live.mark_dirty(F, 20, 30);
        live.insert(F, 500, 50, CF, 100, true);
        let v = live.get(F, 500).unwrap().version;
        live.mark_clean_if(F, 500, v);
        live.remove(F, 0); // the [0,20) clean piece after the split
        let log = live.take_pending_journal();
        let recovered = replay(&log);
        // Byte-for-byte identical coverage.
        let a = live.view(F, 0, 600);
        let b = recovered.view(F, 0, 600);
        assert_eq!(a, b);
        assert_eq!(live.mapped_bytes(), recovered.mapped_bytes());
        assert_eq!(live.dirty_bytes(), recovered.dirty_bytes());
    }

    proptest! {
        /// Any sequence of inserts-into-gaps / dirty-markings / removals
        /// replays to an identical mapping.
        #[test]
        fn prop_replay_matches_live(
            ops in proptest::collection::vec((0u64..300, 1u64..50, 0u8..3), 1..50)
        ) {
            let mut live = Dmt::new();
            let mut next_c = 0u64;
            for (off, len, kind) in ops {
                match kind {
                    0 => {
                        // Insert the gaps of the range.
                        let view = live.view(F, off, len);
                        for (g_off, g_len) in view.gaps {
                            live.insert(F, g_off, g_len, CF, next_c, false);
                            next_c += g_len;
                        }
                    }
                    1 => live.mark_dirty(F, off, len),
                    _ => {
                        // Remove the extent at the range start, if any.
                        live.remove(F, off);
                    }
                }
            }
            let log = live.take_pending_journal();
            let recovered = replay(&log);
            prop_assert_eq!(live.view(F, 0, 512), recovered.view(F, 0, 512));
            prop_assert_eq!(live.mapped_bytes(), recovered.mapped_bytes());
            prop_assert_eq!(live.dirty_bytes(), recovered.dirty_bytes());
            prop_assert_eq!(live.entry_count(), recovered.entry_count());
        }
    }

    #[test]
    fn tolerant_replay_of_a_duplicated_suffix_converges() {
        // A snapshot already contains the effect of records that were still
        // pending when it was taken; replaying them again on top must be a
        // no-op overall.
        let mut live = Dmt::new();
        live.insert(F, 0, 100, CF, 0, false);
        live.mark_dirty(F, 20, 30);
        live.remove(F, 0);
        let log = live.take_pending_journal();
        let mut dmt = replay(&log);
        replay_tolerant(&mut dmt, &log[1..]); // re-apply a suffix
        assert_eq!(dmt.view(F, 0, 200), live.view(F, 0, 200));
        assert_eq!(dmt.mapped_bytes(), live.mapped_bytes());
        assert_eq!(dmt.dirty_bytes(), live.dirty_bytes());
    }

    #[test]
    fn tolerant_insert_fills_only_gaps_with_shifted_cache_offsets() {
        let mut dmt = Dmt::new();
        dmt.insert(F, 20, 30, CF, 500, true);
        replay_tolerant(
            &mut dmt,
            &[JournalRecord::Insert {
                d_file: F,
                d_offset: 0,
                len: 100,
                c_file: CF,
                c_offset: 1000,
                dirty: false,
            }],
        );
        let v = dmt.view(F, 0, 100);
        assert!(v.fully_covered());
        // [0,20) and [50,100) filled from the record, shifted; [20,50) kept.
        assert_eq!(v.pieces[0].c_offset, 1000);
        assert_eq!(v.pieces[1].c_offset, 500);
        assert!(v.pieces[1].dirty);
        assert_eq!(v.pieces[2].c_offset, 1000 + 50);
    }

    #[test]
    fn seal_records_survive_replay_and_mismatch_is_dropped() {
        let mut live = Dmt::new();
        live.insert(F, 0, 64, CF, 0, false);
        live.insert(F, 100, 32, CF, 64, false);
        let v0 = live.get(F, 0).unwrap().version;
        assert!(live.seal_if(F, 0, v0, 0xFEED_FACE));
        let log = live.take_pending_journal();
        let recovered = replay(&log);
        assert_eq!(recovered.get(F, 0).unwrap().checksum, Some(0xFEED_FACE));
        assert_eq!(recovered.get(F, 100).unwrap().checksum, None);
        // A seal whose length no longer matches the extent does not apply.
        let mut dmt = Dmt::new();
        dmt.insert(F, 0, 32, CF, 0, false);
        replay_tolerant(
            &mut dmt,
            &[JournalRecord::Seal {
                d_file: F,
                d_offset: 0,
                checksum: 1,
                len: 64,
            }],
        );
        assert_eq!(dmt.get(F, 0).unwrap().checksum, None);
    }
}
