//! Stage 3 — space claim and the atomic admission protocol.
//!
//! Consumes the redirect stage's [`WriteRoute`] and turns the admission
//! ask into effects: clean-LRU eviction (`make_room`, with the
//! journal-before-discard ordering the durability engine's handle
//! enforces), extent insertion, and the data-before-metadata journal
//! phase that makes admission atomic (DESIGN.md §9). The eager-fetch
//! ablation claims space through the same path.

use s4d_mpiio::{AppRequest, Cluster, Plan, PlannedIo, Tier};
use s4d_pfs::{FileId, Priority};
use s4d_storage::IoKind;

use crate::background::Pending;
use crate::layer::S4dCache;
use crate::pipeline::{RequestCtx, WriteRoute};

impl S4dCache {
    /// Algorithm 1, write side, admission half (lines 3–14): claim space
    /// for the gaps of an admitted write, degrade to disk writes
    /// otherwise, and close the plan with the journal phase and seal
    /// registration.
    pub(crate) fn admit_write(
        &mut self,
        cluster: &mut Cluster,
        req: &AppRequest,
        cache: FileId,
        ctx: &RequestCtx,
        route: WriteRoute,
    ) -> Plan {
        let WriteRoute {
            mut ops,
            mut used_cache,
            gaps,
            gap_total,
            healthy,
        } = route;
        // The admission ask is sized per owning shard: each gap splits
        // into shard segments, and every shard with a non-zero ask must
        // make room or the whole admission degrades to OPFS. At
        // `shard_count = 1` this is one segment per gap and one
        // `make_room` call for `gap_total` — the legacy behaviour.
        let mut shard_asks: Vec<u64> = vec![0; self.plane.shard_count()];
        for &(g_off, g_len) in &gaps {
            for seg in self.plane.router().segments(req.file, g_off, g_len) {
                if let Some(ask) = shard_asks.get_mut(seg.shard) {
                    *ask += seg.len;
                }
            }
        }
        let admit = ctx.critical && gap_total > 0 && healthy && {
            let mut ok = true;
            for (shard, &ask) in shard_asks.iter().enumerate() {
                if ask > 0 && !self.make_room(cluster, shard, ask) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                self.metrics.admission_denied_space += 1;
            }
            ok
        };
        let mut fresh: Vec<(u64, u64)> = Vec::new();
        for &(g_off, g_len) in &gaps {
            if !admit {
                ops.push(self.data_op(
                    Tier::DServers,
                    req.file,
                    IoKind::Write,
                    g_off,
                    g_len,
                    g_off,
                    req,
                ));
                continue;
            }
            // `make_room` guaranteed capacity per shard, so `alloc`
            // should succeed for every admitted segment; degrade the
            // segment to a disk write if not.
            for seg in self.plane.router().segments(req.file, g_off, g_len) {
                let c_file = self.cache_file_for(req.file, seg.shard).unwrap_or(cache);
                if let Some(pieces) = self.plane.alloc(seg.shard, c_file, seg.len) {
                    let mut cursor = seg.offset;
                    for p in pieces {
                        self.plane
                            .insert(req.file, cursor, p.len, c_file, p.c_offset, true);
                        fresh.push((cursor, p.len));
                        ops.push(self.data_op(
                            Tier::CServers,
                            c_file,
                            IoKind::Write,
                            p.c_offset,
                            p.len,
                            cursor,
                            req,
                        ));
                        cursor += p.len;
                    }
                    used_cache = true;
                } else {
                    ops.push(self.data_op(
                        Tier::DServers,
                        req.file,
                        IoKind::Write,
                        seg.offset,
                        seg.len,
                        seg.offset,
                        req,
                    ));
                }
            }
        }
        if used_cache {
            self.metrics.writes_to_cache += 1;
        } else {
            self.metrics.writes_to_disk += 1;
        }
        // Atomic admission: the journal write describing new mappings runs
        // in a phase *after* the data writes (data-before-metadata). A
        // crash between the two leaves orphaned cache bytes — swept on
        // recovery — never a mapping to unwritten space.
        let mut journal_ops = Vec::new();
        let frame = self.dur.journal_op(
            cluster,
            &mut self.plane,
            &self.config,
            &mut self.metrics,
            &mut journal_ops,
        );
        let mut plan = Plan {
            tag: 0,
            lead_in: self.config.decision_overhead,
            phases: vec![ops],
            deadline: None,
        };
        if !journal_ops.is_empty() {
            plan.phases.push(journal_ops);
        }
        // Once the plan completes, seal the cache extents this write
        // filled: the checksum is computed from the bytes then on CPFS,
        // version-gated against racing overwrites. If the plan *fails*,
        // the fresh admissions and the journal reservation unwind
        // instead (`S4dCache::unwind_failed`).
        let seals: Vec<(FileId, u64, u64)> = self
            .plane
            .extents_overlapping(req.file, req.offset, req.len)
            .into_iter()
            .map(|(d_off, e)| (req.file, d_off, e.version))
            .collect();
        let mut actions: Vec<Pending> = Vec::new();
        if !fresh.is_empty() {
            actions.push(Pending::Admitted {
                orig: req.file,
                ranges: fresh,
            });
        }
        if let Some((offset, records)) = frame {
            actions.push(Pending::Journal { offset, records });
        }
        if !seals.is_empty() {
            actions.push(Pending::Seal(seals));
        }
        if !actions.is_empty() {
            plan.tag = self.bg.register(Pending::Multi(actions));
        }
        plan
    }

    /// Makes room for `len` more cache bytes on `shard`, evicting its
    /// clean LRU extents if needed (Algorithm 1 lines 4–10). Returns
    /// whether the shard's space now fits the ask. Eviction victims come
    /// only from the owning shard — cross-shard space cannot help,
    /// because the allocation must land in the shard's own cache file.
    pub(crate) fn make_room(&mut self, cluster: &mut Cluster, shard: usize, len: u64) -> bool {
        if self.plane.fits(shard, len) {
            return true;
        }
        let needed = len - self.plane.shard_available(shard);
        let bg = &self.bg;
        let victims = self
            .plane
            .evict_clean_lru_excluding(shard, needed, |file, off, elen| {
                bg.overlaps_pin(file, off, elen)
            });
        if victims.is_empty() {
            return self.plane.fits(shard, len);
        }
        if self.config.chaos_bug_skip_journal {
            // Deliberately broken protocol (chaos-oracle self-test, see
            // `S4dConfig::chaos_bug_skip_journal`): release the victims'
            // space for reuse while their Remove records are still only
            // in memory. A crash before the next group commit resurrects
            // the stale mappings over whatever the reused space holds by
            // then — reads through them serve foreign bytes.
            for (_file, _d_off, ext) in &victims {
                self.plane.release(shard, ext.c_file, ext.c_offset, ext.len);
                self.metrics.evictions += 1;
                self.metrics.evicted_bytes += ext.len;
            }
            return self.plane.fits(shard, len);
        }
        // `evict_clean_lru_excluding` removed the victims and queued
        // their Remove records; make those durable *before* the bytes
        // go away, so recovery never maps discarded space. The handle
        // is the proof `discard_cache` demands.
        let Some(proof) = self.dur.append_journal_sync(
            cluster,
            &mut self.plane,
            &self.config,
            &mut self.metrics,
            &[],
        ) else {
            // The journal is stalled (ENOSPC / media error): without a
            // durable Remove the victims' bytes may be neither discarded
            // nor reused, so undo the eviction — re-insert each victim
            // (the queued Remove plus this Insert replay to a no-op) and
            // deny the admission; the write degrades to OPFS.
            for (file, d_off, ext) in &victims {
                self.plane
                    .insert(*file, *d_off, ext.len, ext.c_file, ext.c_offset, ext.dirty);
            }
            return false;
        };
        for (_file, _d_off, ext) in &victims {
            self.plane.release(shard, ext.c_file, ext.c_offset, ext.len);
            // Dropping the cached bytes is a metadata operation; the data
            // still lives on DServers because the extent was clean.
            self.dur
                .discard_cache(cluster, &proof, ext.c_file, ext.c_offset, ext.len);
            self.metrics.evictions += 1;
            self.metrics.evicted_bytes += ext.len;
        }
        self.plane.fits(shard, len)
    }

    /// Eager-fetch ablation: append a second phase writing the missed gaps
    /// into the cache as part of the request itself.
    pub(crate) fn plan_eager_fetch(
        &mut self,
        cluster: &mut Cluster,
        req: &AppRequest,
        cache: FileId,
        gaps: &[(u64, u64)],
        plan: &mut Plan,
    ) {
        let total: u64 = gaps.iter().map(|&(_, l)| l).sum();
        let mut shard_asks: Vec<u64> = vec![0; self.plane.shard_count()];
        for &(g_off, g_len) in gaps {
            for seg in self.plane.router().segments(req.file, g_off, g_len) {
                if let Some(ask) = shard_asks.get_mut(seg.shard) {
                    *ask += seg.len;
                }
            }
        }
        let mut roomy = total > 0;
        for (shard, &ask) in shard_asks.iter().enumerate() {
            if ask > 0 && !self.make_room(cluster, shard, ask) {
                roomy = false;
                break;
            }
        }
        if !roomy {
            self.metrics.admission_denied_space += 1;
            return;
        }
        let mut phase = Vec::new();
        let mut pieces = Vec::new();
        for &(g_off, g_len) in gaps {
            for seg in self.plane.router().segments(req.file, g_off, g_len) {
                let c_file = self.cache_file_for(req.file, seg.shard).unwrap_or(cache);
                let Some(allocs) = self.plane.alloc(seg.shard, c_file, seg.len) else {
                    continue; // make_room guaranteed capacity; skip the segment if not
                };
                let mut cursor = seg.offset;
                for p in allocs {
                    phase.push(PlannedIo {
                        tier: Tier::CServers,
                        file: c_file,
                        kind: IoKind::Write,
                        offset: p.c_offset,
                        len: p.len,
                        priority: Priority::Normal,
                        data: None,
                        app_offset: None,
                    });
                    pieces.push((cursor, p.len, c_file, p.c_offset));
                    cursor += p.len;
                }
            }
        }
        let fetch = Pending::Fetch {
            orig: req.file,
            cdt_keys: vec![(req.offset, req.len)],
            pieces,
        };
        if plan.tag != 0 {
            // The read already registered an Unpin action; chain them.
            self.bg.chain(plan.tag, fetch);
        } else {
            plan.tag = self.bg.register(fetch);
        }
        self.metrics.fetches += 1;
        self.metrics.fetched_bytes += total;
        plan.phases.push(phase);
    }
}
