//! Stage 1 — the Data Identifier (§III.C).
//!
//! Classifies each request with the cost model (or the configured
//! ablation policy), inserts critical ranges into the CDT, and resolves
//! the request's cache file. The emitted [`RequestCtx`] is the typed
//! input of the redirect and admit stages.

use s4d_mpiio::AppRequest;

use crate::config::AdmissionPolicy;
use crate::layer::S4dCache;
use crate::pipeline::RequestCtx;

impl S4dCache {
    /// Classifies a request per the configured admission policy, inserting
    /// critical ranges into the CDT (the Data Identifier, §III.C).
    pub(crate) fn identify(&mut self, req: &AppRequest) -> RequestCtx {
        self.metrics.evaluated += 1;
        let benefit = self
            .evaluator
            .evaluate((req.rank.0, req.file.0), req.offset, req.len);
        let critical = match self.config.admission {
            AdmissionPolicy::Benefit => benefit.is_critical(),
            AdmissionPolicy::AlwaysAdmit => true,
            AdmissionPolicy::NeverAdmit => false,
            AdmissionPolicy::SizeBelow(t) => req.len < t,
        };
        if critical {
            self.metrics.critical += 1;
            // Routed by the request's start offset — the same key the
            // Rebuilder's flagged-candidate scan uses.
            self.plane.cdt_insert(req.file, req.offset, req.len);
        }
        RequestCtx {
            critical,
            // Shard 0's cache file doubles as the "opened through the
            // middleware" marker; per-gap files are resolved at admission.
            cache: self.cache_file_for(req.file, 0),
            benefit_secs: benefit.benefit_secs,
            predicted_secs: benefit.t_d_secs.max(benefit.t_c_secs),
        }
    }
}
