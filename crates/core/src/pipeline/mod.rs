//! The staged request pipeline: identify → redirect → admit.
//!
//! Every foreground request flows through three stages that mirror the
//! paper's components, each consuming a typed input and emitting a typed
//! decision:
//!
//! 1. [`identify`] — the Data Identifier (§III.C): cost-model
//!    classification and CDT insertion, emitting a [`RequestCtx`].
//! 2. [`redirect`] — the Redirector (§III.D): DMT lookup and
//!    health-aware tier choice, emitting a [`WriteRoute`] for writes and
//!    a complete plan for reads.
//! 3. [`admit`] — space claim and the atomic admission protocol
//!    (DESIGN.md §9): eviction via [`make_room`], extent insertion, and
//!    the data-before-metadata journal phase, consuming the
//!    [`WriteRoute`] and emitting the final plan.
//!
//! [`crate::S4dCache`]'s `Middleware::plan_io` is a thin driver over
//! these stages.
//!
//! [`make_room`]: crate::S4dCache::make_room

pub(crate) mod admit;
pub(crate) mod identify;
pub(crate) mod redirect;

use s4d_mpiio::PlannedIo;
use s4d_pfs::FileId;

/// Typed decision of the identify stage: what the Data Identifier
/// concluded about one request, consumed by redirect and admit.
#[derive(Debug)]
pub(crate) struct RequestCtx {
    /// Cost-model verdict (Eq. 7 / the configured admission policy):
    /// redirecting this request to the cache tier is predicted to win.
    pub(crate) critical: bool,
    /// The request's cache file, if its original file was opened through
    /// the middleware; `None` routes straight to DServers.
    pub(crate) cache: Option<FileId>,
    /// Predicted benefit `B = T_D − T_C` (Eq. 8), seconds. The
    /// backpressure policy sheds the lowest-benefit admissions first.
    pub(crate) benefit_secs: f64,
    /// The slower of the two predicted access times, seconds — the basis
    /// of the request's deadline budget (whichever tier the plan picks,
    /// the budget covers it).
    pub(crate) predicted_secs: f64,
}

/// Typed decision of the redirect stage for a write: where the mapped
/// parts already go, and what is left for the admit stage to place.
#[derive(Debug)]
pub(crate) struct WriteRoute {
    /// Ops covering the already-mapped pieces (re-dirtied cache writes).
    pub(crate) ops: Vec<PlannedIo>,
    /// Whether any piece was routed to the cache tier.
    pub(crate) used_cache: bool,
    /// Unmapped `(d_offset, len)` gaps the admit stage decides on.
    pub(crate) gaps: Vec<(u64, u64)>,
    /// Total gap bytes (the size of the admission ask).
    pub(crate) gap_total: u64,
    /// Tier health verdict at routing time: new admissions stripe over
    /// every CServer, so one quarantined server vetoes admission.
    pub(crate) healthy: bool,
}
