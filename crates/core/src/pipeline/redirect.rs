//! Stage 2 — the Redirector (§III.D, Algorithm 1).
//!
//! Consults the DMT and the health monitor to choose a tier for every
//! piece of a request. Writes emit a [`WriteRoute`] for the admit stage;
//! reads are fully decided here (they claim no space except through the
//! eager-fetch ablation, which delegates to admit).

use s4d_mpiio::{AppRequest, Cluster, Plan, PlannedIo, Tier};
use s4d_pfs::{FileId, Priority};
use s4d_sim::SimTime;
use s4d_storage::IoKind;

use crate::background::Pending;
use crate::layer::S4dCache;
use crate::pipeline::{RequestCtx, WriteRoute};

impl S4dCache {
    /// Algorithm 1, write side, routing half: re-dirty and route the
    /// mapped pieces, size the admission ask, and take the tier-health
    /// verdict. The admit stage decides the gaps.
    pub(crate) fn route_write(
        &mut self,
        now: SimTime,
        req: &AppRequest,
        ctx: &RequestCtx,
    ) -> WriteRoute {
        let mut ops: Vec<PlannedIo> = Vec::new();
        let view = self.plane.view(req.file, req.offset, req.len);
        let mut used_cache = false;

        // While the journal is stalled no new record can be made durable
        // before this write's ack, so the plan must not create any
        // (journal-before-ack): fresh admissions degrade to OPFS below,
        // and clean mapped pieces are written *through* — both copies
        // updated, the extent stays clean — instead of re-dirtied. Dirty
        // pieces are unaffected: their durable state already says dirty,
        // and overwriting dirty bytes needs no new record.
        let stalled = self.dur.is_stalled();

        // Mapped parts: the request is already served by CServers (line 22).
        for piece in &view.pieces {
            if stalled && !piece.dirty {
                self.plane.unseal(req.file, piece.d_offset, piece.len);
                ops.push(self.data_op(
                    Tier::CServers,
                    piece.c_file,
                    IoKind::Write,
                    piece.c_offset,
                    piece.len,
                    piece.d_offset,
                    req,
                ));
                ops.push(self.data_op(
                    Tier::DServers,
                    req.file,
                    IoKind::Write,
                    piece.d_offset,
                    piece.len,
                    piece.d_offset,
                    req,
                ));
                self.metrics.stall_writethroughs += 1;
                used_cache = true;
                continue;
            }
            self.plane.mark_dirty(req.file, piece.d_offset, piece.len);
            ops.push(self.data_op(
                Tier::CServers,
                piece.c_file,
                IoKind::Write,
                piece.c_offset,
                piece.len,
                piece.d_offset,
                req,
            ));
            used_cache = true;
        }

        // Unmapped parts: admission requires the whole tier healthy. New
        // admissions stripe over every CServer, so one quarantined server
        // pauses admission entirely — consistency over throughput while
        // the tier is suspect. Backpressure (when enabled) folds in the
        // same way: a congested tier sheds marginal admissions to OPFS.
        let gap_total: u64 = view.gaps.iter().map(|&(_, l)| l).sum();
        let mut healthy = !self.health.any_unhealthy(now);
        if ctx.critical && gap_total > 0 && !healthy {
            self.metrics.admission_denied_health += 1;
        }
        if stalled {
            // An admission's Insert record could not be made durable
            // before the ack; the gaps go straight to OPFS instead.
            if ctx.critical && gap_total > 0 && healthy {
                self.metrics.admission_denied_stall += 1;
            }
            healthy = false;
        }
        if healthy && self.shed_admission(ctx) {
            if ctx.critical && gap_total > 0 {
                self.metrics.shed_admissions += 1;
            }
            healthy = false;
        }
        WriteRoute {
            ops,
            used_cache,
            gaps: view.gaps,
            gap_total,
            healthy,
        }
    }

    /// Algorithm 1, read side (with the lazy `C_flag` marking of §III.E).
    pub(crate) fn plan_read(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        req: &AppRequest,
        ctx: &RequestCtx,
    ) -> Plan {
        let Some(cache) = ctx.cache else {
            // Not opened through the middleware: route straight to disk.
            return self.direct_plan(req);
        };
        if self.config.verify_on_read {
            // Verify the seals of every cached extent in range before
            // routing: corrupt clean bytes are repaired from DServers
            // first, and unrecoverable dirty corruption is dropped (the
            // read then serves the last flushed version from DServers
            // instead of silently returning bad bytes).
            self.verify_range(cluster, req.file, req.offset, req.len);
        }
        let mut ops: Vec<PlannedIo> = Vec::new();
        let view = self.plane.view(req.file, req.offset, req.len);
        self.plane.touch_range(req.file, req.offset, req.len);
        // Graceful degradation: a *clean* cached piece striped over a
        // quarantined CServer is served from OPFS instead (same bytes,
        // none of the risk); under backpressure a congested (deep-queued
        // or fail-slow) CServer counts too. Dirty pieces have no other
        // copy — they keep routing to the cache, and the runner's
        // retry/replan machinery rides out the outage.
        let mut cache_pieces: Vec<(u64, u64)> = Vec::new();
        for piece in &view.pieces {
            if !piece.dirty
                && (self.cache_range_unhealthy(cluster, now, piece.c_offset, piece.len)
                    || self.cache_range_congested(cluster, piece.c_offset, piece.len))
            {
                self.metrics.fallback_reads += 1;
                self.metrics.fallback_bytes += piece.len;
                ops.push(self.data_op(
                    Tier::DServers,
                    req.file,
                    IoKind::Read,
                    piece.d_offset,
                    piece.len,
                    piece.d_offset,
                    req,
                ));
                continue;
            }
            cache_pieces.push((piece.d_offset, piece.len));
            ops.push(self.data_op(
                Tier::CServers,
                piece.c_file,
                IoKind::Read,
                piece.c_offset,
                piece.len,
                piece.d_offset,
                req,
            ));
        }
        for &(g_off, g_len) in &view.gaps {
            ops.push(self.data_op(
                Tier::DServers,
                req.file,
                IoKind::Read,
                g_off,
                g_len,
                g_off,
                req,
            ));
        }
        let mut plan = Plan {
            tag: 0,
            lead_in: self.config.decision_overhead,
            phases: vec![ops],
            deadline: None,
        };
        if !cache_pieces.is_empty() {
            // Pin the cached pieces this read references until the plan
            // completes, so eviction cannot free space under a queued
            // sub-request. (Fallback pieces read OPFS and need no pin.)
            let ranges: Vec<(FileId, u64, u64)> = cache_pieces
                .iter()
                .map(|&(d_offset, len)| (req.file, d_offset, len))
                .collect();
            self.bg.pin_all(&ranges);
            plan.tag = self.bg.register(Pending::Unpin(ranges));
        }
        if view.fully_covered() {
            self.metrics.read_full_hits += 1;
        } else {
            if view.fully_missed() {
                self.metrics.read_misses += 1;
            } else {
                self.metrics.read_partial_hits += 1;
            }
            // No new cache fills while any CServer is quarantined: fetches
            // stripe over the whole tier, so they would land on the sick
            // server too. Backpressure sheds fills the same way — a
            // congested tier gets no new fetch work.
            if ctx.critical && !self.health.any_unhealthy(now) {
                if self.shed_admission(ctx) {
                    self.metrics.shed_admissions += 1;
                } else if self.config.eager_read_fetch {
                    self.plan_eager_fetch(cluster, req, cache, &view.gaps, &mut plan);
                } else if self.plane.cdt_set_c_flag(req.file, req.offset, req.len) {
                    // Lazy caching: mark for the Rebuilder (line 18).
                    self.metrics.lazy_marks += 1;
                }
            }
        }
        // Reads plan no durable effects: a journal frame riding a read
        // plan would make the read's success hinge on a metadata write
        // (and fail reads under space exhaustion for no data reason).
        // Any records a read's bookkeeping produced wait for the next
        // write plan or the background straggler drain.
        self.dur
            .collect_pending_records(&mut self.plane, &self.config);
        plan
    }

    /// Builds a data op for one piece of an application request, slicing
    /// the request payload to the piece (functional mode).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn data_op(
        &self,
        tier: Tier,
        file: FileId,
        kind: IoKind,
        offset: u64,
        len: u64,
        app_offset: u64,
        req: &AppRequest,
    ) -> PlannedIo {
        let data = match (kind, &req.data) {
            (IoKind::Write, Some(full)) => {
                let at = (app_offset - req.offset) as usize;
                // None (short payload) degrades to a sizing-only op.
                full.get(at..at + len as usize).map(<[u8]>::to_vec)
            }
            _ => None,
        };
        PlannedIo {
            tier,
            file,
            kind,
            offset,
            len,
            priority: Priority::Normal,
            data,
            app_offset: Some(app_offset),
        }
    }

    /// A pass-through plan routing the request straight to DServers —
    /// the fallback when the file has no cache mapping (never opened
    /// through the middleware) and for `force_miss` mode.
    pub(crate) fn direct_plan(&mut self, req: &AppRequest) -> Plan {
        let mut op = PlannedIo::data_op(
            Tier::DServers,
            req.file,
            req.kind,
            req.offset,
            req.len,
            req.offset,
        );
        op.data = req.data.clone();
        match req.kind {
            IoKind::Write => self.metrics.writes_to_disk += 1,
            IoKind::Read => self.metrics.read_misses += 1,
        }
        Plan {
            tag: 0,
            lead_in: self.config.decision_overhead,
            phases: vec![vec![op]],
            deadline: None,
        }
    }

    /// True if any CServer holding part of the cache range
    /// `[c_offset, c_offset + len)` is quarantined at `now`. Cache files
    /// are round-robin striped, so the touched servers follow from the
    /// stripe indices alone.
    pub(crate) fn cache_range_unhealthy(
        &self,
        cluster: &Cluster,
        now: SimTime,
        c_offset: u64,
        len: u64,
    ) -> bool {
        if len == 0 || !self.health.any_unhealthy(now) {
            return false;
        }
        let layout = cluster.cpfs().layout();
        let stripe = layout.stripe_size();
        let n = layout.server_count();
        let first = c_offset / stripe;
        let last = (c_offset + len - 1) / stripe;
        if last - first + 1 >= n as u64 {
            // The range spans a full round: every server is involved.
            return self.health.any_unhealthy(now);
        }
        (first..=last).any(|k| self.health.is_unhealthy((k % n as u64) as usize, now))
    }
}
