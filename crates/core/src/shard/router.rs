//! Deterministic shard routing for the metadata plane.
//!
//! A file's byte range is cut into `stripe`-sized tiles and tile `t` of
//! file `f` is owned by shard `(f + t) % count`. The function is pure
//! and stateless, so the router can be copied freely: the pipeline, the
//! durability engine, and crash recovery all route with the same
//! arithmetic and therefore always agree on which shard owns a record.

use s4d_pfs::FileId;

/// One shard-local slice of a byte range, produced by
/// [`ShardRouter::segments`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSegment {
    /// Owning shard index, `< ShardRouter::count()`.
    pub shard: usize,
    /// Absolute offset of the slice within the file.
    pub offset: u64,
    /// Slice length in bytes (never zero).
    pub len: u64,
}

/// Pure routing function mapping `(file, offset)` to a shard.
///
/// With `count == 1` every byte routes to shard 0 and
/// [`ShardRouter::segments`] returns the request as a single segment,
/// which is what keeps the default configuration byte-identical to the
/// pre-shard plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    count: usize,
    stripe: u64,
}

impl ShardRouter {
    /// Creates a router over `count` shards with the given stripe width.
    /// Zero inputs are clamped to 1 rather than rejected — the router is
    /// used on recovery paths that must stay panic-free.
    pub fn new(count: u32, stripe: u64) -> Self {
        ShardRouter {
            count: (count.max(1)) as usize,
            stripe: stripe.max(1),
        }
    }

    /// Number of shards this router spreads metadata across.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Stripe width in bytes.
    pub fn stripe(&self) -> u64 {
        self.stripe
    }

    /// The shard owning byte `offset` of `file`.
    pub fn shard_of(&self, file: FileId, offset: u64) -> usize {
        if self.count == 1 {
            return 0;
        }
        let tile = offset / self.stripe;
        (file.0.wrapping_add(tile) % self.count as u64) as usize
    }

    /// Splits `[offset, offset + len)` of `file` into shard-local
    /// segments in ascending offset order, coalescing consecutive tiles
    /// that land on the same shard. Returns an empty vector for
    /// zero-length ranges; with one shard the whole range is a single
    /// segment.
    pub fn segments(&self, file: FileId, offset: u64, len: u64) -> Vec<ShardSegment> {
        if len == 0 {
            return Vec::new();
        }
        if self.count == 1 {
            return vec![ShardSegment {
                shard: 0,
                offset,
                len,
            }];
        }
        let end = offset.saturating_add(len);
        let mut out: Vec<ShardSegment> = Vec::new();
        let mut cursor = offset;
        while cursor < end {
            let tile_end = ((cursor / self.stripe) + 1).saturating_mul(self.stripe);
            let piece_end = tile_end.min(end);
            let shard = self.shard_of(file, cursor);
            match out.last_mut() {
                Some(last) if last.shard == shard && last.offset + last.len == cursor => {
                    last.len += piece_end - cursor;
                }
                _ => out.push(ShardSegment {
                    shard,
                    offset: cursor,
                    len: piece_end - cursor,
                }),
            }
            cursor = piece_end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_is_identity() {
        let r = ShardRouter::new(1, 64 * 1024);
        assert_eq!(r.shard_of(FileId(7), 123456789), 0);
        let segs = r.segments(FileId(7), 1000, 5_000_000);
        assert_eq!(
            segs,
            vec![ShardSegment {
                shard: 0,
                offset: 1000,
                len: 5_000_000
            }]
        );
    }

    #[test]
    fn zero_inputs_clamp() {
        let r = ShardRouter::new(0, 0);
        assert_eq!(r.count(), 1);
        assert_eq!(r.stripe(), 1);
    }

    #[test]
    fn tiles_rotate_across_shards() {
        let r = ShardRouter::new(4, 100);
        // file 0: tile t -> shard t % 4.
        assert_eq!(r.shard_of(FileId(0), 0), 0);
        assert_eq!(r.shard_of(FileId(0), 99), 0);
        assert_eq!(r.shard_of(FileId(0), 100), 1);
        assert_eq!(r.shard_of(FileId(0), 399), 3);
        assert_eq!(r.shard_of(FileId(0), 400), 0);
        // The file id offsets the rotation so files spread too.
        assert_eq!(r.shard_of(FileId(1), 0), 1);
    }

    #[test]
    fn segments_tile_exactly_and_stay_shard_local() {
        let r = ShardRouter::new(3, 64);
        let segs = r.segments(FileId(2), 50, 300);
        let mut cursor = 50;
        for s in &segs {
            assert_eq!(s.offset, cursor, "segments tile contiguously");
            assert!(s.len > 0);
            // Every byte of a segment routes to the segment's shard.
            for b in [s.offset, s.offset + s.len - 1] {
                assert_eq!(r.shard_of(FileId(2), b), s.shard);
            }
            cursor = s.offset + s.len;
        }
        assert_eq!(cursor, 350, "segments cover the whole range");
        assert!(r.segments(FileId(2), 10, 0).is_empty());
    }

    #[test]
    fn segments_coalesce_same_shard_neighbours() {
        // count == 1 coalesces everything; larger counts rotate so
        // neighbours differ — both directions must hold.
        let r1 = ShardRouter::new(1, 64);
        assert_eq!(r1.segments(FileId(0), 0, 640).len(), 1);
        let r4 = ShardRouter::new(4, 64);
        assert_eq!(r4.segments(FileId(0), 0, 640).len(), 10);
    }
}
