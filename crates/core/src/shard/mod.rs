//! Sharded metadata plane: deterministic routing and per-shard state.
//!
//! The middleware's metadata — the DMT interval map, the candidate table,
//! and cache-space accounting — is partitioned into `shard_count`
//! deterministic shards (a [`crate::S4dConfig::shard_count`] knob, default
//! 1). [`ShardRouter`] is the pure function deciding ownership; it splits
//! stripes of a file's byte range across shards so a hot file's metadata
//! traffic spreads instead of serialising on one partition.
//! [`MetadataPlane`] holds the shards and routes every operation: point
//! lookups go straight to the owner, range operations are split into
//! shard-local segments and rejoined in offset order, aggregates sum over
//! shards.
//!
//! The default single-shard configuration is byte- and replay-identical to
//! the pre-shard middleware: one shard owns everything, every range is one
//! segment, and the group-commit journal degenerates to the original
//! batching rule.

mod plane;
mod router;

pub use plane::MetadataPlane;
pub use router::{ShardRouter, ShardSegment};
