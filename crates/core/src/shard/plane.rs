//! The sharded metadata plane: N deterministic shards, each owning a
//! [`Dmt`] interval-map partition, a [`Cdt`] partition, and a
//! [`SpaceManager`] over its slice of the cache capacity.
//!
//! Every mutation enters through a routed method on [`MetadataPlane`]:
//! point-keyed operations go to [`ShardRouter::shard_of`] of their durable
//! key, range operations are split into shard-local segments by
//! [`ShardRouter::segments`] and applied per shard in ascending offset
//! order. The s4d-lint `shard-discipline` rule enforces that no code
//! outside this plane (and the table/allocator implementations themselves)
//! reaches a shard's `dmt`/`cdt`/`space` directly.
//!
//! With `shard_count = 1` there is exactly one shard holding the full
//! capacity, every range is a single segment, and each routed method
//! degenerates to the identical call sequence the pre-shard middleware
//! made — which is what keeps the default configuration byte- and
//! replay-identical to the unsharded plane.

use s4d_pfs::FileId;

use crate::cdt::{Cdt, CdtEntry};
use crate::dmt::{Dmt, MapExtent, RangeView};
use crate::journal::JournalRecord;
use crate::space::{AllocPiece, SpaceManager};

use super::ShardRouter;

/// One shard: a partition of the mapping table, the candidate table, and
/// the space ledger.
#[derive(Debug)]
struct MetadataShard {
    dmt: Dmt,
    cdt: Cdt,
    space: SpaceManager,
}

impl MetadataShard {
    fn new(capacity: u64, cdt_max: usize) -> Self {
        MetadataShard {
            dmt: Dmt::new(),
            cdt: Cdt::new(cdt_max.max(1)),
            space: SpaceManager::new(capacity.max(1)),
        }
    }
}

/// Splits total cache capacity across `n` shards: every shard gets
/// `capacity / n`, shard 0 absorbs the remainder. Degenerate configs
/// (capacity < n) clamp each share to 1 byte rather than panicking.
fn split_capacity(capacity: u64, n: usize) -> (u64, u64) {
    let n64 = n.max(1) as u64;
    let base = (capacity / n64).max(1);
    let first = capacity.saturating_sub(base.saturating_mul(n64 - 1)).max(1);
    (first, base)
}

/// The metadata plane: every shard of the DMT, CDT, and space accounting
/// behind one routed interface.
#[derive(Debug)]
pub struct MetadataPlane {
    router: ShardRouter,
    /// Shard 0 lives outside the vector so the plane is never empty and
    /// shard access needs no panicking index — out-of-range indices
    /// (unreachable through the router) fall back here.
    shard0: MetadataShard,
    rest: Vec<MetadataShard>,
}

impl MetadataPlane {
    /// Builds a plane of `router.count()` shards splitting `capacity`
    /// bytes of cache space and `cdt_max` candidate-table entries.
    pub(crate) fn new(router: ShardRouter, capacity: u64, cdt_max: usize) -> Self {
        let n = router.count();
        let (first, base) = split_capacity(capacity, n);
        let per_cdt = (cdt_max / n).max(1);
        MetadataPlane {
            router,
            shard0: MetadataShard::new(first, per_cdt),
            rest: (1..n).map(|_| MetadataShard::new(base, per_cdt)).collect(),
        }
    }

    /// Adopts a recovered, merged mapping table. With one shard the table
    /// moves in wholesale — field-for-field identical to the pre-shard
    /// recovery path, preserving its lifetime record count. With more, the
    /// extents are redistributed to their owning shards (re-inserted in
    /// sorted order, seals re-applied) and the re-recorded pending records
    /// are discarded — the journal already holds the originals.
    pub(crate) fn adopt(&mut self, dmt: Dmt, capacity: u64) {
        let n = self.router.count();
        if n == 1 {
            let (first, _) = split_capacity(capacity, 1);
            self.shard0.space = SpaceManager::rebuild(
                first,
                dmt.iter_extents()
                    .map(|(_, _, e)| (e.c_file, e.c_offset, e.len)),
            );
            self.shard0.dmt = dmt;
            self.rest.clear();
            return;
        }
        let mut live: Vec<(FileId, u64, MapExtent)> =
            dmt.iter_extents().map(|(f, o, e)| (f, o, *e)).collect();
        live.sort_unstable_by_key(|&(f, o, _)| (f.0, o));
        let (first, base) = split_capacity(capacity, n);
        for (i, shard) in self.shards_mut().enumerate() {
            shard.dmt = Dmt::new();
            let cap = if i == 0 { first } else { base };
            shard.space = SpaceManager::rebuild(cap, std::iter::empty());
        }
        for &(f, o, e) in &live {
            let shard = self.shard_mut(self.router.shard_of(f, o));
            shard.dmt.insert(f, o, e.len, e.c_file, e.c_offset, e.dirty);
            if let Some(sum) = e.checksum {
                shard.dmt.apply_seal(f, o, e.len, sum);
            }
        }
        for (i, shard) in self.shards_mut().enumerate() {
            let _ = shard.dmt.take_pending_journal();
            let extents: Vec<(FileId, u64, u64)> = shard
                .dmt
                .iter_extents()
                .map(|(_, _, e)| (e.c_file, e.c_offset, e.len))
                .collect();
            let cap = if i == 0 { first } else { base };
            shard.space = SpaceManager::rebuild(cap, extents.into_iter());
        }
    }

    /// Replaces every shard's space ledger with a fresh one splitting
    /// `capacity` — the open-time capacity (re)initialisation, matching
    /// the pre-shard middleware's fresh `SpaceManager` swap.
    pub(crate) fn reset_space(&mut self, capacity: u64) {
        let n = self.router.count();
        let (first, base) = split_capacity(capacity, n);
        for (i, shard) in self.shards_mut().enumerate() {
            shard.space = SpaceManager::new(if i == 0 { first } else { base });
        }
    }

    fn shards(&self) -> impl Iterator<Item = &MetadataShard> {
        std::iter::once(&self.shard0).chain(self.rest.iter())
    }

    fn shards_mut(&mut self) -> impl Iterator<Item = &mut MetadataShard> {
        std::iter::once(&mut self.shard0).chain(self.rest.iter_mut())
    }

    fn shard(&self, idx: usize) -> &MetadataShard {
        if idx == 0 {
            return &self.shard0;
        }
        match self.rest.get(idx - 1) {
            Some(s) => s,
            None => &self.shard0,
        }
    }

    fn shard_mut(&mut self, idx: usize) -> &mut MetadataShard {
        if idx == 0 {
            return &mut self.shard0;
        }
        match self.rest.get_mut(idx - 1) {
            Some(s) => s,
            None => &mut self.shard0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.router.count()
    }

    /// The routing function shared with the durability engine and the
    /// group-commit queues.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Total cache capacity across shards.
    pub fn capacity(&self) -> u64 {
        self.shards().map(|s| s.space.capacity()).sum()
    }

    /// Total allocated cache bytes across shards.
    pub fn allocated(&self) -> u64 {
        self.shards().map(|s| s.space.allocated()).sum()
    }

    /// Total mapped bytes across shards.
    pub fn mapped_bytes(&self) -> u64 {
        self.shards().map(|s| s.dmt.mapped_bytes()).sum()
    }

    /// Total dirty bytes across shards.
    pub fn dirty_bytes(&self) -> u64 {
        self.shards().map(|s| s.dmt.dirty_bytes()).sum()
    }

    /// Total extent count across shards.
    pub fn entry_count(&self) -> usize {
        self.shards().map(|s| s.dmt.entry_count()).sum()
    }

    /// Lifetime journal records across shards.
    pub fn journal_records_total(&self) -> u64 {
        self.shards().map(|s| s.dmt.journal_records_total()).sum()
    }

    /// Every live extent, shard 0 first (shard-internal order matches
    /// [`Dmt::iter_extents`]).
    pub fn iter_extents(&self) -> impl Iterator<Item = (FileId, u64, &MapExtent)> {
        self.shards().flat_map(|s| s.dmt.iter_extents())
    }

    /// Buffered (undrained) mutation records across shards.
    pub(crate) fn pending_records(&self) -> usize {
        self.shards().map(|s| s.dmt.pending_records()).sum()
    }

    /// Total space-ledger over-releases across shards.
    pub(crate) fn over_releases(&self) -> u64 {
        self.shards().map(|s| s.space.over_releases()).sum()
    }

    /// Shard 0's mapping table — the whole table when `shard_count == 1`,
    /// which is what the single-shard accessors on the middleware expose.
    pub(crate) fn dmt0(&self) -> &Dmt {
        &self.shard0.dmt
    }

    /// Shard 0's candidate table (see [`MetadataPlane::dmt0`]).
    pub(crate) fn cdt0(&self) -> &Cdt {
        &self.shard0.cdt
    }

    /// Shard 0's space ledger (see [`MetadataPlane::dmt0`]).
    pub(crate) fn space0(&self) -> &SpaceManager {
        &self.shard0.space
    }

    /// Drains shard `idx`'s freshly recorded journal records, in the order
    /// the shard produced them.
    pub(crate) fn take_shard_pending(&mut self, idx: usize) -> Vec<JournalRecord> {
        self.shard_mut(idx).dmt.take_pending_journal()
    }

    // ---- routed DMT operations -------------------------------------

    /// Coverage of `[offset, offset+len)`: per-segment views concatenated
    /// in offset order. Gaps never span a shard boundary, so at higher
    /// shard counts a physical gap may appear as several adjacent entries
    /// — the admission path allocates per gap, which is exactly the
    /// shard-local split it needs.
    pub(crate) fn view(&self, file: FileId, offset: u64, len: u64) -> RangeView {
        let mut out = RangeView::default();
        for seg in self.router.segments(file, offset, len) {
            let v = self.shard(seg.shard).dmt.view(file, seg.offset, seg.len);
            out.pieces.extend(v.pieces);
            out.gaps.extend(v.gaps);
        }
        out
    }

    /// Extents overlapping the range, across segments in offset order.
    pub(crate) fn extents_overlapping(
        &self,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Vec<(u64, MapExtent)> {
        let mut out = Vec::new();
        for seg in self.router.segments(file, offset, len) {
            out.extend(
                self.shard(seg.shard)
                    .dmt
                    .extents_overlapping(file, seg.offset, seg.len),
            );
        }
        out
    }

    /// Inserts a shard-local extent, routed by its start offset. Callers
    /// obtain shard-local ranges from [`MetadataPlane::view`] gaps or
    /// [`ShardRouter::segments`]; a range must never cross a shard
    /// boundary (with one shard nothing does).
    pub(crate) fn insert(
        &mut self,
        file: FileId,
        d_offset: u64,
        len: u64,
        c_file: FileId,
        c_offset: u64,
        dirty: bool,
    ) {
        let idx = self.router.shard_of(file, d_offset);
        self.shard_mut(idx)
            .dmt
            .insert(file, d_offset, len, c_file, c_offset, dirty);
    }

    /// Marks a range dirty, segment by segment.
    pub(crate) fn mark_dirty(&mut self, file: FileId, offset: u64, len: u64) {
        for seg in self.router.segments(file, offset, len) {
            self.shard_mut(seg.shard)
                .dmt
                .mark_dirty(file, seg.offset, seg.len);
        }
    }

    /// Refreshes LRU recency over a range, segment by segment.
    pub(crate) fn touch_range(&mut self, file: FileId, offset: u64, len: u64) {
        for seg in self.router.segments(file, offset, len) {
            self.shard_mut(seg.shard)
                .dmt
                .touch_range(file, seg.offset, seg.len);
        }
    }

    /// Invalidates seals over a range, segment by segment.
    pub(crate) fn unseal(&mut self, file: FileId, offset: u64, len: u64) {
        for seg in self.router.segments(file, offset, len) {
            self.shard_mut(seg.shard)
                .dmt
                .unseal(file, seg.offset, seg.len);
        }
    }

    /// The extent starting exactly at `d_offset`, if any.
    pub(crate) fn get(&self, file: FileId, d_offset: u64) -> Option<&MapExtent> {
        self.shard(self.router.shard_of(file, d_offset))
            .dmt
            .get(file, d_offset)
    }

    /// Removes the extent starting exactly at `d_offset`.
    pub(crate) fn remove(&mut self, file: FileId, d_offset: u64) -> Option<MapExtent> {
        let idx = self.router.shard_of(file, d_offset);
        self.shard_mut(idx).dmt.remove(file, d_offset)
    }

    /// Version-gated clean transition (see [`Dmt::mark_clean_if`]).
    pub(crate) fn mark_clean_if(&mut self, file: FileId, d_offset: u64, version: u64) -> bool {
        let idx = self.router.shard_of(file, d_offset);
        self.shard_mut(idx)
            .dmt
            .mark_clean_if(file, d_offset, version)
    }

    /// Unconditional clean transition (see [`Dmt::force_clean`]).
    /// Production code replays records onto a [`Dmt`] directly; only the
    /// routing-equivalence tests drive this through the plane.
    #[cfg(test)]
    pub(crate) fn force_clean(&mut self, file: FileId, d_offset: u64) -> bool {
        let idx = self.router.shard_of(file, d_offset);
        self.shard_mut(idx).dmt.force_clean(file, d_offset)
    }

    /// Version-gated seal (see [`Dmt::seal_if`]).
    pub(crate) fn seal_if(
        &mut self,
        file: FileId,
        d_offset: u64,
        version: u64,
        checksum: u32,
    ) -> bool {
        let idx = self.router.shard_of(file, d_offset);
        self.shard_mut(idx)
            .dmt
            .seal_if(file, d_offset, version, checksum)
    }

    /// Up to `limit` dirty extents across shards: each shard contributes
    /// its own LRU run (oldest first), shard 0 first. Callers that need a
    /// global age order sort the result, exactly as they already sort the
    /// single-shard LRU output.
    pub(crate) fn dirty_lru(&self, limit: usize) -> Vec<(FileId, u64, MapExtent)> {
        let mut out = Vec::new();
        for s in self.shards() {
            let remaining = limit.saturating_sub(out.len());
            if remaining == 0 {
                break;
            }
            out.extend(s.dmt.dirty_lru(remaining));
        }
        out
    }

    /// LRU clean eviction within one shard (the shard whose space the
    /// caller is trying to free), skipping pinned ranges.
    pub(crate) fn evict_clean_lru_excluding(
        &mut self,
        idx: usize,
        bytes: u64,
        is_pinned: impl Fn(FileId, u64, u64) -> bool,
    ) -> Vec<(FileId, u64, MapExtent)> {
        self.shard_mut(idx)
            .dmt
            .evict_clean_lru_excluding(bytes, is_pinned)
    }

    // ---- routed CDT operations -------------------------------------

    /// Records an access candidate, routed by its request offset.
    pub(crate) fn cdt_insert(&mut self, file: FileId, offset: u64, len: u64) {
        let idx = self.router.shard_of(file, offset);
        self.shard_mut(idx).cdt.insert(file, offset, len);
    }

    /// Sets the fetch flag on a candidate (see [`Cdt::set_c_flag`]).
    pub(crate) fn cdt_set_c_flag(&mut self, file: FileId, offset: u64, len: u64) -> bool {
        let idx = self.router.shard_of(file, offset);
        self.shard_mut(idx).cdt.set_c_flag(file, offset, len)
    }

    /// Clears the fetch flag on a candidate (see [`Cdt::clear_c_flag`]).
    pub(crate) fn cdt_clear_c_flag(&mut self, file: FileId, offset: u64, len: u64) -> bool {
        let idx = self.router.shard_of(file, offset);
        self.shard_mut(idx).cdt.clear_c_flag(file, offset, len)
    }

    /// Up to `limit` flagged candidates, shard 0's oldest first, then
    /// shard 1's, and so on.
    pub(crate) fn cdt_flagged(&self, limit: usize) -> Vec<CdtEntry> {
        let mut out = Vec::new();
        for s in self.shards() {
            let remaining = limit.saturating_sub(out.len());
            if remaining == 0 {
                break;
            }
            out.extend(s.cdt.flagged(remaining));
        }
        out
    }

    // ---- routed space operations -----------------------------------

    /// Allocates `len` bytes from shard `idx`'s space ledger.
    pub(crate) fn alloc(
        &mut self,
        idx: usize,
        c_file: FileId,
        len: u64,
    ) -> Option<Vec<AllocPiece>> {
        self.shard_mut(idx).space.alloc(c_file, len)
    }

    /// Returns `len` bytes to shard `idx`'s space ledger.
    pub(crate) fn release(&mut self, idx: usize, c_file: FileId, c_offset: u64, len: u64) {
        self.shard_mut(idx).space.release(c_file, c_offset, len);
    }

    /// True when shard `idx` can allocate `len` bytes right now.
    pub(crate) fn fits(&self, idx: usize, len: u64) -> bool {
        self.shard(idx).space.fits(len)
    }

    /// Unallocated bytes in shard `idx`'s slice of the capacity.
    pub(crate) fn shard_available(&self, idx: usize) -> u64 {
        self.shard(idx).space.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const F: FileId = FileId(5);

    fn plane(count: u32, stripe: u64, capacity: u64) -> MetadataPlane {
        MetadataPlane::new(ShardRouter::new(count, stripe), capacity, 64)
    }

    /// Coverage shape — the per-byte (offset, dirty) set and the byte set
    /// of gaps — independent of cache placement. Piece and extent
    /// *fragmentation* legitimately differs per shard count (each shard
    /// has its own allocator, and views coalesce cache-contiguous
    /// pieces), so the comparison is at byte granularity.
    fn shape(p: &MetadataPlane, span: u64) -> (Vec<(u64, bool)>, Vec<u64>, u64, u64) {
        let v = p.view(F, 0, span);
        let mut covered: Vec<(u64, bool)> = Vec::new();
        for pc in &v.pieces {
            covered.extend((pc.d_offset..pc.d_offset + pc.len).map(|b| (b, pc.dirty)));
        }
        covered.sort_unstable();
        let mut gap_bytes = Vec::new();
        for (o, l) in &v.gaps {
            gap_bytes.extend(*o..*o + *l);
        }
        gap_bytes.sort_unstable();
        (covered, gap_bytes, p.mapped_bytes(), p.dirty_bytes())
    }

    /// Applies one workload op to a plane, allocating real space per gap
    /// shard the way the admission path does.
    fn apply(p: &mut MetadataPlane, op: (u64, u64, u8)) {
        let (off, len, kind) = op;
        match kind % 4 {
            0 => {
                let gaps = p.view(F, off, len).gaps;
                for (g_off, g_len) in gaps {
                    // Split at stripe tiles before routing, the way the
                    // admission path segments its gaps. Any count > 1 maps
                    // consecutive tiles to different shards (so segments
                    // split at every tile); splitting the count = 1
                    // reference the same way keeps fragmentation — and
                    // therefore remove eligibility below — identical.
                    let mut at = g_off;
                    let end = g_off + g_len;
                    while at < end {
                        let tile_end = ((at / 64) + 1) * 64;
                        let piece_len = tile_end.min(end) - at;
                        let shard = p.router().shard_of(F, at);
                        let cache = FileId(100 + shard as u64);
                        if let Some(allocs) = p.alloc(shard, cache, piece_len) {
                            let mut cursor = at;
                            for a in allocs {
                                p.insert(F, cursor, a.len, cache, a.c_offset, false);
                                cursor += a.len;
                            }
                        }
                        at = tile_end.min(end);
                    }
                }
            }
            1 => p.mark_dirty(F, off, len),
            2 => {
                // Whole-tile removes (and releases). Extents never cross
                // stripe tiles (inserts are tile-split), so removing
                // everything overlapping the tile-aligned range drops the
                // same byte set at every shard count, even though each
                // shard's allocator fragments extents differently.
                let start = (off / 64) * 64;
                let end = (off + len).div_ceil(64) * 64;
                let targets: Vec<u64> = p
                    .extents_overlapping(F, start, end - start)
                    .into_iter()
                    .map(|(d_off, _)| d_off)
                    .collect();
                for d_off in targets {
                    if let Some(e) = p.remove(F, d_off) {
                        let shard = p.router().shard_of(F, d_off);
                        p.release(shard, e.c_file, e.c_offset, e.len);
                    }
                }
            }
            _ => p.touch_range(F, off, len),
        }
    }

    proptest! {
        /// Random workloads produce identical coverage shape and aggregate
        /// accounting at any shard count: the plane partitions metadata, it
        /// never changes what is mapped.
        #[test]
        fn prop_sharded_plane_matches_single_shard_reference(
            ops in proptest::collection::vec((0u64..900, 1u64..120, 0u8..4), 1..40),
            count in prop_oneof![Just(2u32), Just(4), Just(7), Just(16)],
        ) {
            let mut reference = plane(1, 64, 1 << 20);
            let mut sharded = plane(count, 64, 1 << 20);
            for &op in &ops {
                apply(&mut reference, op);
                apply(&mut sharded, op);
            }
            prop_assert_eq!(shape(&reference, 1024), shape(&sharded, 1024));
            prop_assert_eq!(reference.allocated(), sharded.allocated());
            prop_assert_eq!(reference.mapped_bytes(), reference.allocated());
        }

        /// Point-keyed operations (seal, clean, get) agree with the
        /// reference too: routing never changes which extent a key hits.
        #[test]
        fn prop_point_ops_route_consistently(
            inserts in proptest::collection::vec((0u64..40u64, 1u64..4), 1..20),
        ) {
            let stripe = 16;
            let mut reference = plane(1, stripe, 1 << 20);
            let mut sharded = plane(4, stripe, 1 << 20);
            for (i, &(tile, len)) in inserts.iter().enumerate() {
                // Tile-aligned inserts are shard-local by construction.
                let off = tile * stripe;
                for p in [&mut reference, &mut sharded] {
                    if !p.view(F, off, len).fully_missed() {
                        continue;
                    }
                    p.insert(F, off, len, FileId(100), i as u64 * 100, i % 2 == 0);
                }
                let (r, s) = (reference.get(F, off).copied(), sharded.get(F, off).copied());
                prop_assert_eq!(r.map(|e| (e.len, e.dirty)), s.map(|e| (e.len, e.dirty)));
                if i % 3 == 0 {
                    prop_assert_eq!(
                        reference.force_clean(F, off),
                        sharded.force_clean(F, off)
                    );
                }
            }
            prop_assert_eq!(reference.entry_count(), sharded.entry_count());
            prop_assert_eq!(reference.dirty_bytes(), sharded.dirty_bytes());
        }
    }

    #[test]
    fn capacity_splits_exactly_with_shard_zero_remainder() {
        let p = plane(4, 64, 1003);
        assert_eq!(p.capacity(), 1003);
        assert_eq!(p.shard_available(0), 1003 - 250 * 3);
        assert_eq!(p.shard_available(1), 250);
        let single = plane(1, 64, 1003);
        assert_eq!(single.shard_available(0), 1003);
    }

    #[test]
    fn adopt_single_shard_moves_the_table_wholesale() {
        let mut dmt = Dmt::new();
        dmt.insert(F, 0, 100, FileId(9), 0, true);
        dmt.seal_if(F, 0, 1, 0xABCD); // wrong version: no seal
        let total = dmt.journal_records_total();
        let mut p = plane(1, 64, 4096);
        p.adopt(dmt, 4096);
        assert_eq!(p.journal_records_total(), total);
        assert_eq!(p.mapped_bytes(), 100);
        assert_eq!(p.allocated(), 100);
        assert_eq!(p.dirty_bytes(), 100);
    }

    #[test]
    fn adopt_redistributes_extents_to_owning_shards() {
        let mut dmt = Dmt::new();
        // Four tile-aligned extents spread across a 4-shard rotation.
        for t in 0..4u64 {
            dmt.insert(F, t * 64, 64, FileId(9), t * 64, t % 2 == 0);
        }
        let v = dmt.get(F, 0).map(|e| e.version).unwrap_or(0);
        dmt.seal_if(F, 0, v, 0x5EA1);
        let mut p = plane(4, 64, 4096);
        p.adopt(dmt, 4096);
        assert_eq!(p.entry_count(), 4);
        assert_eq!(p.mapped_bytes(), 256);
        assert_eq!(p.allocated(), 256);
        assert_eq!(p.get(F, 0).and_then(|e| e.checksum), Some(0x5EA1));
        assert_eq!(p.pending_records(), 0, "adoption re-records are discarded");
        // Every extent sits in the shard the router names.
        for t in 0..4u64 {
            assert!(p.get(F, t * 64).is_some());
        }
    }

    #[test]
    fn cdt_routes_by_offset_and_flags_survive() {
        let mut p = plane(4, 64, 4096);
        p.cdt_insert(F, 0, 32);
        p.cdt_insert(F, 64, 32);
        assert!(p.cdt_set_c_flag(F, 64, 32));
        assert_eq!(p.cdt_flagged(8).len(), 1);
        assert!(p.cdt_clear_c_flag(F, 64, 32));
        assert_eq!(p.cdt_flagged(8).len(), 0);
    }
}
