//! S4D-Cache configuration.

use s4d_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How the Data Identifier classifies requests as performance-critical.
///
/// The paper's policy is [`AdmissionPolicy::Benefit`]; the others exist for
/// the ablation study (what do you lose without the cost model?).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AdmissionPolicy {
    /// The paper's policy: critical iff the cost-model benefit `B > 0`.
    #[default]
    Benefit,
    /// Admit everything (a conventional non-selective cache).
    AlwaysAdmit,
    /// Admit nothing (stock behaviour with S4D bookkeeping overhead).
    NeverAdmit,
    /// Admit requests strictly smaller than the threshold, ignoring
    /// randomness (a naive size-based heuristic).
    SizeBelow(u64),
}

/// Tunables of the S4D-Cache middleware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct S4dConfig {
    /// Total CServer space the cache may occupy, bytes (the paper sets it
    /// to 20 % of the application's data size in §V.A).
    pub cache_capacity: u64,
    /// Rebuilder wake period (§III.F "triggered periodically").
    pub rebuild_period: SimDuration,
    /// Maximum dirty extents flushed per wake.
    pub max_flush_per_wake: usize,
    /// Maximum critical read ranges fetched per wake.
    pub max_fetch_per_wake: usize,
    /// Maximum entries the Critical Data Table retains (oldest evicted).
    pub cdt_max_entries: usize,
    /// Admission policy (the paper's is the default).
    pub admission: AdmissionPolicy,
    /// Fig. 11 mode: perform every lookup and cost evaluation but never
    /// redirect, so the middleware's bookkeeping overhead can be measured
    /// in isolation.
    pub force_miss: bool,
    /// Simulated CPU cost of the per-request decision path (cost-model
    /// evaluation + CDT/DMT lookups), charged before a request's plan
    /// starts. The paper measures this overhead to be negligible (§V.E.2).
    pub decision_overhead: SimDuration,
    /// DMT journal group-commit size: mutation records accumulate and are
    /// written to the CServer journal file once this many are pending (the
    /// paper's Berkeley DB layer provides the same effect through its
    /// write-ahead log's group commit). `1` journals synchronously with
    /// every mutating request.
    pub journal_batch_records: u64,
    /// Retain the full journal record log in memory (for crash-recovery
    /// tests and journal inspection; real deployments read the journal
    /// file back instead).
    pub record_journal_log: bool,
    /// CARL-style persistent placement (the paper's predecessor system,
    /// §II.C): critical data is *placed* on the CServers permanently
    /// instead of cached — the Rebuilder never flushes, so CServer space
    /// is never reclaimed and, once full, further critical data stays on
    /// the DServers. Isolates what the paper's cache semantics (write-back
    /// + eviction) add over static placement.
    pub persistent_placement: bool,
    /// When true, critical read misses are fetched *eagerly* as part of the
    /// request (ablation); the paper's design is lazy (`false`): the miss is
    /// only marked in the CDT and the Rebuilder fetches later, keeping read
    /// response time low (§III.E).
    pub eager_read_fetch: bool,
    /// First retry backoff after a transient CServer error; doubles per
    /// attempt up to [`S4dConfig::retry_max_delay`].
    pub retry_base_delay: SimDuration,
    /// Backoff cap for transient-error retries.
    pub retry_max_delay: SimDuration,
    /// Total attempts per sub-request (first try included) before the
    /// middleware gives up and the request is re-planned.
    pub retry_max_attempts: u32,
    /// Consecutive failures that quarantine a CServer.
    pub quarantine_after: u32,
    /// How long a quarantined CServer receives no new admissions before
    /// probation re-admits it.
    pub quarantine_duration: SimDuration,
    /// When true, the Rebuilder flushes *all* dirty data (ignoring
    /// `max_flush_per_wake`) whenever any CServer looks at risk — trades
    /// background traffic for a smaller data-loss window.
    pub flush_on_risk: bool,
    /// Latency-EWMA ratio (observed / predicted `T_C`) above which a
    /// server counts as at-risk for `flush_on_risk`. Sub-request latency
    /// includes queueing, so this must sit well above 1.
    pub degraded_latency_ratio: f64,
    /// Journal records (since the last checkpoint) that trigger a new DMT
    /// checkpoint. Compaction keeps crash recovery proportional to live
    /// extents plus the journal tail instead of all mutations ever made.
    pub checkpoint_after_records: u64,
    /// Journal bytes (since the last checkpoint) that trigger a new DMT
    /// checkpoint; whichever of the two thresholds trips first wins.
    pub checkpoint_after_bytes: u64,
    /// Cached bytes the background scrubber verifies per Rebuilder wake.
    /// `0` disables scrubbing. The scrubber recomputes each sealed
    /// extent's checksum, repairs corrupted *clean* extents from the
    /// DServers, and drops (and reports) corrupted *dirty* extents rather
    /// than ever serving bad bytes.
    pub scrub_bytes_per_wake: u64,
    /// Verify sealed extents' checksums on the read path, before serving
    /// cached bytes (stronger than background scrubbing, at read cost).
    pub verify_on_read: bool,
    /// Deadline budget as a multiple of the cost model's predicted
    /// access time (`max(T_D, T_C)` of the request, Eqs. 1/7): a
    /// dispatched sub-request still outstanding after
    /// `factor × predicted` is reported to the middleware as a
    /// straggler. Must sit well above 1 — the prediction excludes
    /// queueing. `0.0` (the default) disables deadlines entirely.
    pub deadline_factor: f64,
    /// Floor on the deadline budget, so tiny requests (whose predicted
    /// time is microseconds) are not declared stragglers by scheduling
    /// noise.
    pub deadline_min: SimDuration,
    /// Answer straggling *clean* cached reads with a hedged read against
    /// the DServers (OPFS holds the same bytes): the straggler is
    /// abandoned and the first responder wins. Dirty reads always wait —
    /// the cache holds the only copy. Off by default.
    pub hedge_reads: bool,
    /// Enable queue-depth/tail-latency backpressure: shed marginal
    /// admissions away from congested CServers and pause admission
    /// entirely under global overload, degrading to OPFS. Off by
    /// default.
    pub backpressure: bool,
    /// Outstanding sub-requests on one CServer above which it counts as
    /// congested for backpressure.
    pub backpressure_depth: u64,
    /// Tail-quantile (p99) latency ratio (observed / predicted `T_C`)
    /// above which a CServer counts as congested for backpressure.
    pub backpressure_tail_ratio: f64,
    /// Under *elevated* pressure (some CServers congested), admissions
    /// whose predicted benefit `B` is below this margin (seconds) are
    /// shed — the marginal, lowest-benefit admissions go first. Under
    /// global overload every admission is shed regardless of benefit.
    pub shed_benefit_margin: f64,
    /// Number of deterministic metadata-plane shards. Each shard owns a
    /// disjoint slice of the DMT interval map, the CDT, and the space
    /// accounting, keyed by `(file, offset / shard_stripe) % shard_count`
    /// — so independent requests proceed through the
    /// identify→redirect→admit pipeline without crossing a shared
    /// serialization point. `1` (the default) is byte- and
    /// replay-identical to the pre-shard single-writer plane.
    pub shard_count: u32,
    /// Stripe width (bytes) of the shard routing function: a file is cut
    /// into `shard_stripe`-sized tiles and consecutive tiles land on
    /// consecutive shards. Irrelevant at `shard_count == 1`.
    pub shard_stripe: u64,
    /// Chaos-oracle self-test ONLY: when set, eviction discards cache
    /// bytes *without* first making the Remove records durable —
    /// deliberately breaking the journal-before-discard protocol so the
    /// chaos harness can prove its invariant oracle catches (and its
    /// minimizer shrinks) a real durability bug. Never set outside
    /// `s4d-chaos --validate-oracle`.
    #[doc(hidden)]
    pub chaos_bug_skip_journal: bool,
}

impl S4dConfig {
    /// Creates a configuration with the paper's defaults and the given
    /// cache capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cache_capacity == 0`.
    pub fn new(cache_capacity: u64) -> Self {
        assert!(cache_capacity > 0, "cache capacity must be positive");
        S4dConfig {
            cache_capacity,
            rebuild_period: SimDuration::from_secs(1),
            max_flush_per_wake: 16384,
            max_fetch_per_wake: 64,
            cdt_max_entries: 1 << 20,
            admission: AdmissionPolicy::Benefit,
            force_miss: false,
            decision_overhead: SimDuration::from_micros(2),
            journal_batch_records: 64,
            record_journal_log: false,
            persistent_placement: false,
            eager_read_fetch: false,
            retry_base_delay: SimDuration::from_micros(500),
            retry_max_delay: SimDuration::from_millis(50),
            retry_max_attempts: 4,
            quarantine_after: 3,
            quarantine_duration: SimDuration::from_secs(10),
            flush_on_risk: false,
            degraded_latency_ratio: 8.0,
            checkpoint_after_records: 8192,
            checkpoint_after_bytes: 8 * 1024 * 1024,
            scrub_bytes_per_wake: 0,
            verify_on_read: false,
            deadline_factor: 0.0,
            deadline_min: SimDuration::from_millis(2),
            hedge_reads: false,
            backpressure: false,
            backpressure_depth: 16,
            backpressure_tail_ratio: 16.0,
            shed_benefit_margin: 0.0005,
            shard_count: 1,
            shard_stripe: 64 * 1024,
            chaos_bug_skip_journal: false,
        }
    }

    /// Enables deadline budgets: `factor × predicted` access time per
    /// request, floored at `min`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn with_deadlines(mut self, factor: f64, min: SimDuration) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "deadline factor must be positive"
        );
        self.deadline_factor = factor;
        self.deadline_min = min;
        self
    }

    /// Enables hedged reads for straggling clean cached reads.
    pub fn with_hedged_reads(mut self, on: bool) -> Self {
        self.hedge_reads = on;
        self
    }

    /// Enables queue-depth/tail-latency backpressure.
    pub fn with_backpressure(mut self, on: bool) -> Self {
        self.backpressure = on;
        self
    }

    /// Sets the backpressure thresholds: a CServer counts as congested
    /// above `depth` outstanding sub-requests or a p99 latency ratio
    /// above `tail_ratio`; admissions with benefit below `benefit_margin`
    /// seconds are shed under elevated pressure.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or `tail_ratio` is not finite and ≥ 1.
    pub fn with_backpressure_thresholds(
        mut self,
        depth: u64,
        tail_ratio: f64,
        benefit_margin: f64,
    ) -> Self {
        assert!(depth > 0, "backpressure depth must be positive");
        assert!(
            tail_ratio.is_finite() && tail_ratio >= 1.0,
            "backpressure tail ratio must be ≥ 1"
        );
        self.backpressure_depth = depth;
        self.backpressure_tail_ratio = tail_ratio;
        self.shed_benefit_margin = benefit_margin;
        self
    }

    /// Sets the checkpoint thresholds: a new DMT snapshot is installed
    /// once `records` journal records *or* `bytes` journal bytes have
    /// accumulated since the previous one.
    ///
    /// # Panics
    ///
    /// Panics if either threshold is zero.
    pub fn with_checkpoint_thresholds(mut self, records: u64, bytes: u64) -> Self {
        assert!(records > 0, "checkpoint record threshold must be positive");
        assert!(bytes > 0, "checkpoint byte threshold must be positive");
        self.checkpoint_after_records = records;
        self.checkpoint_after_bytes = bytes;
        self
    }

    /// Sets the background scrub budget per Rebuilder wake (`0` disables).
    pub fn with_scrub(mut self, bytes_per_wake: u64) -> Self {
        self.scrub_bytes_per_wake = bytes_per_wake;
        self
    }

    /// Enables checksum verification on the read path.
    pub fn with_verify_on_read(mut self, on: bool) -> Self {
        self.verify_on_read = on;
        self
    }

    /// Sets the transient-error retry policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`.
    pub fn with_retry_policy(
        mut self,
        base_delay: SimDuration,
        max_delay: SimDuration,
        max_attempts: u32,
    ) -> Self {
        assert!(max_attempts > 0, "retry attempts must be positive");
        self.retry_base_delay = base_delay;
        self.retry_max_delay = max_delay.max(base_delay);
        self.retry_max_attempts = max_attempts;
        self
    }

    /// Sets the quarantine policy: `after` consecutive failures put a
    /// CServer out of admission for `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `after == 0` or `duration` is zero.
    pub fn with_quarantine(mut self, after: u32, duration: SimDuration) -> Self {
        assert!(after > 0, "quarantine threshold must be positive");
        assert!(!duration.is_zero(), "quarantine duration must be positive");
        self.quarantine_after = after;
        self.quarantine_duration = duration;
        self
    }

    /// Enables eager flushing of all dirty data while any CServer is at
    /// risk.
    pub fn with_flush_on_risk(mut self, on: bool) -> Self {
        self.flush_on_risk = on;
        self
    }

    /// Enables CARL-style persistent placement (no flushing/eviction).
    pub fn with_persistent_placement(mut self, on: bool) -> Self {
        self.persistent_placement = on;
        self
    }

    /// Enables in-memory retention of the journal record log.
    pub fn with_journal_log(mut self, on: bool) -> Self {
        self.record_journal_log = on;
        self
    }

    /// Sets the journal group-commit size.
    ///
    /// # Panics
    ///
    /// Panics if `records == 0`.
    pub fn with_journal_batch(mut self, records: u64) -> Self {
        assert!(records > 0, "journal batch must be positive");
        self.journal_batch_records = records;
        self
    }

    /// Sets the admission policy.
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Enables Fig.-11 force-miss mode.
    pub fn with_force_miss(mut self, on: bool) -> Self {
        self.force_miss = on;
        self
    }

    /// Sets the Rebuilder period.
    pub fn with_rebuild_period(mut self, period: SimDuration) -> Self {
        self.rebuild_period = period;
        self
    }

    /// Caps how many dirty extents one Rebuilder wake may flush.
    ///
    /// # Panics
    ///
    /// Panics if `extents == 0`.
    pub fn with_max_flush_per_wake(mut self, extents: usize) -> Self {
        assert!(extents > 0, "flush cap must be positive");
        self.max_flush_per_wake = extents;
        self
    }

    /// Enables eager read fetching (ablation).
    pub fn with_eager_read_fetch(mut self, on: bool) -> Self {
        self.eager_read_fetch = on;
        self
    }

    /// Sets the metadata-plane shard count (`1` = the single-writer
    /// reference plane).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(mut self, shards: u32) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shard_count = shards;
        self
    }

    /// Sets the shard routing stripe width in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn with_shard_stripe(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "shard stripe must be positive");
        self.shard_stripe = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = S4dConfig::new(1 << 30);
        assert_eq!(c.admission, AdmissionPolicy::Benefit);
        assert!(!c.force_miss);
        assert!(!c.eager_read_fetch);
        assert_eq!(c.rebuild_period, SimDuration::from_secs(1));
        assert_eq!(c.cache_capacity, 1 << 30);
    }

    #[test]
    fn journal_batch_builder() {
        let c = S4dConfig::new(1).with_journal_batch(1);
        assert_eq!(c.journal_batch_records, 1);
        assert_eq!(S4dConfig::new(1).journal_batch_records, 64);
    }

    #[test]
    #[should_panic(expected = "journal batch must be positive")]
    fn rejects_zero_journal_batch() {
        S4dConfig::new(1).with_journal_batch(0);
    }

    #[test]
    fn builders() {
        let c = S4dConfig::new(1)
            .with_admission(AdmissionPolicy::AlwaysAdmit)
            .with_force_miss(true)
            .with_rebuild_period(SimDuration::from_millis(100))
            .with_eager_read_fetch(true);
        assert_eq!(c.admission, AdmissionPolicy::AlwaysAdmit);
        assert!(c.force_miss);
        assert!(c.eager_read_fetch);
        assert_eq!(c.rebuild_period, SimDuration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "cache capacity must be positive")]
    fn rejects_zero_capacity() {
        S4dConfig::new(0);
    }

    #[test]
    fn failure_domain_builders() {
        let c = S4dConfig::new(1)
            .with_retry_policy(SimDuration::from_millis(1), SimDuration::from_millis(8), 6)
            .with_quarantine(2, SimDuration::from_secs(30))
            .with_flush_on_risk(true);
        assert_eq!(c.retry_base_delay, SimDuration::from_millis(1));
        assert_eq!(c.retry_max_delay, SimDuration::from_millis(8));
        assert_eq!(c.retry_max_attempts, 6);
        assert_eq!(c.quarantine_after, 2);
        assert_eq!(c.quarantine_duration, SimDuration::from_secs(30));
        assert!(c.flush_on_risk);
        // The cap never drops below the base.
        let c = S4dConfig::new(1).with_retry_policy(
            SimDuration::from_millis(10),
            SimDuration::from_millis(1),
            2,
        );
        assert_eq!(c.retry_max_delay, SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "retry attempts")]
    fn rejects_zero_attempts() {
        S4dConfig::new(1).with_retry_policy(SimDuration::ZERO, SimDuration::ZERO, 0);
    }

    #[test]
    #[should_panic(expected = "quarantine threshold")]
    fn rejects_zero_quarantine_threshold() {
        S4dConfig::new(1).with_quarantine(0, SimDuration::from_secs(1));
    }

    #[test]
    fn durability_builders() {
        let c = S4dConfig::new(1)
            .with_checkpoint_thresholds(100, 4096)
            .with_scrub(64 * 1024)
            .with_verify_on_read(true);
        assert_eq!(c.checkpoint_after_records, 100);
        assert_eq!(c.checkpoint_after_bytes, 4096);
        assert_eq!(c.scrub_bytes_per_wake, 64 * 1024);
        assert!(c.verify_on_read);
        let d = S4dConfig::new(1);
        assert_eq!(d.checkpoint_after_records, 8192);
        assert_eq!(d.checkpoint_after_bytes, 8 * 1024 * 1024);
        assert_eq!(d.scrub_bytes_per_wake, 0, "scrubbing is opt-in");
        assert!(!d.verify_on_read);
    }

    #[test]
    #[should_panic(expected = "checkpoint record threshold")]
    fn rejects_zero_checkpoint_records() {
        S4dConfig::new(1).with_checkpoint_thresholds(0, 1);
    }

    #[test]
    fn gray_failure_knobs_default_off() {
        let c = S4dConfig::new(1);
        assert_eq!(c.deadline_factor, 0.0, "deadlines are opt-in");
        assert!(!c.hedge_reads);
        assert!(!c.backpressure);
        let c = c
            .with_deadlines(8.0, SimDuration::from_millis(5))
            .with_hedged_reads(true)
            .with_backpressure(true)
            .with_backpressure_thresholds(4, 12.0, 0.001);
        assert_eq!(c.deadline_factor, 8.0);
        assert_eq!(c.deadline_min, SimDuration::from_millis(5));
        assert!(c.hedge_reads);
        assert!(c.backpressure);
        assert_eq!(c.backpressure_depth, 4);
        assert_eq!(c.backpressure_tail_ratio, 12.0);
        assert_eq!(c.shed_benefit_margin, 0.001);
    }

    #[test]
    #[should_panic(expected = "deadline factor")]
    fn rejects_non_positive_deadline_factor() {
        S4dConfig::new(1).with_deadlines(0.0, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "backpressure depth")]
    fn rejects_zero_backpressure_depth() {
        S4dConfig::new(1).with_backpressure_thresholds(0, 2.0, 0.0);
    }

    #[test]
    fn shard_knobs_default_to_reference_plane() {
        let c = S4dConfig::new(1);
        assert_eq!(c.shard_count, 1, "default must stay replay-identical");
        assert_eq!(c.shard_stripe, 64 * 1024);
        let c = c.with_shards(16).with_shard_stripe(128 * 1024);
        assert_eq!(c.shard_count, 16);
        assert_eq!(c.shard_stripe, 128 * 1024);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn rejects_zero_shards() {
        S4dConfig::new(1).with_shards(0);
    }

    #[test]
    #[should_panic(expected = "shard stripe must be positive")]
    fn rejects_zero_shard_stripe() {
        S4dConfig::new(1).with_shard_stripe(0);
    }
}
