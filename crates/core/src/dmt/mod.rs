//! The Data Mapping Table (paper §III.D, Fig. 5).
//!
//! The DMT tracks which ranges of each original file are cached, where in
//! the cache file they live (`C_file`, `C_offset`), and whether the cached
//! copy is dirty (`D_flag`). The in-memory organisation is an interval map
//! per file; persistence works through mutation records ([`crate::journal`])
//! that the middleware group-commits to a CServer journal file — the paper
//! implements this with Berkeley DB (§IV.A), whose key-value records serve
//! the same role.
//!
//! Two recency indices — one for clean extents, one for dirty — support the
//! Redirector's eviction policy ("a clean space will be the candidate based
//! on a LRU policy", §III.E) and the Rebuilder's oldest-first flushing, each
//! in time proportional to the work done rather than to the table size.
//!
//! Range queries (coverage views, overlap enumeration, boundary splits)
//! live in the [`view`] submodule; sharded deployments hold one `Dmt` per
//! shard behind [`crate::MetadataPlane`].

mod view;

use std::collections::{BTreeMap, HashMap};

use s4d_pfs::FileId;
use serde::{Deserialize, Serialize};

use crate::journal::JournalRecord;

pub use view::{CoveredPiece, RangeView};

/// One mapped extent of an original file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapExtent {
    /// Length in bytes.
    pub len: u64,
    /// Cache file holding the bytes.
    pub c_file: FileId,
    /// Offset within the cache file.
    pub c_offset: u64,
    /// The paper's `D_flag`: cached copy newer than DServers.
    pub dirty: bool,
    /// Bumped on every overwrite; used to detect writes racing a flush.
    pub version: u64,
    /// CRC32 of the cached bytes, when verified (the scrubber's seal).
    /// Cleared whenever the bytes may change: overwrites and splits.
    pub checksum: Option<u32>,
    /// LRU timestamp (internal; lives in the index matching `dirty`).
    touch: u64,
}

/// The Data Mapping Table.
#[derive(Debug, Clone, Default)]
pub struct Dmt {
    files: HashMap<FileId, BTreeMap<u64, MapExtent>>,
    /// Recency index of clean extents: touch → (file, d_offset).
    lru_clean: BTreeMap<u64, (FileId, u64)>,
    /// Recency index of dirty extents.
    lru_dirty: BTreeMap<u64, (FileId, u64)>,
    next_touch: u64,
    mapped: u64,
    dirty_total: u64,
    entry_count: usize,
    /// Mutation records accumulated since the last journal drain.
    pending_journal: Vec<JournalRecord>,
    /// Lifetime mutation records (metadata-size accounting, §V.E.1).
    journal_total: u64,
}

impl Dmt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Dmt::default()
    }

    /// Total bytes currently mapped.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped
    }

    /// Total dirty bytes (maintained incrementally).
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_total
    }

    /// Number of extents.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Lifetime mutation records (each costs [`crate::DMT_RECORD_BYTES`]
    /// of journal space).
    pub fn journal_records_total(&self) -> u64 {
        self.journal_total
    }

    /// Drains the mutation records accumulated since the last drain — the
    /// middleware serialises these into the next synchronous journal write,
    /// and crash recovery replays them (see [`crate::journal`]).
    pub fn take_pending_journal(&mut self) -> Vec<JournalRecord> {
        std::mem::take(&mut self.pending_journal)
    }

    /// Iterates over every live extent as `(file, d_offset, extent)`.
    pub fn iter_extents(&self) -> impl Iterator<Item = (FileId, u64, &MapExtent)> {
        self.files
            .iter()
            .flat_map(|(&f, m)| m.iter().map(move |(&o, e)| (f, o, e)))
    }

    fn record(&mut self, r: JournalRecord) {
        self.pending_journal.push(r);
        self.journal_total += 1;
    }

    fn bump(&mut self) -> u64 {
        let t = self.next_touch;
        self.next_touch += 1;
        t
    }

    fn index(&mut self, dirty: bool) -> &mut BTreeMap<u64, (FileId, u64)> {
        if dirty {
            &mut self.lru_dirty
        } else {
            &mut self.lru_clean
        }
    }

    /// Inserts a new extent mapping `[d_offset, d_offset+len)` →
    /// `(c_file, c_offset)`.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing extent (the caller must
    /// only insert into gaps) or `len == 0`.
    pub fn insert(
        &mut self,
        file: FileId,
        d_offset: u64,
        len: u64,
        c_file: FileId,
        c_offset: u64,
        dirty: bool,
    ) {
        assert!(len > 0, "cannot map an empty extent");
        let view = self.view(file, d_offset, len);
        assert!(
            view.fully_missed(),
            "DMT insert overlaps an existing extent at {file}:{d_offset}+{len}"
        );
        let touch = self.bump();
        self.index(dirty).insert(touch, (file, d_offset));
        self.files.entry(file).or_default().insert(
            d_offset,
            MapExtent {
                len,
                c_file,
                c_offset,
                dirty,
                version: 0,
                checksum: None,
                touch,
            },
        );
        self.mapped += len;
        if dirty {
            self.dirty_total += len;
        }
        self.entry_count += 1;
        self.record(JournalRecord::Insert {
            d_file: file,
            d_offset,
            len,
            c_file,
            c_offset,
            dirty,
        });
    }

    /// Refreshes the LRU position of every extent overlapping the range.
    pub fn touch_range(&mut self, file: FileId, offset: u64, len: u64) {
        let keys = self.overlapping_keys(file, offset, len);
        for key in keys {
            let touch = self.bump();
            let Some(e) = self.files.get_mut(&file).and_then(|m| m.get_mut(&key)) else {
                continue; // key came from overlapping_keys on this same map
            };
            let (old_touch, dirty) = (e.touch, e.dirty);
            e.touch = touch;
            let idx = self.index(dirty);
            idx.remove(&old_touch);
            idx.insert(touch, (file, key));
        }
    }

    /// Marks `[offset, offset+len)` dirty, splitting boundary extents so
    /// only the written bytes are flagged. Bytes of the range not covered
    /// by the DMT are ignored (the caller routes them elsewhere).
    pub fn mark_dirty(&mut self, file: FileId, offset: u64, len: u64) {
        let keys = self.overlapping_keys(file, offset, len);
        for key in keys {
            self.split_off(file, key, offset, offset + len);
        }
        // After splitting, flag every fully contained extent.
        let keys = self.overlapping_keys(file, offset, len);
        for key in keys {
            let touch = self.bump();
            let Some(e) = self.files.get_mut(&file).and_then(|m| m.get_mut(&key)) else {
                continue; // key came from overlapping_keys on this same map
            };
            debug_assert!(key >= offset && key + e.len <= offset + len);
            let was_dirty = e.dirty;
            let (old_touch, e_len) = (e.touch, e.len);
            e.dirty = true;
            e.version += 1;
            e.checksum = None; // the bytes are about to change
            e.touch = touch;
            self.index(was_dirty).remove(&old_touch);
            self.lru_dirty.insert(touch, (file, key));
            if !was_dirty {
                self.dirty_total += e_len;
            }
            self.record(JournalRecord::SetDirty {
                d_file: file,
                d_offset: key,
                len: e_len,
            });
        }
    }

    /// Invalidates the seal of every extent overlapping the range without
    /// changing its dirty state — for write-through overwrites whose cache
    /// bytes change while the journal is stalled. The version bump gates
    /// out any in-flight seal computed over the old bytes; no journal
    /// record is emitted (a lost or stale seal only downgrades integrity
    /// checking — both copies hold the new bytes, so repair converges).
    pub fn unseal(&mut self, file: FileId, offset: u64, len: u64) {
        let keys = self.overlapping_keys(file, offset, len);
        for key in keys {
            self.split_off(file, key, offset, offset + len);
        }
        let keys = self.overlapping_keys(file, offset, len);
        for key in keys {
            if let Some(e) = self.files.get_mut(&file).and_then(|m| m.get_mut(&key)) {
                e.version += 1;
                e.checksum = None;
            }
        }
    }

    /// Marks the extent at exactly `d_offset` clean, provided its version
    /// still matches (no write raced the flush). Returns whether it did.
    pub fn mark_clean_if(&mut self, file: FileId, d_offset: u64, version: u64) -> bool {
        let Some(e) = self.files.get_mut(&file).and_then(|m| m.get_mut(&d_offset)) else {
            return false;
        };
        if e.version != version || !e.dirty {
            return false;
        }
        e.dirty = false;
        let (touch, len) = (e.touch, e.len);
        self.lru_dirty.remove(&touch);
        self.lru_clean.insert(touch, (file, d_offset));
        self.dirty_total -= len;
        self.record(JournalRecord::SetClean {
            d_file: file,
            d_offset,
        });
        true
    }

    /// Marks the extent at exactly `d_offset` clean unconditionally —
    /// used by journal replay, where the persisted record is authoritative.
    /// Returns whether such an extent existed.
    pub fn force_clean(&mut self, file: FileId, d_offset: u64) -> bool {
        let Some(e) = self.files.get_mut(&file).and_then(|m| m.get_mut(&d_offset)) else {
            return false;
        };
        if e.dirty {
            e.dirty = false;
            let (touch, len) = (e.touch, e.len);
            self.lru_dirty.remove(&touch);
            self.lru_clean.insert(touch, (file, d_offset));
            self.dirty_total -= len;
            self.record(JournalRecord::SetClean {
                d_file: file,
                d_offset,
            });
        }
        true
    }

    /// The extent starting exactly at `d_offset`, if any.
    pub fn get(&self, file: FileId, d_offset: u64) -> Option<&MapExtent> {
        self.files.get(&file).and_then(|m| m.get(&d_offset))
    }

    /// Mutation records currently buffered (not yet drained into a journal
    /// write). The middleware's journal-before-ack audit asserts this is
    /// zero whenever an operation returns to the runner.
    pub fn pending_records(&self) -> usize {
        self.pending_journal.len()
    }

    /// Attaches a content checksum to the extent at exactly `d_offset`,
    /// provided its version still matches (no write raced the
    /// verification). Records a `Seal` journal record. Returns whether the
    /// seal applied.
    pub fn seal_if(&mut self, file: FileId, d_offset: u64, version: u64, checksum: u32) -> bool {
        let Some(e) = self.files.get_mut(&file).and_then(|m| m.get_mut(&d_offset)) else {
            return false;
        };
        if e.version != version {
            return false;
        }
        e.checksum = Some(checksum);
        let len = e.len;
        self.record(JournalRecord::Seal {
            d_file: file,
            d_offset,
            checksum,
            len,
        });
        true
    }

    /// Applies a replayed `Seal` record: attaches the checksum only when
    /// an extent starts exactly at `d_offset` with exactly `len` bytes (a
    /// split or re-created extent must not inherit a stale seal). Emits no
    /// journal record. Returns whether it applied.
    pub fn apply_seal(&mut self, file: FileId, d_offset: u64, len: u64, checksum: u32) -> bool {
        let Some(e) = self.files.get_mut(&file).and_then(|m| m.get_mut(&d_offset)) else {
            return false;
        };
        if e.len != len {
            return false;
        }
        e.checksum = Some(checksum);
        true
    }

    /// Drops the checksum of every dirty extent — the crash-recovery
    /// conservative default: a torn in-flight overwrite can leave a dirty
    /// extent's bytes ahead of its last sealed checksum, and treating that
    /// as corruption would discard acknowledged data. Dirty extents become
    /// unverified until their next flush or write completion re-seals them.
    pub fn clear_dirty_checksums(&mut self) {
        for m in self.files.values_mut() {
            for e in m.values_mut() {
                if e.dirty {
                    e.checksum = None;
                }
            }
        }
    }

    /// Removes the extent starting exactly at `d_offset`.
    pub fn remove(&mut self, file: FileId, d_offset: u64) -> Option<MapExtent> {
        let e = self.files.get_mut(&file)?.remove(&d_offset)?;
        if e.dirty {
            self.lru_dirty.remove(&e.touch);
            self.dirty_total -= e.len;
        } else {
            self.lru_clean.remove(&e.touch);
        }
        self.mapped -= e.len;
        self.entry_count -= 1;
        self.record(JournalRecord::Remove {
            d_file: file,
            d_offset,
        });
        Some(e)
    }

    /// Selects and removes clean extents in LRU order until at least
    /// `bytes` of cache space are reclaimed (or no clean extents remain).
    /// Returns the victims as `(file, d_offset, extent)`. Cost is
    /// proportional to the number of victims, not the table size.
    pub fn evict_clean_lru(&mut self, bytes: u64) -> Vec<(FileId, u64, MapExtent)> {
        self.evict_clean_lru_excluding(bytes, |_, _, _| false)
    }

    /// Like [`Dmt::evict_clean_lru`], but skips extents for which
    /// `is_pinned(file, d_offset, len)` returns true — the Redirector pins
    /// ranges referenced by in-flight reads so eviction cannot discard
    /// bytes a queued sub-request is about to return.
    pub fn evict_clean_lru_excluding(
        &mut self,
        bytes: u64,
        is_pinned: impl Fn(FileId, u64, u64) -> bool,
    ) -> Vec<(FileId, u64, MapExtent)> {
        let mut victim_keys = Vec::new();
        let mut reclaimed = 0u64;
        for (_, &(file, d_off)) in self.lru_clean.iter() {
            if reclaimed >= bytes {
                break;
            }
            let Some(len) = self.get(file, d_off).map(|e| e.len) else {
                continue; // clean index entries are kept live; skip if stale
            };
            if is_pinned(file, d_off, len) {
                continue;
            }
            reclaimed += len;
            victim_keys.push((file, d_off));
        }
        victim_keys
            .into_iter()
            .filter_map(|(file, d_off)| self.remove(file, d_off).map(|e| (file, d_off, e)))
            .collect()
    }

    /// Up to `limit` dirty extents, least recently used first, as
    /// `(file, d_offset, extent)` snapshots. Cost is `O(limit)`.
    pub fn dirty_lru(&self, limit: usize) -> Vec<(FileId, u64, MapExtent)> {
        self.lru_dirty
            .values()
            .take(limit)
            .filter_map(|&(file, d_off)| {
                let e = self.get(file, d_off)?;
                debug_assert!(e.dirty);
                Some((file, d_off, *e))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const F: FileId = FileId(1);
    const CF: FileId = FileId(100);

    #[test]
    fn empty_view_is_one_gap() {
        let d = Dmt::new();
        let v = d.view(F, 10, 90);
        assert!(v.fully_missed());
        assert_eq!(v.gaps, vec![(10, 90)]);
        assert_eq!(v.covered_bytes(), 0);
        assert!(d.view(F, 0, 0).gaps.is_empty());
    }

    #[test]
    fn insert_and_exact_hit() {
        let mut d = Dmt::new();
        d.insert(F, 100, 50, CF, 0, true);
        let v = d.view(F, 100, 50);
        assert!(v.fully_covered());
        assert_eq!(v.pieces.len(), 1);
        let p = v.pieces[0];
        assert_eq!(p.c_file, CF);
        assert_eq!(p.c_offset, 0);
        assert!(p.dirty);
        assert_eq!(d.mapped_bytes(), 50);
        assert_eq!(d.dirty_bytes(), 50);
        assert_eq!(d.entry_count(), 1);
    }

    #[test]
    fn partial_overlap_translates_offsets() {
        let mut d = Dmt::new();
        d.insert(F, 100, 50, CF, 1000, false);
        let v = d.view(F, 120, 100);
        assert_eq!(v.pieces.len(), 1);
        assert_eq!(v.pieces[0].d_offset, 120);
        assert_eq!(v.pieces[0].len, 30);
        assert_eq!(v.pieces[0].c_offset, 1020);
        assert_eq!(v.gaps, vec![(150, 70)]);
    }

    #[test]
    fn view_tiles_range_with_multiple_extents() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, false);
        d.insert(F, 20, 10, CF, 10, false);
        d.insert(F, 40, 10, CF, 20, true);
        let v = d.view(F, 0, 60);
        assert_eq!(v.pieces.len(), 3);
        assert_eq!(v.gaps, vec![(10, 10), (30, 10), (50, 10)]);
        assert_eq!(v.covered_bytes(), 30);
    }

    #[test]
    #[should_panic(expected = "overlaps an existing extent")]
    fn insert_rejects_overlap() {
        let mut d = Dmt::new();
        d.insert(F, 0, 100, CF, 0, false);
        d.insert(F, 50, 10, CF, 500, false);
    }

    #[test]
    fn mark_dirty_splits_boundaries() {
        let mut d = Dmt::new();
        d.insert(F, 0, 100, CF, 0, false);
        d.mark_dirty(F, 30, 40);
        // Now three extents: [0,30) clean, [30,70) dirty, [70,100) clean.
        assert_eq!(d.entry_count(), 3);
        assert_eq!(d.mapped_bytes(), 100);
        let v = d.view(F, 0, 100);
        assert_eq!(v.pieces.len(), 3);
        assert!(!v.pieces[0].dirty);
        assert!(v.pieces[1].dirty);
        assert!(!v.pieces[2].dirty);
        // Cache offsets remain contiguous through the split.
        assert_eq!(v.pieces[0].c_offset, 0);
        assert_eq!(v.pieces[1].c_offset, 30);
        assert_eq!(v.pieces[2].c_offset, 70);
        assert_eq!(d.dirty_bytes(), 40);
    }

    #[test]
    fn mark_clean_respects_version() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, false);
        d.mark_dirty(F, 0, 10);
        let v = d.get(F, 0).unwrap().version;
        // A racing write bumps the version.
        d.mark_dirty(F, 0, 10);
        assert!(!d.mark_clean_if(F, 0, v), "stale version must not clean");
        let v2 = d.get(F, 0).unwrap().version;
        assert!(d.mark_clean_if(F, 0, v2));
        assert!(!d.get(F, 0).unwrap().dirty);
        assert_eq!(d.dirty_bytes(), 0);
        assert!(!d.mark_clean_if(F, 0, v2), "already clean");
        assert!(!d.mark_clean_if(F, 999, 0), "absent extent");
    }

    #[test]
    fn force_clean_ignores_versions() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, true);
        assert!(d.force_clean(F, 0));
        assert!(!d.get(F, 0).unwrap().dirty);
        assert_eq!(d.dirty_bytes(), 0);
        assert!(d.force_clean(F, 0), "idempotent on clean extents");
        assert!(!d.force_clean(F, 99), "absent extent reported");
    }

    #[test]
    fn eviction_prefers_lru_clean() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, false); // oldest
        d.insert(F, 100, 10, CF, 10, false);
        d.insert(F, 200, 10, CF, 20, true); // dirty: not evictable
                                            // Touch the oldest so the middle becomes LRU.
        d.touch_range(F, 0, 10);
        let victims = d.evict_clean_lru(10);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].1, 100, "middle extent was least recently used");
        assert_eq!(d.entry_count(), 2);
        // Asking for more than clean space yields what exists.
        let victims = d.evict_clean_lru(1000);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].1, 0);
        assert!(d.evict_clean_lru(1).is_empty(), "only dirty data remains");
        assert_eq!(d.dirty_bytes(), 10);
    }

    #[test]
    fn eviction_skips_pinned_ranges() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, false);
        d.insert(F, 100, 10, CF, 10, false);
        // Pin the older extent: the newer one must be evicted instead.
        let victims = d.evict_clean_lru_excluding(5, |_, off, len| off < 10 && off + len > 0);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].1, 100);
        // With everything pinned, nothing is evicted.
        assert!(d.evict_clean_lru_excluding(1000, |_, _, _| true).is_empty());
    }

    #[test]
    fn dirty_lru_lists_oldest_first() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, true);
        d.insert(F, 100, 10, CF, 10, true);
        d.insert(F, 200, 10, CF, 20, false);
        let dirty = d.dirty_lru(10);
        assert_eq!(dirty.len(), 2);
        assert_eq!(dirty[0].1, 0);
        assert_eq!(dirty[1].1, 100);
        assert_eq!(d.dirty_lru(1).len(), 1);
    }

    #[test]
    fn clean_transition_preserves_recency_order() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, true); // oldest
        d.insert(F, 100, 10, CF, 10, false);
        // Cleaning the dirty extent moves it to the clean index with its
        // original (older) recency: it becomes the eviction candidate.
        let v = d.get(F, 0).unwrap().version;
        d.mark_clean_if(F, 0, v);
        let victims = d.evict_clean_lru(5);
        assert_eq!(victims[0].1, 0);
    }

    #[test]
    fn seals_are_version_gated_and_cleared_on_change() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, false);
        let v = d.get(F, 0).unwrap().version;
        assert!(!d.seal_if(F, 0, v + 1, 7), "stale version must not seal");
        assert!(!d.seal_if(F, 99, 0, 7), "absent extent");
        assert!(d.seal_if(F, 0, v, 7));
        assert_eq!(d.get(F, 0).unwrap().checksum, Some(7));
        // Cleaning does not touch the bytes: the seal survives.
        d.mark_dirty(F, 0, 10);
        assert_eq!(d.get(F, 0).unwrap().checksum, None, "overwrite clears");
        let v2 = d.get(F, 0).unwrap().version;
        assert!(d.seal_if(F, 0, v2, 9));
        assert!(d.mark_clean_if(F, 0, v2));
        assert_eq!(d.get(F, 0).unwrap().checksum, Some(9));
        // A split invalidates whole-extent checksums on every piece.
        d.mark_dirty(F, 2, 4);
        for (off, e) in d.extents_overlapping(F, 0, 10) {
            assert_eq!(e.checksum, None, "piece at {off} kept a stale seal");
        }
        assert_eq!(d.extents_overlapping(F, 0, 10).len(), 3);
        // clear_dirty_checksums drops only dirty seals.
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, false);
        d.insert(F, 50, 10, CF, 10, true);
        assert!(d.apply_seal(F, 0, 10, 1));
        assert!(d.apply_seal(F, 50, 10, 2));
        assert!(!d.apply_seal(F, 50, 99, 3), "length mismatch");
        d.clear_dirty_checksums();
        assert_eq!(d.get(F, 0).unwrap().checksum, Some(1));
        assert_eq!(d.get(F, 50).unwrap().checksum, None);
    }

    #[test]
    fn remove_updates_accounting() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, true);
        assert!(d.remove(F, 0).is_some());
        assert!(d.remove(F, 0).is_none());
        assert_eq!(d.mapped_bytes(), 0);
        assert_eq!(d.dirty_bytes(), 0);
        assert_eq!(d.entry_count(), 0);
    }

    #[test]
    fn journal_accounting_drains() {
        let mut d = Dmt::new();
        d.insert(F, 0, 10, CF, 0, false);
        d.mark_dirty(F, 0, 10);
        let records = d.take_pending_journal();
        assert!(records.len() >= 2);
        assert!(matches!(records[0], JournalRecord::Insert { .. }));
        assert!(d.take_pending_journal().is_empty());
        assert!(d.journal_records_total() >= 2);
        assert_eq!(d.iter_extents().count(), 1);
    }

    // Model-based test: the DMT must agree with a per-byte map under a
    // random sequence of inserts (into gaps), dirty markings, cleanings,
    // and evictions; the incremental dirty counter must agree with a
    // recount.
    proptest! {
        #[test]
        fn prop_matches_byte_model(
            ops in proptest::collection::vec((0u64..200, 1u64..40, 0u8..4), 1..60)
        ) {
            const N: usize = 256;
            // byte -> Option<(c_byte, dirty)>
            let mut model: Vec<Option<(u64, bool)>> = vec![None; N];
            let mut d = Dmt::new();
            let mut next_c = 0u64;
            for (off, len, kind) in ops {
                let len = len.min(N as u64 - off);
                if len == 0 { continue; }
                match kind {
                    0 => {
                        // Insert the gaps of this range as fresh extents.
                        let view = d.view(F, off, len);
                        for (g_off, g_len) in view.gaps {
                            d.insert(F, g_off, g_len, CF, next_c, false);
                            for b in g_off..g_off + g_len {
                                model[b as usize] = Some((next_c + (b - g_off), false));
                            }
                            next_c += g_len;
                        }
                    }
                    1 => {
                        d.mark_dirty(F, off, len);
                        for b in off..off + len {
                            if let Some((c, _)) = model[b as usize] {
                                model[b as usize] = Some((c, true));
                            }
                        }
                    }
                    2 => {
                        // Clean whatever extent starts exactly at `off`.
                        if d.force_clean(F, off) {
                            let e = d.get(F, off).unwrap();
                            for b in off..off + e.len {
                                if let Some((c, _)) = model[b as usize] {
                                    model[b as usize] = Some((c, false));
                                }
                            }
                        }
                    }
                    _ => {
                        // Evict up to `len` clean bytes.
                        for (_, v_off, e) in d.evict_clean_lru(len) {
                            for b in v_off..v_off + e.len {
                                model[b as usize] = None;
                            }
                        }
                    }
                }
            }
            // Compare every byte through view().
            let v = d.view(F, 0, N as u64);
            let mut got: Vec<Option<(u64, bool)>> = vec![None; N];
            for p in &v.pieces {
                for i in 0..p.len {
                    got[(p.d_offset + i) as usize] = Some((p.c_offset + i, p.dirty));
                }
            }
            prop_assert_eq!(&got, &model);
            let mapped: u64 = model.iter().filter(|b| b.is_some()).count() as u64;
            prop_assert_eq!(d.mapped_bytes(), mapped);
            let dirty: u64 = model.iter().filter(|b| matches!(b, Some((_, true)))).count() as u64;
            prop_assert_eq!(d.dirty_bytes(), dirty);
            // Index consistency: every index entry points at a live extent
            // with matching dirtiness; counts add up.
            prop_assert_eq!(
                d.entry_count(),
                d.iter_extents().count()
            );
            let dirty_entries = d.iter_extents().filter(|(_, _, e)| e.dirty).count();
            prop_assert_eq!(d.dirty_lru(usize::MAX).len(), dirty_entries);
        }
    }
}
