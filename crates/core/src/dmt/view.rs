//! Range queries over the DMT interval map: coverage views, overlap
//! enumeration, and the boundary-split primitive shared by the mutation
//! paths in the parent module.

use s4d_pfs::FileId;

use super::{Dmt, MapExtent};

/// A covered piece of a queried range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoveredPiece {
    /// Offset in the original file where the piece starts.
    pub d_offset: u64,
    /// Piece length.
    pub len: u64,
    /// Cache file holding it.
    pub c_file: FileId,
    /// Offset of the piece within the cache file.
    pub c_offset: u64,
    /// Whether the cached copy is dirty.
    pub dirty: bool,
}

/// The result of a range query: covered pieces and uncovered gaps, both in
/// file order, exactly tiling the queried range.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeView {
    /// Cached pieces.
    pub pieces: Vec<CoveredPiece>,
    /// Uncovered `(offset, len)` gaps.
    pub gaps: Vec<(u64, u64)>,
}

impl RangeView {
    /// True if the whole range is cached.
    pub fn fully_covered(&self) -> bool {
        self.gaps.is_empty()
    }

    /// True if nothing of the range is cached.
    pub fn fully_missed(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.pieces.iter().map(|p| p.len).sum()
    }
}

impl Dmt {
    /// Queries coverage of `[offset, offset+len)`.
    pub fn view(&self, file: FileId, offset: u64, len: u64) -> RangeView {
        let mut view = RangeView::default();
        if len == 0 {
            return view;
        }
        let end = offset + len;
        let mut cursor = offset;
        if let Some(map) = self.files.get(&file) {
            // Start from the extent at or before `offset`.
            let start_key = map
                .range(..=offset)
                .next_back()
                .filter(|(&s, e)| s + e.len > offset)
                .map(|(&s, _)| s)
                .unwrap_or(offset);
            for (&s, e) in map.range(start_key..end) {
                let e_end = s + e.len;
                if e_end <= offset || s >= end {
                    continue;
                }
                let lo = s.max(offset);
                let hi = e_end.min(end);
                if lo > cursor {
                    view.gaps.push((cursor, lo - cursor));
                }
                view.pieces.push(CoveredPiece {
                    d_offset: lo,
                    len: hi - lo,
                    c_file: e.c_file,
                    c_offset: e.c_offset + (lo - s),
                    dirty: e.dirty,
                });
                cursor = hi;
            }
        }
        if cursor < end {
            view.gaps.push((cursor, end - cursor));
        }
        view
    }

    /// Extents overlapping `[offset, offset+len)`, as
    /// `(d_offset, extent)` snapshots in file order.
    pub fn extents_overlapping(
        &self,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Vec<(u64, MapExtent)> {
        self.overlapping_keys(file, offset, len)
            .into_iter()
            .filter_map(|k| self.get(file, k).map(|e| (k, *e)))
            .collect()
    }

    pub(super) fn overlapping_keys(&self, file: FileId, offset: u64, len: u64) -> Vec<u64> {
        let Some(map) = self.files.get(&file) else {
            return Vec::new();
        };
        if len == 0 {
            return Vec::new();
        }
        let end = offset + len;
        let start_key = map
            .range(..=offset)
            .next_back()
            .filter(|(&s, e)| s + e.len > offset)
            .map(|(&s, _)| s)
            .unwrap_or(offset);
        map.range(start_key..end)
            .filter(|(&s, e)| s < end && s + e.len > offset)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Splits the extent at `key` so that no extent straddles `lo` or `hi`.
    pub(super) fn split_off(&mut self, file: FileId, key: u64, lo: u64, hi: u64) {
        let Some(map) = self.files.get_mut(&file) else {
            return; // nothing to split
        };
        let Some(e) = map.get(&key).copied() else {
            return; // nothing to split
        };
        let e_end = key + e.len;
        let cut_lo = lo.max(key);
        let cut_hi = hi.min(e_end);
        if cut_lo == key && cut_hi == e_end {
            return; // fully inside, no split needed
        }
        // Remove and re-insert up to three pieces.
        map.remove(&key);
        self.index(e.dirty).remove(&e.touch);
        self.entry_count -= 1;
        self.mapped -= e.len;
        if e.dirty {
            self.dirty_total -= e.len;
        }
        let mut pieces: Vec<(u64, u64)> = Vec::new();
        if cut_lo > key {
            pieces.push((key, cut_lo - key));
        }
        pieces.push((cut_lo, cut_hi - cut_lo));
        if e_end > cut_hi {
            pieces.push((cut_hi, e_end - cut_hi));
        }
        for (p_off, p_len) in pieces {
            let touch = self.bump();
            self.index(e.dirty).insert(touch, (file, p_off));
            self.files.entry(file).or_default().insert(
                p_off,
                MapExtent {
                    len: p_len,
                    c_file: e.c_file,
                    c_offset: e.c_offset + (p_off - key),
                    dirty: e.dirty,
                    version: e.version,
                    // A whole-extent checksum does not survive a split.
                    checksum: None,
                    touch,
                },
            );
            self.entry_count += 1;
            self.mapped += p_len;
            if e.dirty {
                self.dirty_total += p_len;
            }
        }
        // No journal record: replaying the SetDirty that triggered the
        // split reproduces it exactly.
    }
}
