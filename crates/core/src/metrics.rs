//! Middleware-level counters.

use serde::{Deserialize, Serialize};

/// Counters the S4D-Cache middleware accumulates across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct S4dMetrics {
    /// Requests priced by the cost model.
    pub evaluated: u64,
    /// Requests classified performance-critical (CDT insertions attempted).
    pub critical: u64,
    /// Write requests (fully or partly) absorbed by CServers.
    pub writes_to_cache: u64,
    /// Write requests sent entirely to DServers.
    pub writes_to_disk: u64,
    /// Read requests served entirely from CServers.
    pub read_full_hits: u64,
    /// Read requests partially served from CServers.
    pub read_partial_hits: u64,
    /// Read requests missing CServers entirely.
    pub read_misses: u64,
    /// Read misses whose CDT entry was flagged for lazy fetching.
    pub lazy_marks: u64,
    /// Clean extents evicted to make room.
    pub evictions: u64,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: u64,
    /// Dirty extents flushed back to DServers by the Rebuilder.
    pub flushes: u64,
    /// Bytes flushed.
    pub flushed_bytes: u64,
    /// Ranges fetched into CServers by the Rebuilder.
    pub fetches: u64,
    /// Bytes fetched.
    pub fetched_bytes: u64,
    /// Synchronous journal writes issued.
    pub journal_writes: u64,
    /// Journal bytes written.
    pub journal_bytes: u64,
    /// Journal records carried by those writes (group-commit numerator:
    /// records ÷ writes = appends per fsync).
    pub journal_records_written: u64,
    /// Cache admissions denied for lack of space (after eviction).
    pub admission_denied_space: u64,
    /// Sub-request retries granted after transient CServer errors.
    pub retries: u64,
    /// Quarantines entered (a server can contribute several across a run).
    pub quarantines: u64,
    /// Clean cached pieces served from OPFS instead of an unhealthy
    /// CServer (graceful-degradation fallback reads).
    pub fallback_reads: u64,
    /// Bytes those fallback reads covered.
    pub fallback_bytes: u64,
    /// Dirty (unflushed) cached bytes destroyed by a CServer crash —
    /// the data-loss figure a deployment must watch.
    pub dirty_bytes_lost: u64,
    /// Clean cached bytes invalidated after a CServer crash (no loss:
    /// OPFS still holds them; reads re-fetch from there).
    pub crash_invalidated_bytes: u64,
    /// Cache admissions denied because a CServer was quarantined.
    pub admission_denied_health: u64,
    /// DMT checkpoints installed.
    pub checkpoints: u64,
    /// Bytes of checkpoint snapshots written.
    pub checkpoint_bytes: u64,
    /// Journal records compacted away by checkpointing (records that
    /// recovery no longer needs to replay).
    pub records_compacted: u64,
    /// Cached bytes the scrubber has verified against their seals.
    pub scrub_scanned_bytes: u64,
    /// Corrupted clean bytes the scrubber repaired from DServers.
    pub scrub_repaired_bytes: u64,
    /// Corrupted dirty bytes the scrubber dropped (unrecoverable: the
    /// only up-to-date copy failed its checksum).
    pub scrub_lost_bytes: u64,
    /// Dirty unsealed bytes the scrubber skipped (nothing to verify
    /// against).
    pub scrub_unverified_bytes: u64,
    /// Cache admissions shed under backpressure (degraded to OPFS
    /// because the cache tier was congested or fail-slow).
    pub shed_admissions: u64,
    /// Straggling clean cached reads answered with a hedged OPFS read.
    pub hedged_reads: u64,
    /// Deadline misses the middleware chose to wait out (dirty bytes
    /// with no second copy, or overhead traffic).
    pub straggler_waits: u64,
    /// Straggling sub-requests abandoned outright (the request was
    /// re-planned around the slow server).
    pub straggler_abandons: u64,
    /// Space-manager releases that did not match a live allocation
    /// (double release, over-release, or a range never handed out).
    /// An accounting bug in the middleware — must stay 0.
    pub space_over_releases: u64,
    /// Durable-effect writes failed by scripted space exhaustion
    /// (`ENOSPC`) on a CServer.
    pub nospace_failures: u64,
    /// Durable-effect operations failed by scripted media errors
    /// (`EIO` on a bad device sector).
    pub media_failures: u64,
    /// Synchronous journal appends that failed (space exhaustion or
    /// media error under the journal) and stalled the durability engine
    /// until a retry succeeds.
    pub durability_stalls: u64,
    /// Checkpoint installs skipped because the slot write failed; the
    /// previous checkpoint and a longer journal tail stay authoritative.
    pub checkpoints_skipped: u64,
    /// Fresh admissions rolled back because their write plan failed
    /// before the data landed: the dirty mapping to (possibly) unwritten
    /// cache space is removed and its space released, so the Rebuilder
    /// can never flush unwritten bytes over good DServer data.
    pub admission_unwinds: u64,
    /// Planned journal frames whose carrying plan failed: the records
    /// requeued and the append reservation rolled back (no hole).
    pub journal_requeues: u64,
    /// Admissions denied because the journal was stalled: the Insert
    /// record could not be made durable before the ack, so the write
    /// degraded to OPFS (journal-before-ack).
    pub admission_denied_stall: u64,
    /// Clean mapped pieces written through (cache and OPFS both updated,
    /// extent kept clean) because the journal stall blocked the SetDirty
    /// record a re-dirty would need before the ack.
    pub stall_writethroughs: u64,
}

impl S4dMetrics {
    /// Fraction of evaluated requests that were critical, in `[0, 1]`.
    pub fn critical_ratio(&self) -> f64 {
        if self.evaluated == 0 {
            0.0
        } else {
            self.critical as f64 / self.evaluated as f64
        }
    }

    /// Read hit ratio (full hits over all reads), in `[0, 1]`.
    pub fn read_hit_ratio(&self) -> f64 {
        let reads = self.read_full_hits + self.read_partial_hits + self.read_misses;
        if reads == 0 {
            0.0
        } else {
            self.read_full_hits as f64 / reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty() {
        let m = S4dMetrics::default();
        assert_eq!(m.critical_ratio(), 0.0);
        assert_eq!(m.read_hit_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let m = S4dMetrics {
            evaluated: 10,
            critical: 4,
            read_full_hits: 3,
            read_partial_hits: 1,
            read_misses: 6,
            ..Default::default()
        };
        assert!((m.critical_ratio() - 0.4).abs() < 1e-12);
        assert!((m.read_hit_ratio() - 0.3).abs() < 1e-12);
    }
}
