//! The Critical Data Table (paper §III.C, Fig. 5).
//!
//! Each entry records one performance-critical request range: the original
//! file, offset, length, and the `C_flag` that tells the Rebuilder the data
//! still needs to be cached. Entries are keyed by `(file, offset, length)`
//! — the granularity at which applications re-issue requests, which is what
//! makes first-run identification useful on the second run (§V.A).

use std::collections::{BTreeMap, HashMap, VecDeque};

use s4d_pfs::FileId;
use serde::{Deserialize, Serialize};

/// One CDT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdtEntry {
    /// Original file.
    pub file: FileId,
    /// Request offset (the paper's `D_offset`).
    pub offset: u64,
    /// Request length.
    pub len: u64,
    /// Whether the Rebuilder should cache this data (the paper's `C_flag`).
    pub c_flag: bool,
}

/// The Critical Data Table: a bounded map of performance-critical ranges.
///
/// When full, the oldest entry is evicted (insertion order), bounding the
/// memory the Identifier may consume on arbitrarily long runs.
#[derive(Debug, Clone)]
pub struct Cdt {
    /// Entry -> (C_flag, insertion sequence).
    entries: HashMap<(FileId, u64, u64), (bool, u64)>,
    order: VecDeque<(FileId, u64, u64)>,
    /// Index of flagged entries by insertion sequence, so the Rebuilder's
    /// scan costs O(flagged), not O(table).
    flagged: BTreeMap<u64, (FileId, u64, u64)>,
    next_seq: u64,
    max_entries: usize,
    inserted_total: u64,
    evicted_total: u64,
}

impl Cdt {
    /// Creates a table bounded to `max_entries`.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries == 0`.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries > 0, "CDT must hold at least one entry");
        Cdt {
            entries: HashMap::new(),
            order: VecDeque::new(),
            flagged: BTreeMap::new(),
            next_seq: 0,
            max_entries,
            inserted_total: 0,
            evicted_total: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total insertions and FIFO evictions, for reports.
    pub fn churn(&self) -> (u64, u64) {
        (self.inserted_total, self.evicted_total)
    }

    /// True if the exact range is recorded as critical.
    pub fn contains(&self, file: FileId, offset: u64, len: u64) -> bool {
        self.entries.contains_key(&(file, offset, len))
    }

    /// Records a critical range (idempotent; `C_flag` preserved on
    /// re-insert). Evicts the oldest entry when full.
    pub fn insert(&mut self, file: FileId, offset: u64, len: u64) {
        let key = (file, offset, len);
        if self.entries.contains_key(&key) {
            return;
        }
        if self.entries.len() == self.max_entries {
            // Evict in insertion order; skip stale order entries.
            while let Some(old) = self.order.pop_front() {
                if let Some((_, seq)) = self.entries.remove(&old) {
                    self.flagged.remove(&seq);
                    self.evicted_total += 1;
                    break;
                }
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(key, (false, seq));
        self.order.push_back(key);
        self.inserted_total += 1;
    }

    /// Sets the `C_flag` of an entry (read missed: needs fetching).
    /// Returns `true` if the entry existed.
    pub fn set_c_flag(&mut self, file: FileId, offset: u64, len: u64) -> bool {
        let key = (file, offset, len);
        match self.entries.get_mut(&key) {
            Some((flag, seq)) => {
                if !*flag {
                    *flag = true;
                    self.flagged.insert(*seq, key);
                }
                true
            }
            None => false,
        }
    }

    /// Clears the `C_flag` after the Rebuilder cached the data.
    /// Returns `true` if the entry existed.
    pub fn clear_c_flag(&mut self, file: FileId, offset: u64, len: u64) -> bool {
        match self.entries.get_mut(&(file, offset, len)) {
            Some((flag, seq)) => {
                if *flag {
                    *flag = false;
                    self.flagged.remove(seq);
                }
                true
            }
            None => false,
        }
    }

    /// Number of entries whose `C_flag` is set.
    pub fn flagged_count(&self) -> usize {
        self.flagged.len()
    }

    /// Up to `limit` entries whose `C_flag` is set, oldest first. Cost is
    /// `O(limit)`.
    pub fn flagged(&self, limit: usize) -> Vec<CdtEntry> {
        self.flagged
            .values()
            .take(limit)
            .map(|&(file, offset, len)| CdtEntry {
                file,
                offset,
                len,
                c_flag: true,
            })
            .collect()
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.flagged.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FileId = FileId(7);

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = Cdt::new(16);
        assert!(t.is_empty());
        assert!(!t.contains(F, 0, 100));
        t.insert(F, 0, 100);
        assert!(t.contains(F, 0, 100));
        assert!(!t.contains(F, 0, 99), "CDT keys are exact ranges");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinsert_preserves_flag() {
        let mut t = Cdt::new(16);
        t.insert(F, 0, 100);
        assert!(t.set_c_flag(F, 0, 100));
        t.insert(F, 0, 100); // duplicate
        assert_eq!(t.flagged(10).len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn flag_lifecycle() {
        let mut t = Cdt::new(16);
        t.insert(F, 0, 100);
        assert!(t.flagged(10).is_empty());
        assert!(t.set_c_flag(F, 0, 100));
        let flagged = t.flagged(10);
        assert_eq!(flagged.len(), 1);
        assert_eq!(
            flagged[0],
            CdtEntry {
                file: F,
                offset: 0,
                len: 100,
                c_flag: true
            }
        );
        assert!(t.clear_c_flag(F, 0, 100));
        assert!(t.flagged(10).is_empty());
        assert!(!t.set_c_flag(F, 1, 1), "absent entries are reported");
        assert!(!t.clear_c_flag(F, 1, 1));
    }

    #[test]
    fn flagged_respects_limit_and_order() {
        let mut t = Cdt::new(16);
        for i in 0..8 {
            t.insert(F, i * 100, 100);
            t.set_c_flag(F, i * 100, 100);
        }
        let got = t.flagged(3);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].offset, 0);
        assert_eq!(got[2].offset, 200);
    }

    #[test]
    fn bounded_eviction_is_fifo() {
        let mut t = Cdt::new(3);
        for i in 0..5 {
            t.insert(F, i, 1);
        }
        assert_eq!(t.len(), 3);
        assert!(!t.contains(F, 0, 1));
        assert!(!t.contains(F, 1, 1));
        assert!(t.contains(F, 2, 1));
        assert!(t.contains(F, 4, 1));
        let (ins, ev) = t.churn();
        assert_eq!(ins, 5);
        assert_eq!(ev, 2);
    }

    #[test]
    fn clear_empties() {
        let mut t = Cdt::new(4);
        t.insert(F, 0, 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_zero_bound() {
        Cdt::new(0);
    }
}
