//! Well-known CPFS object names and shared sizing constants.
//!
//! Every component that touches the persisted metadata objects — the
//! durability engine that writes them, recovery that reads them back,
//! and the torture harness that crashes between the two — must agree on
//! these names byte-for-byte, so they live in exactly one place.

/// CPFS name of the DMT journal file.
pub const JOURNAL_NAME: &str = "__dmt_journal";

/// Checkpoint slot installed by odd-sequence snapshots.
pub const CKPT_SLOT_A: &str = "__dmt_ckpt_a";

/// Checkpoint slot installed by even-sequence snapshots.
pub const CKPT_SLOT_B: &str = "__dmt_ckpt_b";

/// Largest file-contiguous run the background scheduler moves as one
/// flush or fetch group.
pub const MAX_GROUP_BYTES: u64 = 4 * 1024 * 1024;
