//! Integration tests for the background scheduler: the Rebuilder's
//! flush/fetch cycles, eviction pinning, the pending-action state
//! machine, and failure cleanup. Exercised through the public
//! [`s4d_mpiio::Middleware`] surface only — flush plans are the tagged
//! plans a `poll_background` wake returns.

mod common;

use common::{params_small, poll_tagged, read_req, setup, tiers_of, write_req, KIB, MIB};
use s4d_cache::{S4dCache, S4dConfig};
use s4d_mpiio::{Cluster, Middleware, Rank, Tier};
use s4d_pfs::Priority;
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;

#[test]
fn clean_lru_space_is_reused() {
    let (mut cluster, mut mw, f) = setup(32 * KIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
    // Flush the dirty extent so it becomes clean.
    let plans = poll_tagged(&mut mw, &mut cluster, SimTime::ZERO);
    assert_eq!(plans.len(), 1);
    mw.on_plan_complete(&mut cluster, SimTime::ZERO, plans[0].tag);
    assert_eq!(mw.dmt().dirty_bytes(), 0);
    // A new critical write now evicts the clean extent and is admitted.
    let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, MIB, 32 * KIB));
    assert_eq!(tiers_of(&plan), vec![Tier::CServers]);
    assert_eq!(mw.metrics().evictions, 1);
    assert_eq!(mw.metrics().evicted_bytes, 32 * KIB);
    // The evicted range now misses.
    let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 32 * KIB));
    assert_eq!(tiers_of(&plan), vec![Tier::DServers]);
}

#[test]
fn inflight_reads_pin_extents_against_eviction() {
    // Regression test for a data-loss race found by the equivalence
    // property suite: a clean extent referenced by a queued read must
    // not be evicted (the read would return freed space).
    let (mut cluster, mut mw, f) = setup(32 * KIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
    // Make it clean via a flush cycle.
    let plans = poll_tagged(&mut mw, &mut cluster, SimTime::ZERO);
    mw.on_plan_complete(&mut cluster, SimTime::ZERO, plans[0].tag);
    assert_eq!(mw.dmt().dirty_bytes(), 0);
    // A read of the cached range is now "in flight" (plan issued, not
    // yet complete).
    let read_plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 32 * KIB));
    assert_ne!(read_plan.tag, 0, "read plans carry an unpin action");
    // A critical write elsewhere wants space; the only clean extent is
    // pinned, so admission must FAIL (spill to DServers), not evict.
    let w = mw.plan_io(
        &mut cluster,
        SimTime::ZERO,
        &write_req(f, 4 * MIB, 32 * KIB),
    );
    assert_eq!(tiers_of(&w), vec![Tier::DServers]);
    assert_eq!(mw.metrics().evictions, 0, "pinned extent survived");
    assert_eq!(mw.dmt().mapped_bytes(), 32 * KIB);
    // Once the read completes, the pin lifts and eviction proceeds.
    mw.on_plan_complete(&mut cluster, SimTime::from_secs(1), read_plan.tag);
    let w = mw.plan_io(
        &mut cluster,
        SimTime::from_secs(1),
        &write_req(f, 8 * MIB, 32 * KIB),
    );
    assert_eq!(tiers_of(&w), vec![Tier::CServers]);
    assert_eq!(mw.metrics().evictions, 1);
}

#[test]
fn rebuilder_flush_cycle_marks_clean() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    let poll = mw.poll_background(&mut cluster, SimTime::ZERO);
    assert_eq!(poll.plans.len(), 1);
    assert!(poll.work_pending);
    let plan = &poll.plans[0];
    // Flush = background read from CServers, then background write to D.
    assert_eq!(plan.phases.len(), 2);
    assert_eq!(plan.phases[0][0].tier, Tier::CServers);
    assert_eq!(plan.phases[0][0].priority, Priority::Background);
    assert_eq!(plan.phases[1][0].tier, Tier::DServers);
    // A second poll must not re-issue the in-flight flush.
    let poll2 = mw.poll_background(&mut cluster, SimTime::from_secs(1));
    assert!(poll2.plans.is_empty());
    assert!(poll2.work_pending);
    mw.on_plan_complete(&mut cluster, SimTime::from_secs(2), plan.tag);
    assert_eq!(mw.dmt().dirty_bytes(), 0);
    assert_eq!(mw.metrics().flushes, 1);
    // The clean transition's journal record drains on the next wake...
    let poll3 = mw.poll_background(&mut cluster, SimTime::from_secs(3));
    assert_eq!(poll3.plans.len(), 1, "journal drain only");
    assert!(poll3.plans[0]
        .phases
        .iter()
        .flatten()
        .all(|op| op.app_offset.is_none()));
    // ...after which the Rebuilder is fully idle.
    let poll4 = mw.poll_background(&mut cluster, SimTime::from_secs(4));
    assert!(poll4.plans.is_empty());
    assert!(!poll4.work_pending, "everything clean and settled");
}

#[test]
fn rebuilder_fetch_cycle_caches_flagged_reads() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
    assert_eq!(mw.cdt().flagged(10).len(), 1);
    let poll = mw.poll_background(&mut cluster, SimTime::ZERO);
    assert_eq!(poll.plans.len(), 1);
    let plan = &poll.plans[0];
    assert_eq!(plan.phases.len(), 2);
    assert_eq!(plan.phases[0][0].tier, Tier::DServers);
    assert_eq!(plan.phases[0][0].kind, IoKind::Read);
    assert_eq!(plan.phases[1][0].tier, Tier::CServers);
    assert_eq!(plan.phases[1][0].kind, IoKind::Write);
    mw.on_plan_complete(&mut cluster, SimTime::from_secs(1), plan.tag);
    // Mapped clean; the C_flag is cleared; a re-read now hits.
    assert_eq!(mw.dmt().mapped_bytes(), 16 * KIB);
    assert_eq!(mw.dmt().dirty_bytes(), 0);
    assert!(mw.cdt().flagged(10).is_empty());
    let plan = mw.plan_io(
        &mut cluster,
        SimTime::from_secs(2),
        &read_req(f, 0, 16 * KIB),
    );
    assert_eq!(tiers_of(&plan), vec![Tier::CServers]);
    assert_eq!(mw.metrics().read_full_hits, 1);
}

#[test]
fn persistent_placement_never_flushes_and_fills_up() {
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(
        S4dConfig::new(32 * KIB).with_persistent_placement(true),
        params_small(),
    );
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
    // Fill the placement space.
    let p = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
    assert_eq!(tiers_of(&p), vec![Tier::CServers]);
    // The Rebuilder never flushes in placement mode; its only activity
    // is draining the pending journal records of the placement itself.
    let poll = mw.poll_background(&mut cluster, SimTime::ZERO);
    assert!(poll
        .plans
        .iter()
        .flat_map(|p| p.phases.iter().flatten())
        .all(|op| op.app_offset.is_none() && op.kind == IoKind::Write));
    let poll = mw.poll_background(&mut cluster, SimTime::from_secs(1));
    assert!(poll.plans.is_empty());
    assert!(!poll.work_pending);
    // A later critical write cannot be placed: space never frees.
    let p = mw.plan_io(
        &mut cluster,
        SimTime::from_secs(5),
        &write_req(f, MIB, 32 * KIB),
    );
    assert_eq!(tiers_of(&p), vec![Tier::DServers]);
    assert_eq!(mw.metrics().flushes, 0);
    assert_eq!(mw.metrics().evictions, 0);
    // Placed data keeps serving reads from the CServers.
    let p = mw.plan_io(
        &mut cluster,
        SimTime::from_secs(6),
        &read_req(f, 0, 32 * KIB),
    );
    assert_eq!(tiers_of(&p), vec![Tier::CServers]);
}

#[test]
fn failed_plan_releases_pins_and_markers() {
    let (mut cluster, mut mw, f) = setup(32 * KIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
    let plans = poll_tagged(&mut mw, &mut cluster, SimTime::ZERO);
    let flush_tag = plans[0].tag;
    // The flush plan fails: the extent stays dirty and is retried.
    mw.on_plan_failed(&mut cluster, SimTime::ZERO, flush_tag);
    assert_eq!(mw.dmt().dirty_bytes(), 32 * KIB);
    let plans = poll_tagged(&mut mw, &mut cluster, SimTime::from_secs(1));
    assert_eq!(plans.len(), 1, "flush re-issued after failure");
    mw.on_plan_complete(&mut cluster, SimTime::from_secs(1), plans[0].tag);
    // A pinned read whose plan fails must still unpin.
    let r = mw.plan_io(
        &mut cluster,
        SimTime::from_secs(2),
        &read_req(f, 0, 32 * KIB),
    );
    assert_ne!(r.tag, 0);
    mw.on_plan_failed(&mut cluster, SimTime::from_secs(2), r.tag);
    let w = mw.plan_io(
        &mut cluster,
        SimTime::from_secs(3),
        &write_req(f, MIB, 32 * KIB),
    );
    assert_eq!(tiers_of(&w), vec![Tier::CServers], "eviction unblocked");
}

#[test]
fn flush_on_risk_floods_dirty_data() {
    let mut cluster = Cluster::paper_testbed_small(9);
    // Keep the per-wake trickle tiny so the flood is observable.
    let mut mw = S4dCache::new(
        S4dConfig::new(64 * MIB)
            .with_flush_on_risk(true)
            .with_max_flush_per_wake(1),
        params_small(),
    );
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
    for i in 0..4u64 {
        // Non-adjacent extents so they cannot merge into one group.
        mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &write_req(f, i * MIB, 16 * KIB),
        );
    }
    let plans = poll_tagged(&mut mw, &mut cluster, SimTime::ZERO);
    assert_eq!(plans.len(), 1, "healthy tier: trickle of one per wake");
    // One failure marks the tier at risk: everything dirty flushes.
    mw.on_io_error(
        &mut cluster,
        SimTime::ZERO,
        &common::transient_failure(0, 1),
    );
    let plans = poll_tagged(&mut mw, &mut cluster, SimTime::ZERO);
    assert_eq!(plans.len(), 3, "at risk: all remaining dirty extents");
}

#[test]
fn crashed_flush_in_flight_does_not_corrupt_source_file() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    let plans = poll_tagged(&mut mw, &mut cluster, SimTime::ZERO);
    let tag = plans[0].tag;
    // The CServer crashes while the flush is in flight; the extent is
    // invalidated and its space handed back.
    mw.on_io_error(
        &mut cluster,
        SimTime::from_secs(1),
        &common::offline_failure(0),
    );
    assert_eq!(mw.metrics().dirty_bytes_lost, 16 * KIB);
    // The flush completion then arrives; it must notice the mapping is
    // gone and not copy reallocated/wiped space over the original.
    mw.on_plan_complete(&mut cluster, SimTime::from_secs(2), tag);
    assert_eq!(mw.dmt().mapped_bytes(), 0);
    // The stale in-flight marker must be gone too: a fresh dirty write
    // to the same range flushes again once the server recovers. (A
    // leaked marker would make the Rebuilder skip it forever.)
    mw.on_io_complete(
        Tier::CServers,
        0,
        IoKind::Write,
        16 * KIB,
        SimDuration::from_micros(200),
    );
    let later = SimTime::from_secs(2) + mw.config().quarantine_duration;
    mw.plan_io(&mut cluster, later, &write_req(f, 0, 16 * KIB));
    let plans = poll_tagged(&mut mw, &mut cluster, later);
    assert_eq!(plans.len(), 1, "re-dirtied range flushes again");
}
