//! Pipeline-stage equivalence against recorded pre-refactor traces.
//!
//! The staged `identify` → `redirect` → `admit` pipeline (plus the
//! background scheduler and durability engine it feeds) must compose to
//! exactly the decisions the monolithic pre-refactor `S4dCache`
//! produced. Three workload traces — admission/eviction, degraded
//! health, and ablation modes — were recorded against the PR 3 tree and
//! committed under `tests/traces/`; every plan is serialized with its
//! full `Debug` form, so tier choice, phase structure, offsets, journal
//! payload bytes, lead-in, tags, and the final metrics digest are all
//! compared byte-for-byte.
//!
//! To re-record after an *intentional* behavior change:
//! `S4D_RECORD_TRACES=1 cargo test -p s4d-cache --test pipeline_stages`.

use s4d_cache::{AdmissionPolicy, S4dCache, S4dConfig};
use s4d_cost::CostParams;
use s4d_mpiio::{AppRequest, Cluster, Middleware, Rank, SubIoFailure, Tier};
use s4d_pfs::{FileId, IoFault};
use s4d_sim::SimTime;
use s4d_storage::{presets, IoKind};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn params_small() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
}

fn write_req(file: FileId, offset: u64, len: u64) -> AppRequest {
    AppRequest {
        rank: Rank(0),
        file,
        kind: IoKind::Write,
        offset,
        len,
        data: None,
    }
}

fn read_req(file: FileId, offset: u64, len: u64) -> AppRequest {
    AppRequest {
        rank: Rank(0),
        file,
        kind: IoKind::Read,
        offset,
        len,
        data: None,
    }
}

/// Records one plan_io decision.
fn step(
    trace: &mut Vec<String>,
    label: &str,
    mw: &mut S4dCache,
    cluster: &mut Cluster,
    now: SimTime,
    req: &AppRequest,
) -> u64 {
    let plan = mw.plan_io(cluster, now, req);
    trace.push(format!("{label}: {plan:?}"));
    plan.tag
}

/// Records one poll_background decision and returns the callback tags.
fn poll(
    trace: &mut Vec<String>,
    label: &str,
    mw: &mut S4dCache,
    cluster: &mut Cluster,
    now: SimTime,
) -> Vec<u64> {
    let poll = mw.poll_background(cluster, now);
    for (i, p) in poll.plans.iter().enumerate() {
        trace.push(format!("{label}.plan{i}: {p:?}"));
    }
    trace.push(format!(
        "{label}: wake={:?} pending={}",
        poll.next_wake, poll.work_pending
    ));
    poll.plans
        .iter()
        .map(|p| p.tag)
        .filter(|&t| t != 0)
        .collect()
}

fn complete(mw: &mut S4dCache, cluster: &mut Cluster, now: SimTime, tags: &[u64]) {
    for &t in tags {
        mw.on_plan_complete(cluster, now, t);
    }
}

/// Compares (or, under `S4D_RECORD_TRACES`, records) one trace file.
fn check(name: &str, trace: Vec<String>) {
    let got = trace.join("\n") + "\n";
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/traces")
        .join(name);
    if std::env::var_os("S4D_RECORD_TRACES").is_some() {
        std::fs::write(&path, &got).expect("record trace");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing recorded trace {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "pipeline decisions diverged from the pre-refactor trace {name}"
    );
}

/// Admission, partial hits, denial under pressure, flush/fetch cycles,
/// and clean-LRU eviction on a deliberately tiny cache.
#[test]
fn mixed_workload_matches_recorded_trace() {
    let mut trace = Vec::new();
    let config = S4dConfig::new(64 * KIB).with_journal_batch(1);
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(config, params_small());
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();

    let t0 = SimTime::ZERO;
    step(
        &mut trace,
        "w0",
        &mut mw,
        &mut cluster,
        t0,
        &write_req(f, 0, 16 * KIB),
    );
    step(
        &mut trace,
        "w1",
        &mut mw,
        &mut cluster,
        t0,
        &write_req(f, MIB, 16 * KIB),
    );
    let r0 = step(
        &mut trace,
        "r0",
        &mut mw,
        &mut cluster,
        t0,
        &read_req(f, 0, 32 * KIB),
    );
    complete(&mut mw, &mut cluster, t0, &[r0]);
    // Cache holds 32 KiB dirty of 64 KiB; a 48 KiB critical write cannot
    // evict dirty data and must be denied for space.
    step(
        &mut trace,
        "w2",
        &mut mw,
        &mut cluster,
        t0,
        &write_req(f, 2 * MIB, 48 * KIB),
    );

    let t1 = SimTime::from_secs(1);
    let tags = poll(&mut trace, "p0", &mut mw, &mut cluster, t1);
    complete(&mut mw, &mut cluster, SimTime::from_secs(2), &tags);

    let t3 = SimTime::from_secs(3);
    let r1 = step(
        &mut trace,
        "r1",
        &mut mw,
        &mut cluster,
        t3,
        &read_req(f, 3 * MIB, 16 * KIB),
    );
    complete(&mut mw, &mut cluster, t3, &[r1]);
    let tags = poll(
        &mut trace,
        "p1",
        &mut mw,
        &mut cluster,
        SimTime::from_secs(4),
    );
    complete(&mut mw, &mut cluster, SimTime::from_secs(5), &tags);

    // Everything cached is now clean: a new critical write evicts.
    step(
        &mut trace,
        "w3",
        &mut mw,
        &mut cluster,
        SimTime::from_secs(6),
        &write_req(f, 4 * MIB, 32 * KIB),
    );
    let tags = poll(
        &mut trace,
        "p2",
        &mut mw,
        &mut cluster,
        SimTime::from_secs(7),
    );
    complete(&mut mw, &mut cluster, SimTime::from_secs(8), &tags);

    trace.push(format!("metrics: {:?}", mw.metrics()));
    check("mixed.trace", trace);
}

/// Health-aware redirection: quarantine blocks admission and fetches,
/// clean reads fall back to OPFS, and an offline CServer invalidates the
/// extents it held.
#[test]
fn degraded_health_matches_recorded_trace() {
    let mut trace = Vec::new();
    let config = S4dConfig::new(64 * MIB).with_journal_batch(1);
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(config, params_small());
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();

    let t0 = SimTime::ZERO;
    step(
        &mut trace,
        "w0",
        &mut mw,
        &mut cluster,
        t0,
        &write_req(f, 0, 16 * KIB),
    );
    // Flush it clean so the health fallback has a clean piece to serve.
    let tags = poll(&mut trace, "p0", &mut mw, &mut cluster, t0);
    complete(&mut mw, &mut cluster, t0, &tags);
    step(
        &mut trace,
        "w1",
        &mut mw,
        &mut cluster,
        t0,
        &write_req(f, MIB, 16 * KIB),
    );

    // Three consecutive transient failures quarantine CServer 0.
    let now = SimTime::from_secs(1);
    for attempts in 1..=3 {
        let failure = SubIoFailure {
            tier: Tier::CServers,
            server: 0,
            kind: IoKind::Write,
            len: 16 * KIB,
            error: IoFault::Transient,
            attempts,
            overhead: false,
        };
        let d = mw.on_io_error(&mut cluster, now, &failure);
        trace.push(format!("err{attempts}: {d:?}"));
    }

    step(
        &mut trace,
        "w2",
        &mut mw,
        &mut cluster,
        now,
        &write_req(f, 2 * MIB, 16 * KIB),
    );
    let rc = step(
        &mut trace,
        "r_clean",
        &mut mw,
        &mut cluster,
        now,
        &read_req(f, 0, 16 * KIB),
    );
    let rd = step(
        &mut trace,
        "r_dirty",
        &mut mw,
        &mut cluster,
        now,
        &read_req(f, MIB, 16 * KIB),
    );
    complete(&mut mw, &mut cluster, now, &[rc, rd]);
    step(
        &mut trace,
        "r_miss",
        &mut mw,
        &mut cluster,
        now,
        &read_req(f, 4 * MIB, 16 * KIB),
    );
    let tags = poll(
        &mut trace,
        "p1",
        &mut mw,
        &mut cluster,
        SimTime::from_secs(2),
    );
    complete(&mut mw, &mut cluster, SimTime::from_secs(2), &tags);

    // CServer 0 goes offline: its extents are invalidated exactly once.
    let offline = SubIoFailure {
        tier: Tier::CServers,
        server: 0,
        kind: IoKind::Write,
        len: 16 * KIB,
        error: IoFault::Offline,
        attempts: 1,
        overhead: false,
    };
    let d = mw.on_io_error(&mut cluster, SimTime::from_secs(3), &offline);
    trace.push(format!("offline: {d:?}"));
    step(
        &mut trace,
        "r_after",
        &mut mw,
        &mut cluster,
        SimTime::from_secs(3),
        &read_req(f, 0, 16 * KIB),
    );
    let tags = poll(
        &mut trace,
        "p2",
        &mut mw,
        &mut cluster,
        SimTime::from_secs(4),
    );
    complete(&mut mw, &mut cluster, SimTime::from_secs(4), &tags);

    trace.push(format!("metrics: {:?}", mw.metrics()));
    check("degraded.trace", trace);
}

/// Ablation modes: always-admit takes large writes, eager read fetch
/// chains a cache-fill phase onto the miss plan, and journal batching
/// groups four records per journal op.
#[test]
fn ablation_workload_matches_recorded_trace() {
    let mut trace = Vec::new();
    let config = S4dConfig::new(64 * MIB)
        .with_admission(AdmissionPolicy::AlwaysAdmit)
        .with_eager_read_fetch(true)
        .with_journal_batch(4);
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(config, params_small());
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();

    let t0 = SimTime::ZERO;
    step(
        &mut trace,
        "w_large",
        &mut mw,
        &mut cluster,
        t0,
        &write_req(f, 0, 8 * MIB),
    );
    let rf = step(
        &mut trace,
        "r_eager",
        &mut mw,
        &mut cluster,
        t0,
        &read_req(f, 16 * MIB, 16 * KIB),
    );
    complete(&mut mw, &mut cluster, t0, &[rf]);
    let rh = step(
        &mut trace,
        "r_hit",
        &mut mw,
        &mut cluster,
        t0,
        &read_req(f, 16 * MIB, 16 * KIB),
    );
    complete(&mut mw, &mut cluster, t0, &[rh]);

    // Batched journaling: records accumulate until the fourth lands.
    for i in 0..3u64 {
        let label = format!("w{i}");
        step(
            &mut trace,
            &label,
            &mut mw,
            &mut cluster,
            t0,
            &write_req(f, 20 * MIB + i * MIB, 16 * KIB),
        );
    }
    let tags = poll(
        &mut trace,
        "p0",
        &mut mw,
        &mut cluster,
        SimTime::from_secs(1),
    );
    complete(&mut mw, &mut cluster, SimTime::from_secs(2), &tags);
    let tags = poll(
        &mut trace,
        "p1",
        &mut mw,
        &mut cluster,
        SimTime::from_secs(3),
    );
    complete(&mut mw, &mut cluster, SimTime::from_secs(4), &tags);

    trace.push(format!("metrics: {:?}", mw.metrics()));
    check("ablations.trace", trace);
}
