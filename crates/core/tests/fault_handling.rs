//! Integration tests for the fault handlers: retry/backoff directives,
//! quarantine, health-aware routing, and crash invalidation. Exercised
//! through the public [`s4d_mpiio::Middleware`] surface only.

mod common;

use common::{
    offline_failure, poll_tagged, quarantine_server_zero, read_req, setup, tiers_of,
    transient_failure, write_req, KIB, MIB,
};
use s4d_cache::{S4dCache, S4dConfig};
use s4d_mpiio::{Cluster, ErrorDirective, Middleware, Rank, SubIoFailure, Tier};
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;

#[test]
fn transient_errors_retry_with_growing_backoff_then_quarantine() {
    let (mut cluster, mut mw, _f) = setup(64 * MIB);
    let base = mw.config().retry_base_delay;
    let d1 = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, 1));
    assert_eq!(d1, ErrorDirective::Retry { delay: base });
    let d2 = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, 2));
    assert_eq!(d2, ErrorDirective::Retry { delay: base * 2 });
    // Third consecutive failure crosses `quarantine_after`: give up.
    let d3 = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, 3));
    assert_eq!(d3, ErrorDirective::GiveUp);
    assert_eq!(mw.metrics().retries, 2);
    assert_eq!(mw.metrics().quarantines, 1);
    assert!(mw.health().is_unhealthy(0, SimTime::ZERO));
    // A success during probation clears the state entirely.
    mw.on_io_complete(
        Tier::CServers,
        0,
        IoKind::Write,
        16 * KIB,
        SimDuration::from_micros(200),
    );
    assert!(!mw.health().is_unhealthy(0, SimTime::ZERO));
}

#[test]
fn backoff_is_capped() {
    // A wide retry budget so attempt 40 is judged on backoff alone.
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(
        S4dConfig::new(64 * MIB).with_retry_policy(
            SimDuration::from_millis(10),
            SimDuration::from_secs(1),
            64,
        ),
        common::params_small(),
    );
    mw.open(&mut cluster, Rank(0), "data").unwrap();
    let d1 = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, 1));
    assert_eq!(
        d1,
        ErrorDirective::Retry {
            delay: SimDuration::from_millis(10)
        }
    );
    // Clear the consecutive-failure count so the next directive is not
    // a quarantine give-up.
    mw.on_io_complete(
        Tier::CServers,
        0,
        IoKind::Write,
        16 * KIB,
        SimDuration::from_micros(200),
    );
    // 10 ms × 2³⁹ is astronomical; the directive caps at the maximum.
    let d40 = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, 40));
    assert_eq!(
        d40,
        ErrorDirective::Retry {
            delay: SimDuration::from_secs(1)
        }
    );
}

#[test]
fn exhausted_attempts_give_up_without_quarantine() {
    let (mut cluster, mut mw, _f) = setup(64 * MIB);
    let max = mw.config().retry_max_attempts;
    let d = mw.on_io_error(&mut cluster, SimTime::ZERO, &transient_failure(0, max));
    assert_eq!(d, ErrorDirective::GiveUp);
    assert!(!mw.health().is_unhealthy(0, SimTime::ZERO));
}

#[test]
fn dserver_transient_errors_retry_too() {
    let (mut cluster, mut mw, _f) = setup(64 * MIB);
    let failure = SubIoFailure {
        tier: Tier::DServers,
        ..transient_failure(1, 1)
    };
    assert!(matches!(
        mw.on_io_error(&mut cluster, SimTime::ZERO, &failure),
        ErrorDirective::Retry { .. }
    ));
    // DServer failures never touch CServer health.
    assert!(!mw.health().any_unhealthy(SimTime::ZERO));
    let offline = SubIoFailure {
        tier: Tier::DServers,
        ..offline_failure(1)
    };
    assert_eq!(
        mw.on_io_error(&mut cluster, SimTime::ZERO, &offline),
        ErrorDirective::GiveUp
    );
}

#[test]
fn quarantine_blocks_admission_and_serves_clean_reads_from_opfs() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    // A clean cached extent at 0 and a dirty one at 1 MiB.
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    let plans = poll_tagged(&mut mw, &mut cluster, SimTime::ZERO);
    mw.on_plan_complete(&mut cluster, SimTime::ZERO, plans[0].tag);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, MIB, 16 * KIB));
    assert_eq!(mw.dmt().dirty_bytes(), 16 * KIB);

    let now = SimTime::from_secs(1);
    quarantine_server_zero(&mut cluster, &mut mw, now);
    // New admissions pause...
    let w = mw.plan_io(&mut cluster, now, &write_req(f, 2 * MIB, 16 * KIB));
    assert_eq!(tiers_of(&w), vec![Tier::DServers]);
    assert_eq!(mw.metrics().admission_denied_health, 1);
    // ...clean pieces fall back to OPFS...
    let r = mw.plan_io(&mut cluster, now, &read_req(f, 0, 16 * KIB));
    assert_eq!(tiers_of(&r), vec![Tier::DServers]);
    assert_eq!(r.tag, 0, "fallback reads pin nothing");
    assert_eq!(mw.metrics().fallback_reads, 1);
    assert_eq!(mw.metrics().fallback_bytes, 16 * KIB);
    // ...dirty pieces keep routing to the cache (only copy)...
    let r = mw.plan_io(&mut cluster, now, &read_req(f, MIB, 16 * KIB));
    assert_eq!(tiers_of(&r), vec![Tier::CServers]);
    // ...and critical read misses are not marked for fetching.
    let lazy_before = mw.metrics().lazy_marks;
    mw.plan_io(&mut cluster, now, &read_req(f, 4 * MIB, 16 * KIB));
    assert_eq!(mw.metrics().lazy_marks, lazy_before);

    // After the quarantine expires, routing and admission resume.
    let later = now + mw.config().quarantine_duration;
    let r = mw.plan_io(&mut cluster, later, &read_req(f, 0, 16 * KIB));
    assert_eq!(tiers_of(&r), vec![Tier::CServers]);
    let w = mw.plan_io(&mut cluster, later, &write_req(f, 3 * MIB, 16 * KIB));
    assert_eq!(tiers_of(&w), vec![Tier::CServers]);
}

#[test]
fn fetches_pause_while_quarantined() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
    assert_eq!(mw.cdt().flagged(10).len(), 1);
    quarantine_server_zero(&mut cluster, &mut mw, SimTime::ZERO);
    let poll = mw.poll_background(&mut cluster, SimTime::from_secs(1));
    assert!(poll.plans.is_empty(), "no fetches into a sick tier");
    // The flag survives; fetching resumes after the quarantine.
    let later = SimTime::from_secs(1) + mw.config().quarantine_duration;
    mw.on_io_complete(
        Tier::CServers,
        0,
        IoKind::Write,
        16 * KIB,
        SimDuration::from_micros(200),
    );
    let poll = mw.poll_background(&mut cluster, later);
    assert_eq!(poll.plans.len(), 1);
}

#[test]
fn offline_error_invalidates_lost_extents_once() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    // Clean extent at 0, dirty extent at 1 MiB.
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    let plans = poll_tagged(&mut mw, &mut cluster, SimTime::ZERO);
    mw.on_plan_complete(&mut cluster, SimTime::ZERO, plans[0].tag);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, MIB, 16 * KIB));
    let available = mw.space().available();

    let now = SimTime::from_secs(1);
    let d = mw.on_io_error(&mut cluster, now, &offline_failure(0));
    assert_eq!(d, ErrorDirective::GiveUp);
    assert_eq!(mw.metrics().crash_invalidated_bytes, 16 * KIB);
    assert_eq!(mw.metrics().dirty_bytes_lost, 16 * KIB);
    assert_eq!(mw.metrics().quarantines, 1);
    assert_eq!(mw.dmt().mapped_bytes(), 0, "all lost extents removed");
    assert_eq!(mw.space().available(), available + 32 * KIB);
    assert!(mw.health().is_unhealthy(0, now));
    // The same outage is never accounted twice.
    mw.on_io_error(&mut cluster, now, &offline_failure(0));
    assert_eq!(mw.metrics().dirty_bytes_lost, 16 * KIB);
    // Reads now miss and go to OPFS — no stale cache routing.
    let r = mw.plan_io(&mut cluster, now, &read_req(f, 0, 16 * KIB));
    assert_eq!(tiers_of(&r), vec![Tier::DServers]);
}
