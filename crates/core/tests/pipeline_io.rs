//! Integration tests for the staged request pipeline: identify
//! (Data Identifier), redirect (Algorithm 1 routing), and admit (space
//! claim + atomic admission). Exercised through the public
//! [`s4d_mpiio::Middleware`] surface only.

mod common;

use common::{params_small, read_req, setup, tiers_of, write_req, KIB, MIB};
use s4d_cache::{AdmissionPolicy, S4dCache, S4dConfig, DMT_RECORD_BYTES};
use s4d_mpiio::{Cluster, Middleware, Rank, Tier};
use s4d_sim::SimTime;

#[test]
fn critical_write_is_admitted_to_cservers() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    assert_eq!(tiers_of(&plan), vec![Tier::CServers]);
    assert_eq!(mw.dmt().mapped_bytes(), 16 * KIB);
    assert_eq!(mw.dmt().dirty_bytes(), 16 * KIB);
    assert!(mw.cdt().contains(f, 0, 16 * KIB));
    assert_eq!(mw.metrics().writes_to_cache, 1);
    // The plan carries a journal write for the DMT mutation.
    let journal_ops: Vec<_> = plan
        .phases
        .iter()
        .flatten()
        .filter(|op| op.app_offset.is_none())
        .collect();
    assert_eq!(journal_ops.len(), 1);
    assert_eq!(journal_ops[0].tier, Tier::CServers);
    assert!(journal_ops[0].len >= DMT_RECORD_BYTES);
}

#[test]
fn large_write_goes_to_dservers() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 8 * MIB));
    assert_eq!(tiers_of(&plan), vec![Tier::DServers]);
    assert_eq!(mw.dmt().mapped_bytes(), 0);
    assert!(!mw.cdt().contains(f, 0, 8 * MIB));
    assert_eq!(mw.metrics().writes_to_disk, 1);
}

#[test]
fn write_hit_updates_cache_and_stays_dirty() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    assert_eq!(tiers_of(&plan), vec![Tier::CServers]);
    assert_eq!(mw.dmt().mapped_bytes(), 16 * KIB, "no double mapping");
    assert_eq!(mw.metrics().writes_to_cache, 2);
}

#[test]
fn read_hit_served_from_cache_miss_from_disk() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    let hit = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
    assert_eq!(tiers_of(&hit), vec![Tier::CServers]);
    assert_eq!(mw.metrics().read_full_hits, 1);
    let miss = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, MIB, 16 * KIB));
    assert_eq!(tiers_of(&miss), vec![Tier::DServers]);
    assert_eq!(mw.metrics().read_misses, 1);
}

#[test]
fn partial_hit_splits_across_tiers() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    // Read 32 KiB: first 16 cached, second 16 not.
    let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 32 * KIB));
    let tiers = tiers_of(&plan);
    assert!(tiers.contains(&Tier::CServers));
    assert!(tiers.contains(&Tier::DServers));
    assert_eq!(mw.metrics().read_partial_hits, 1);
}

#[test]
fn critical_read_miss_is_lazily_marked() {
    let (mut cluster, mut mw, f) = setup(64 * MIB);
    let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
    // Served from DServers now...
    assert_eq!(tiers_of(&plan), vec![Tier::DServers]);
    // ...but flagged for the Rebuilder.
    assert_eq!(mw.metrics().lazy_marks, 1);
    assert_eq!(mw.cdt().flagged(10).len(), 1);
}

#[test]
fn capacity_exhaustion_spills_to_dservers() {
    // Cache of 32 KiB: the first critical write fills it; the second
    // (all-dirty cache, nothing evictable) must spill.
    let (mut cluster, mut mw, f) = setup(32 * KIB);
    let p1 = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 32 * KIB));
    assert_eq!(tiers_of(&p1), vec![Tier::CServers]);
    let p2 = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, MIB, 32 * KIB));
    assert_eq!(tiers_of(&p2), vec![Tier::DServers]);
    assert_eq!(mw.metrics().admission_denied_space, 1);
    assert_eq!(mw.metrics().writes_to_disk, 1);
}

#[test]
fn force_miss_mode_never_redirects() {
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(
        S4dConfig::new(64 * MIB).with_force_miss(true),
        params_small(),
    );
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
    let w = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    assert_eq!(tiers_of(&w), vec![Tier::DServers]);
    let r = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
    assert_eq!(tiers_of(&r), vec![Tier::DServers]);
    // Bookkeeping still ran (the overhead the paper measures).
    assert_eq!(mw.metrics().evaluated, 2);
    assert!(!w.lead_in.is_zero());
    let poll = mw.poll_background(&mut cluster, SimTime::ZERO);
    assert!(poll.plans.is_empty());
}

#[test]
fn never_admit_policy_behaves_like_stock() {
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(
        S4dConfig::new(64 * MIB).with_admission(AdmissionPolicy::NeverAdmit),
        params_small(),
    );
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
    let w = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 16 * KIB));
    assert_eq!(tiers_of(&w), vec![Tier::DServers]);
    assert_eq!(mw.metrics().critical, 0);
    assert!(mw.cdt().is_empty());
}

#[test]
fn always_admit_caches_large_writes_too() {
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(
        S4dConfig::new(64 * MIB).with_admission(AdmissionPolicy::AlwaysAdmit),
        params_small(),
    );
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
    let w = mw.plan_io(&mut cluster, SimTime::ZERO, &write_req(f, 0, 8 * MIB));
    assert_eq!(tiers_of(&w), vec![Tier::CServers]);
}

#[test]
fn eager_fetch_ablation_adds_cache_fill_phase() {
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(
        S4dConfig::new(64 * MIB).with_eager_read_fetch(true),
        params_small(),
    );
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
    let plan = mw.plan_io(&mut cluster, SimTime::ZERO, &read_req(f, 0, 16 * KIB));
    assert_eq!(plan.phases.len(), 2, "read phase + cache-fill phase");
    assert!(plan.tag != 0);
    mw.on_plan_complete(&mut cluster, SimTime::from_secs(1), plan.tag);
    assert_eq!(mw.dmt().mapped_bytes(), 16 * KIB);
    let again = mw.plan_io(
        &mut cluster,
        SimTime::from_secs(2),
        &read_req(f, 0, 16 * KIB),
    );
    assert_eq!(tiers_of(&again), vec![Tier::CServers]);
}
