//! Integration tests for the durability engine's request-visible
//! surface: journal group commit and file/journal provisioning on open.
//! The crash-recovery side is covered by the torture and replay suites.

mod common;

use common::{params_small, setup, write_req, KIB, MIB};
use s4d_cache::{names, S4dCache, S4dConfig, DMT_RECORD_BYTES};
use s4d_mpiio::{Cluster, Middleware, Rank};
use s4d_pfs::{FileId, Priority};
use s4d_sim::SimTime;
use s4d_storage::IoKind;

#[test]
fn journal_group_commit_batches() {
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(
        S4dConfig::new(64 * MIB).with_journal_batch(4),
        params_small(),
    );
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
    // Each admitted write produces one DMT insert record; no journal op
    // until four records accumulate.
    for i in 0..3u64 {
        let plan = mw.plan_io(
            &mut cluster,
            SimTime::ZERO,
            &write_req(f, i * MIB, 16 * KIB),
        );
        assert!(
            plan.phases
                .iter()
                .flatten()
                .all(|op| op.app_offset.is_some()),
            "no journal op before the batch fills"
        );
    }
    let plan = mw.plan_io(
        &mut cluster,
        SimTime::ZERO,
        &write_req(f, 3 * MIB, 16 * KIB),
    );
    let journal: Vec<_> = plan
        .phases
        .iter()
        .flatten()
        .filter(|op| op.app_offset.is_none())
        .collect();
    assert_eq!(journal.len(), 1, "batch full: one grouped journal write");
    assert_eq!(journal[0].len, 4 * DMT_RECORD_BYTES);
    // The Rebuilder persists stragglers with background priority.
    mw.plan_io(
        &mut cluster,
        SimTime::ZERO,
        &write_req(f, 4 * MIB, 16 * KIB),
    );
    let poll = mw.poll_background(&mut cluster, SimTime::from_secs(1));
    let has_bg_journal = poll.plans.iter().any(|p| {
        p.phases.iter().flatten().any(|op| {
            op.app_offset.is_none()
                && op.priority == Priority::Background
                && op.kind == IoKind::Write
                && op.file == FileId(0)
        })
    });
    assert!(has_bg_journal, "pending records drain on the next wake");
}

#[test]
fn open_creates_cache_file_and_journal() {
    let (cluster, mw, _f) = setup(64 * MIB);
    assert!(cluster.cpfs().open("data.cache").is_ok());
    assert!(cluster.cpfs().open(names::JOURNAL_NAME).is_ok());
    assert_eq!(mw.name(), "s4d");
}
