//! Shared fixtures for the per-component integration suites.
//!
//! Each test binary compiles this module independently, so not every
//! helper is used by every suite.
#![allow(dead_code)]

use s4d_cache::{S4dCache, S4dConfig};
use s4d_cost::CostParams;
use s4d_mpiio::{AppRequest, Cluster, Middleware, Plan, Rank, SubIoFailure, Tier};
use s4d_pfs::{FileId, IoFault};
use s4d_sim::SimTime;
use s4d_storage::{presets, IoKind};

pub const KIB: u64 = 1024;
pub const MIB: u64 = 1024 * 1024;

/// Cost-model parameters for the paper's small testbed hardware.
pub fn params_small() -> CostParams {
    CostParams::from_hardware(
        &presets::hdd_seagate_st3250(),
        &presets::ssd_ocz_revodrive_x2(),
        2,
        1,
        64 * KIB,
    )
    .with_network_bandwidth(117.0e6)
}

/// A small-testbed cluster and middleware with one open file.
pub fn setup(capacity: u64) -> (Cluster, S4dCache, FileId) {
    // Journal batch of 1 so tests can observe per-request journaling.
    let config = S4dConfig::new(capacity).with_journal_batch(1);
    let mut cluster = Cluster::paper_testbed_small(9);
    let mut mw = S4dCache::new(config, params_small());
    let f = mw.open(&mut cluster, Rank(0), "data").unwrap();
    (cluster, mw, f)
}

pub fn write_req(file: FileId, offset: u64, len: u64) -> AppRequest {
    AppRequest {
        rank: Rank(0),
        file,
        kind: IoKind::Write,
        offset,
        len,
        data: None,
    }
}

pub fn read_req(file: FileId, offset: u64, len: u64) -> AppRequest {
    AppRequest {
        rank: Rank(0),
        file,
        kind: IoKind::Read,
        offset,
        len,
        data: None,
    }
}

/// The tier of every data op in the plan, in phase order.
pub fn tiers_of(plan: &Plan) -> Vec<Tier> {
    plan.phases
        .iter()
        .flatten()
        .filter(|op| op.app_offset.is_some())
        .map(|op| op.tier)
        .collect()
}

/// Runs one Rebuilder wake and keeps only the plans that carry a
/// completion tag — flushes and fetches. Background journal drains are
/// untagged fire-and-forget writes and are filtered out.
pub fn poll_tagged(mw: &mut S4dCache, cluster: &mut Cluster, now: SimTime) -> Vec<Plan> {
    mw.poll_background(cluster, now)
        .plans
        .into_iter()
        .filter(|p| p.tag != 0)
        .collect()
}

pub fn transient_failure(server: usize, attempts: u32) -> SubIoFailure {
    SubIoFailure {
        tier: Tier::CServers,
        server,
        kind: IoKind::Write,
        len: 16 * KIB,
        error: IoFault::Transient,
        attempts,
        overhead: false,
    }
}

pub fn offline_failure(server: usize) -> SubIoFailure {
    SubIoFailure {
        error: IoFault::Offline,
        ..transient_failure(server, 1)
    }
}

/// Quarantines CServer 0 through three consecutive transient errors.
pub fn quarantine_server_zero(cluster: &mut Cluster, mw: &mut S4dCache, now: SimTime) {
    for attempts in 1..=3 {
        mw.on_io_error(cluster, now, &transient_failure(0, attempts));
    }
    assert!(mw.health().is_unhealthy(0, now));
}
