//! # s4d-trace — request tracing and access-pattern analysis
//!
//! The paper uses IOSIG (its reference \[33\]) to track "the accessed
//! addresses of requests on DServers and CServers" and derive Table III's
//! request distribution. This crate plays that role for the simulated
//! stack: [`TraceCollector`] plugs into the runner as an
//! [`s4d_mpiio::IoObserver`], recording every dispatched application data
//! op, and [`analysis`] computes the distribution, sequentiality, and
//! per-window bandwidth statistics the evaluation needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod collector;

pub use collector::{from_csv, TraceCollector, TraceHandle, TraceRecord};
