//! Access-pattern analysis over trace records.

use std::collections::HashMap;

use s4d_mpiio::Tier;
use s4d_sim::stats::TimeSeries;
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;
use serde::{Deserialize, Serialize};

use crate::collector::TraceRecord;

/// The paper's Table III: how requests split between the two tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TierDistribution {
    /// Requests dispatched to DServers.
    pub d_ops: u64,
    /// Requests dispatched to CServers.
    pub c_ops: u64,
}

impl TierDistribution {
    /// Percentage at DServers (0 when empty).
    pub fn d_percent(&self) -> f64 {
        let total = self.d_ops + self.c_ops;
        if total == 0 {
            0.0
        } else {
            self.d_ops as f64 * 100.0 / total as f64
        }
    }

    /// Percentage at CServers (0 when empty).
    pub fn c_percent(&self) -> f64 {
        let total = self.d_ops + self.c_ops;
        if total == 0 {
            0.0
        } else {
            self.c_ops as f64 * 100.0 / total as f64
        }
    }
}

/// Computes the tier distribution, optionally restricted to a time window
/// `[from, to)` and an I/O direction — Table III uses "the five-second
/// period of IOR execution from the 50th second" of write requests.
pub fn tier_distribution(
    records: &[TraceRecord],
    window: Option<(SimTime, SimTime)>,
    kind: Option<IoKind>,
) -> TierDistribution {
    let mut dist = TierDistribution::default();
    for r in records {
        if let Some((from, to)) = window {
            if r.at < from || r.at >= to {
                continue;
            }
        }
        if let Some(k) = kind {
            if r.kind != k {
                continue;
            }
        }
        match r.tier {
            Tier::DServers => dist.d_ops += 1,
            Tier::CServers => dist.c_ops += 1,
        }
    }
    dist
}

/// Fraction (0–1) of requests that continue the issuing process's previous
/// request contiguously — a simple sequentiality measure per rank.
pub fn sequentiality(records: &[TraceRecord]) -> f64 {
    let mut last_end: HashMap<u32, u64> = HashMap::new();
    let mut contiguous = 0u64;
    let mut total = 0u64;
    for r in records {
        if let Some(&end) = last_end.get(&r.rank.0) {
            total += 1;
            if r.offset == end {
                contiguous += 1;
            }
        }
        last_end.insert(r.rank.0, r.offset + r.len);
    }
    if total == 0 {
        0.0
    } else {
        contiguous as f64 / total as f64
    }
}

/// Mean absolute logical distance between a process's consecutive requests
/// — the randomness signal the cost model keys on. Returns 0 with fewer
/// than two requests per process.
pub fn mean_distance(records: &[TraceRecord]) -> f64 {
    let mut last_end: HashMap<u32, u64> = HashMap::new();
    let mut sum = 0u128;
    let mut n = 0u64;
    for r in records {
        if let Some(&end) = last_end.get(&r.rank.0) {
            sum += end.abs_diff(r.offset) as u128;
            n += 1;
        }
        last_end.insert(r.rank.0, r.offset + r.len);
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

/// Request-size distribution: `(size, count)` pairs sorted by size.
pub fn size_histogram(records: &[TraceRecord]) -> Vec<(u64, u64)> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for r in records {
        *counts.entry(r.len).or_insert(0) += 1;
    }
    let mut out: Vec<(u64, u64)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}

/// Burstiness: the coefficient of variation (σ/μ) of per-window byte
/// counts over non-empty windows. A perfectly steady stream scores 0;
/// checkpoint-style on/off traffic scores well above 1. Returns 0 with
/// fewer than two non-empty windows.
pub fn burstiness(records: &[TraceRecord], width: SimDuration) -> f64 {
    let mut windows: HashMap<u64, u64> = HashMap::new();
    for r in records {
        *windows
            .entry(r.at.as_nanos() / width.as_nanos())
            .or_insert(0) += r.len;
    }
    if windows.len() < 2 {
        return 0.0;
    }
    let n = windows.len() as f64;
    let mean = windows.values().map(|&b| b as f64).sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = windows
        .values()
        .map(|&b| (b as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Per-tier bytes over time, for bandwidth plots.
pub fn bandwidth_series(records: &[TraceRecord], width: SimDuration, tier: Tier) -> TimeSeries {
    let mut series = TimeSeries::new(width);
    for r in records.iter().filter(|r| r.tier == tier) {
        series.record(r.at, r.len);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_mpiio::Rank;

    fn rec(at_s: u64, rank: u32, tier: Tier, kind: IoKind, offset: u64, len: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_secs(at_s),
            rank: Rank(rank),
            tier,
            kind,
            offset,
            len,
        }
    }

    #[test]
    fn distribution_counts_and_percentages() {
        let records = vec![
            rec(1, 0, Tier::DServers, IoKind::Write, 0, 10),
            rec(2, 0, Tier::CServers, IoKind::Write, 10, 10),
            rec(3, 0, Tier::CServers, IoKind::Write, 20, 10),
            rec(4, 0, Tier::CServers, IoKind::Read, 0, 10),
        ];
        let all = tier_distribution(&records, None, None);
        assert_eq!(all.d_ops, 1);
        assert_eq!(all.c_ops, 3);
        assert!((all.d_percent() - 25.0).abs() < 1e-9);
        assert!((all.c_percent() - 75.0).abs() < 1e-9);
        // Restrict to writes.
        let writes = tier_distribution(&records, None, Some(IoKind::Write));
        assert_eq!(writes.c_ops, 2);
        // Restrict to the window [2, 4).
        let win = tier_distribution(
            &records,
            Some((SimTime::from_secs(2), SimTime::from_secs(4))),
            None,
        );
        assert_eq!(win.d_ops, 0);
        assert_eq!(win.c_ops, 2);
        assert_eq!(TierDistribution::default().d_percent(), 0.0);
        assert_eq!(TierDistribution::default().c_percent(), 0.0);
    }

    #[test]
    fn sequentiality_detects_streams() {
        // Rank 0 fully sequential; rank 1 fully random.
        let records = vec![
            rec(1, 0, Tier::DServers, IoKind::Write, 0, 10),
            rec(1, 1, Tier::DServers, IoKind::Write, 1000, 10),
            rec(2, 0, Tier::DServers, IoKind::Write, 10, 10),
            rec(2, 1, Tier::DServers, IoKind::Write, 5000, 10),
            rec(3, 0, Tier::DServers, IoKind::Write, 20, 10),
            rec(3, 1, Tier::DServers, IoKind::Write, 100, 10),
        ];
        let s = sequentiality(&records);
        assert!((s - 0.5).abs() < 1e-9, "2 of 4 transitions contiguous: {s}");
        assert_eq!(sequentiality(&[]), 0.0);
    }

    #[test]
    fn mean_distance_measures_randomness() {
        let seq = vec![
            rec(1, 0, Tier::DServers, IoKind::Write, 0, 10),
            rec(2, 0, Tier::DServers, IoKind::Write, 10, 10),
        ];
        assert_eq!(mean_distance(&seq), 0.0);
        let random = vec![
            rec(1, 0, Tier::DServers, IoKind::Write, 0, 10),
            rec(2, 0, Tier::DServers, IoKind::Write, 1010, 10),
        ];
        assert_eq!(mean_distance(&random), 1000.0);
        assert_eq!(mean_distance(&[]), 0.0);
    }

    #[test]
    fn size_histogram_counts() {
        let records = vec![
            rec(0, 0, Tier::DServers, IoKind::Write, 0, 100),
            rec(1, 0, Tier::DServers, IoKind::Write, 0, 100),
            rec(2, 0, Tier::CServers, IoKind::Read, 0, 50),
        ];
        assert_eq!(size_histogram(&records), vec![(50, 1), (100, 2)]);
        assert!(size_histogram(&[]).is_empty());
    }

    #[test]
    fn burstiness_separates_steady_from_bursty() {
        // Steady: equal bytes every second.
        let steady: Vec<TraceRecord> = (0..10)
            .map(|t| rec(t, 0, Tier::DServers, IoKind::Write, 0, 100))
            .collect();
        let b_steady = burstiness(&steady, SimDuration::from_secs(1));
        assert!(b_steady < 0.01, "steady stream: {b_steady}");
        // Bursty: one huge window among small ones.
        let mut bursty = steady.clone();
        bursty.push(rec(5, 0, Tier::DServers, IoKind::Write, 0, 10_000));
        let b_bursty = burstiness(&bursty, SimDuration::from_secs(1));
        assert!(b_bursty > 1.0, "bursty stream: {b_bursty}");
        assert_eq!(burstiness(&[], SimDuration::from_secs(1)), 0.0);
        assert_eq!(
            burstiness(&steady[..1], SimDuration::from_secs(1)),
            0.0,
            "single window has no variance"
        );
    }

    #[test]
    fn bandwidth_series_filters_tier() {
        let records = vec![
            rec(0, 0, Tier::DServers, IoKind::Write, 0, 100),
            rec(0, 0, Tier::CServers, IoKind::Write, 0, 900),
            rec(1, 0, Tier::CServers, IoKind::Write, 0, 50),
        ];
        let c = bandwidth_series(&records, SimDuration::from_secs(1), Tier::CServers);
        assert_eq!(c.window_bytes(0), 900);
        assert_eq!(c.window_bytes(1), 50);
        let d = bandwidth_series(&records, SimDuration::from_secs(1), Tier::DServers);
        assert_eq!(d.window_bytes(0), 100);
    }
}
