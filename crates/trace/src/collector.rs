//! The trace collector.

use std::sync::Arc;

use parking_lot::Mutex;
use s4d_mpiio::{IoObserver, Rank, Tier};
use s4d_sim::SimTime;
use s4d_storage::IoKind;
use serde::{Deserialize, Serialize};

/// One dispatched application data op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Dispatch time.
    pub at: SimTime,
    /// Issuing process.
    pub rank: Rank,
    /// Which tier served it.
    pub tier: Tier,
    /// Read or write.
    pub kind: IoKind,
    /// Offset in the original file the bytes belong to.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Shared handle to collected records (alive after the runner consumed the
/// observer).
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl TraceHandle {
    /// Snapshot of all records so far.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.lock().clone()
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Drops all records (e.g. between measurement phases).
    pub fn clear(&self) {
        self.records.lock().clear();
    }

    /// Serialises the records as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,rank,tier,kind,offset,len\n");
        for r in self.records.lock().iter() {
            out.push_str(&format!(
                "{:.9},{},{},{},{},{}\n",
                r.at.as_secs_f64(),
                r.rank.0,
                r.tier,
                r.kind,
                r.offset,
                r.len
            ));
        }
        out
    }
}

/// Parses a CSV trace (as produced by [`TraceHandle::to_csv`]) back into
/// records — the IOSIG-style offline-analysis path: trace one run, analyse
/// later.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn from_csv(csv: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        if i == 0 {
            if !line.starts_with("time_s,") {
                return Err(format!("line 1: missing header, got {line:?}"));
            }
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(format!(
                "line {}: expected 6 fields, got {}",
                i + 1,
                fields.len()
            ));
        }
        let secs: f64 = fields[0]
            .parse()
            .map_err(|e| format!("line {}: bad time: {e}", i + 1))?;
        let rank: u32 = fields[1]
            .parse()
            .map_err(|e| format!("line {}: bad rank: {e}", i + 1))?;
        let tier = match fields[2] {
            "DServers" => Tier::DServers,
            "CServers" => Tier::CServers,
            other => return Err(format!("line {}: bad tier {other:?}", i + 1)),
        };
        let kind = match fields[3] {
            "read" => IoKind::Read,
            "write" => IoKind::Write,
            other => return Err(format!("line {}: bad kind {other:?}", i + 1)),
        };
        let offset: u64 = fields[4]
            .parse()
            .map_err(|e| format!("line {}: bad offset: {e}", i + 1))?;
        let len: u64 = fields[5]
            .parse()
            .map_err(|e| format!("line {}: bad len: {e}", i + 1))?;
        out.push(TraceRecord {
            at: SimTime::from_nanos((secs * 1e9).round() as u64),
            rank: Rank(rank),
            tier,
            kind,
            offset,
            len,
        });
    }
    Ok(out)
}

/// The observer to register with [`s4d_mpiio::Runner::add_observer`]. Keep
/// the [`TraceHandle`] to read results after the run.
///
/// ```
/// use s4d_trace::TraceCollector;
/// let (collector, handle) = TraceCollector::new();
/// // runner.add_observer(Box::new(collector));
/// # drop(collector);
/// assert!(handle.is_empty());
/// ```
#[derive(Debug)]
pub struct TraceCollector {
    handle: TraceHandle,
}

impl TraceCollector {
    /// Creates a collector and its reading handle.
    pub fn new() -> (Self, TraceHandle) {
        let handle = TraceHandle::default();
        (
            TraceCollector {
                handle: handle.clone(),
            },
            handle,
        )
    }
}

impl IoObserver for TraceCollector {
    fn on_dispatch(
        &mut self,
        now: SimTime,
        rank: Rank,
        tier: Tier,
        kind: IoKind,
        app_offset: u64,
        len: u64,
    ) {
        self.handle.records.lock().push(TraceRecord {
            at: now,
            rank,
            tier,
            kind,
            offset: app_offset,
            len,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(collector: &mut TraceCollector, t: u64, tier: Tier) {
        collector.on_dispatch(
            SimTime::from_secs(t),
            Rank(0),
            tier,
            IoKind::Write,
            t * 100,
            100,
        );
    }

    #[test]
    fn collects_and_snapshots() {
        let (mut c, h) = TraceCollector::new();
        assert!(h.is_empty());
        record(&mut c, 1, Tier::DServers);
        record(&mut c, 2, Tier::CServers);
        assert_eq!(h.len(), 2);
        let snap = h.snapshot();
        assert_eq!(snap[0].tier, Tier::DServers);
        assert_eq!(snap[1].tier, Tier::CServers);
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (mut c, h) = TraceCollector::new();
        record(&mut c, 1, Tier::CServers);
        let csv = h.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("time_s,rank,tier"));
        assert!(lines[1].contains("CServers"));
        assert!(lines[1].contains("write"));
    }

    #[test]
    fn csv_roundtrips() {
        let (mut c, h) = TraceCollector::new();
        record(&mut c, 1, Tier::CServers);
        record(&mut c, 2, Tier::DServers);
        c.on_dispatch(
            SimTime::from_nanos(123_456_789),
            Rank(7),
            Tier::DServers,
            IoKind::Read,
            42,
            4096,
        );
        let parsed = from_csv(&h.to_csv()).expect("roundtrip parses");
        assert_eq!(parsed, h.snapshot());
    }

    #[test]
    fn csv_import_rejects_garbage() {
        assert!(from_csv("nope").is_err());
        assert!(from_csv(
            "time_s,rank,tier,kind,offset,len
1,2,3"
        )
        .is_err());
        assert!(from_csv(
            "time_s,rank,tier,kind,offset,len
1.0,0,Mars,write,0,1"
        )
        .is_err());
        assert!(from_csv(
            "time_s,rank,tier,kind,offset,len
1.0,0,DServers,poke,0,1"
        )
        .is_err());
        assert!(from_csv(
            "time_s,rank,tier,kind,offset,len
1.0,0,DServers,read,x,1"
        )
        .is_err());
        assert!(from_csv(
            "time_s,rank,tier,kind,offset,len
"
        )
        .unwrap()
        .is_empty());
    }
}
