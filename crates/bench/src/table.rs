//! Plain-text table rendering for bench output.

/// Renders a simple aligned table with a title, header row, and data rows.
///
/// ```
/// use s4d_bench::table::render;
/// let out = render(
///     "Demo",
///     &["size", "MB/s"],
///     &[vec!["8KB".into(), "12.5".into()]],
/// );
/// assert!(out.contains("Demo"));
/// assert!(out.contains("8KB"));
/// ```
pub fn render(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a throughput value as the paper prints them.
pub fn mibs(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage improvement of `new` over `base`.
pub fn speedup_pct(base: f64, new: f64) -> String {
    if base <= 0.0 {
        return "n/a".into();
    }
    format!("{:+.1}%", (new - base) / base * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            "T",
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333333".into(), "4".into()],
            ],
        );
        assert!(t.starts_with("== T =="));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("long-header"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mibs(12.345), "12.35");
        assert_eq!(speedup_pct(100.0, 150.0), "+50.0%");
        assert_eq!(speedup_pct(100.0, 90.0), "-10.0%");
        assert_eq!(speedup_pct(0.0, 90.0), "n/a");
    }
}
