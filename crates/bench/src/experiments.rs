//! Testbed construction and experiment drivers.

use s4d_cache::{S4dCache, S4dConfig, S4dMetrics};
use s4d_cost::CostParams;
use s4d_mpiio::{Cluster, IoObserver, ProcessScript, RunReport, Runner};
use s4d_pfs::NetworkConfig;
use s4d_storage::{presets, StoreMode};
use s4d_workloads::campaign::CampaignConfig;
use s4d_workloads::ChainScript;

/// Experiment data-size scaling.
///
/// The paper's absolute sizes (2 GB per IOR instance, 16 GB motivation
/// file) make each configuration minutes of wall-clock in simulation; the
/// default divides data sizes by 8 while keeping request sizes, server
/// counts, and the cache-to-data ratio identical — relative results (who
/// wins, by what factor) are preserved. Control with the
/// `S4D_SCALE_FACTOR` environment variable (`1` = paper sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    factor: u64,
}

impl Scale {
    /// Paper-reported sizes.
    pub const PAPER: Scale = Scale { factor: 1 };
    /// The default: paper sizes divided by 8.
    pub const SCALED: Scale = Scale { factor: 8 };

    /// A custom divisor.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn with_factor(factor: u64) -> Scale {
        assert!(factor > 0, "scale factor must be positive");
        Scale { factor }
    }

    /// Reads `S4D_SCALE_FACTOR` (or legacy `S4D_PAPER_SCALE=1`) from the
    /// environment; defaults to [`Scale::SCALED`].
    pub fn from_env() -> Scale {
        if std::env::var("S4D_PAPER_SCALE").as_deref() == Ok("1") {
            return Scale::PAPER;
        }
        match std::env::var("S4D_SCALE_FACTOR")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(f) if f > 0 => Scale { factor: f },
            _ => Scale::SCALED,
        }
    }

    /// The divisor in effect.
    pub fn factor(self) -> u64 {
        self.factor
    }

    /// Applies the scaling to a paper-scale byte size.
    pub fn bytes(self, paper_bytes: u64) -> u64 {
        (paper_bytes / self.factor).max(1)
    }
}

/// The simulated testbed configuration (defaults to the paper's §V.A).
#[derive(Debug, Clone)]
pub struct Testbed {
    /// HDD file servers (DServers).
    pub d_servers: usize,
    /// SSD file servers (CServers).
    pub c_servers: usize,
    /// Stripe size of both file systems.
    pub stripe: u64,
    /// RNG seed for device and placement noise.
    pub seed: u64,
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed {
            d_servers: 8,
            c_servers: 4,
            stripe: 64 * 1024,
            seed: 0x54D,
        }
    }
}

/// The paper's testbed with a specific seed.
pub fn testbed(seed: u64) -> Testbed {
    Testbed {
        seed,
        ..Testbed::default()
    }
}

impl Testbed {
    /// Builds the cluster (timing-mode stores).
    pub fn cluster(&self) -> Cluster {
        Cluster::build(
            self.d_servers,
            self.c_servers,
            self.stripe,
            presets::hdd_seagate_st3250(),
            presets::ssd_ocz_revodrive_x2(),
            NetworkConfig::gigabit_ethernet(),
            StoreMode::Timing,
            self.seed,
        )
    }

    /// Cost-model parameters consistent with [`Testbed::cluster`], with the
    /// network bottleneck folded in — the analogue of the paper profiling
    /// its own testbed.
    pub fn cost_params(&self) -> CostParams {
        let net = NetworkConfig::gigabit_ethernet();
        let ssd = presets::ssd_ocz_revodrive_x2();
        CostParams::from_hardware(
            &presets::hdd_seagate_st3250(),
            &ssd,
            self.d_servers,
            self.c_servers,
            self.stripe,
        )
        .with_network_bandwidth(net.bandwidth())
        // β_C is the request-level effective cost: per-op RPC + device
        // latency amortised over the paper's dominant critical request
        // size (16 KiB) — see `CostParams::with_cserver_op_overhead`.
        .with_cserver_op_overhead(net.rpc_latency_secs() + ssd.op_latency_secs(), 16 * 1024)
    }
}

/// An S4D middleware for this testbed with the given cache capacity.
pub fn s4d_middleware(tb: &Testbed, cache_capacity: u64) -> S4dCache {
    S4dCache::new(S4dConfig::new(cache_capacity), tb.cost_params())
}

/// The outcome of one measured configuration.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The runner's report for the measured run.
    pub report: RunReport,
    /// Middleware counters (zeroed for stock runs).
    pub metrics: S4dMetrics,
}

impl ExperimentOutcome {
    /// Application write throughput, MiB/s.
    pub fn write_mibs(&self) -> f64 {
        self.report.writes.throughput_mibs()
    }

    /// Application read throughput, MiB/s.
    pub fn read_mibs(&self) -> f64 {
        self.report.reads.throughput_mibs()
    }
}

/// Builds the paper's 10-instance IOR campaign scripts at the given scale.
pub fn campaign_scripts(
    processes: u32,
    request_size: u64,
    scale: Scale,
) -> (CampaignConfig, Vec<ChainScript>) {
    let cfg = CampaignConfig::paper_mix(processes, scale.bytes(2 << 30), request_size);
    let scripts = cfg.scripts();
    (cfg, scripts)
}

/// Runs scripts over the stock middleware.
pub fn run_stock(
    tb: &Testbed,
    scripts: Vec<impl ProcessScript + 'static>,
    observers: Vec<Box<dyn IoObserver>>,
) -> ExperimentOutcome {
    let mut runner = Runner::new(
        tb.cluster(),
        s4d_mpiio::StockMiddleware::new(),
        scripts,
        tb.seed,
    );
    for obs in observers {
        runner.add_observer(obs);
    }
    let report = runner.run();
    ExperimentOutcome {
        report,
        metrics: S4dMetrics::default(),
    }
}

/// Runs scripts over S4D-Cache with the given configuration.
pub fn run_s4d(
    tb: &Testbed,
    config: S4dConfig,
    scripts: Vec<impl ProcessScript + 'static>,
    observers: Vec<Box<dyn IoObserver>>,
) -> ExperimentOutcome {
    let middleware = S4dCache::new(config, tb.cost_params());
    let mut runner = Runner::new(tb.cluster(), middleware, scripts, tb.seed);
    for obs in observers {
        runner.add_observer(obs);
    }
    let report = runner.run();
    let (_cluster, mw, _r) = runner.into_parts();
    ExperimentOutcome {
        report,
        metrics: *mw.metrics(),
    }
}

/// Runs scripts over an arbitrary middleware (custom policies, stacked
/// combinators like [`s4d_cache::MemCache`]).
pub fn run_custom<M: s4d_mpiio::Middleware>(
    tb: &Testbed,
    middleware: M,
    scripts: Vec<impl ProcessScript + 'static>,
    observers: Vec<Box<dyn IoObserver>>,
) -> (RunReport, M) {
    let mut runner = Runner::new(tb.cluster(), middleware, scripts, tb.seed);
    for obs in observers {
        runner.add_observer(obs);
    }
    let report = runner.run();
    let (_cluster, mw, _r) = runner.into_parts();
    (report, mw)
}

/// Second-run measurement for the stock baseline: run `first`, then run
/// and measure `second` on the same (now warm) cluster. Stock has no cache
/// to warm, but the HDD stream state and file layout carry over, keeping
/// the comparison with [`run_s4d_second_read`] apples-to-apples.
pub fn run_stock_second_read(
    tb: &Testbed,
    first: Vec<impl ProcessScript + 'static>,
    second: Vec<impl ProcessScript + 'static>,
) -> ExperimentOutcome {
    let mut runner = Runner::new(
        tb.cluster(),
        s4d_mpiio::StockMiddleware::new(),
        first,
        tb.seed,
    );
    runner.run();
    let (cluster, middleware, _) = runner.into_parts();
    let mut runner = Runner::new(cluster, middleware, second, tb.seed ^ 1);
    let report = runner.run();
    ExperimentOutcome {
        report,
        metrics: S4dMetrics::default(),
    }
}

/// The paper's second-run read measurement (§V.A): run the scripts once to
/// let the Identifier learn and the Rebuilder cache critical data, drain
/// the Rebuilder, then run `second` and measure it.
pub fn run_s4d_second_read(
    tb: &Testbed,
    config: S4dConfig,
    first: Vec<impl ProcessScript + 'static>,
    second: Vec<impl ProcessScript + 'static>,
) -> ExperimentOutcome {
    let middleware = S4dCache::new(config, tb.cost_params());
    let mut runner = Runner::new(tb.cluster(), middleware, first, tb.seed);
    let first_report = runner.run();
    let end = runner.drain_background(first_report.end_time);
    let (cluster, middleware, _) = runner.into_parts();
    let mut runner = Runner::new(cluster, middleware, second, tb.seed ^ 1);
    let _ = end;
    let report = runner.run();
    let (_cluster, mw, _r) = runner.into_parts();
    ExperimentOutcome {
        report,
        metrics: *mw.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4d_workloads::{AccessPattern, IorConfig};

    fn tiny_ior(pattern: AccessPattern, processes: u32) -> Vec<s4d_workloads::IorScript> {
        IorConfig {
            file_name: "tiny".into(),
            file_size: 8 * 1024 * 1024,
            processes,
            request_size: 16 * 1024,
            pattern,
            do_write: true,
            do_read: true,
            seed: 3,
        }
        .scripts()
    }

    #[test]
    fn scale_arithmetic() {
        assert_eq!(Scale::PAPER.bytes(1 << 30), 1 << 30);
        assert_eq!(Scale::SCALED.bytes(1 << 30), (1 << 30) / 8);
        assert_eq!(Scale::with_factor(1 << 30).bytes(2), 1);
        assert_eq!(Scale::SCALED.factor(), 8);
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn scale_rejects_zero() {
        Scale::with_factor(0);
    }

    #[test]
    fn testbed_defaults_match_paper() {
        let tb = Testbed::default();
        assert_eq!(tb.d_servers, 8);
        assert_eq!(tb.c_servers, 4);
        assert_eq!(tb.stripe, 64 * 1024);
        let c = tb.cluster();
        assert_eq!(c.opfs().server_count(), 8);
        assert_eq!(c.cpfs().server_count(), 4);
        let p = tb.cost_params();
        assert_eq!(p.m, 8);
        assert_eq!(p.n, 4);
    }

    #[test]
    fn stock_and_s4d_both_complete() {
        let tb = testbed(1);
        let stock = run_stock(&tb, tiny_ior(AccessPattern::Random, 4), Vec::new());
        assert!(stock.write_mibs() > 0.0);
        assert_eq!(stock.report.tiers.c_ops, 0);
        let s4d = run_s4d(
            &tb,
            S4dConfig::new(16 * 1024 * 1024),
            tiny_ior(AccessPattern::Random, 4),
            Vec::new(),
        );
        assert!(s4d.write_mibs() > 0.0);
        assert!(s4d.report.tiers.c_ops > 0, "random 16 KiB must redirect");
        assert!(s4d.metrics.critical > 0);
    }

    #[test]
    fn s4d_beats_stock_on_random_small_writes() {
        let tb = testbed(2);
        let stock = run_stock(&tb, tiny_ior(AccessPattern::Random, 4), Vec::new());
        let s4d = run_s4d(
            &tb,
            S4dConfig::new(16 * 1024 * 1024),
            tiny_ior(AccessPattern::Random, 4),
            Vec::new(),
        );
        assert!(
            s4d.write_mibs() > stock.write_mibs(),
            "s4d {} vs stock {}",
            s4d.write_mibs(),
            stock.write_mibs()
        );
    }

    #[test]
    fn second_run_reads_hit_cache() {
        let tb = testbed(3);
        let mut read_only = IorConfig {
            file_name: "tiny".into(),
            file_size: 8 * 1024 * 1024,
            processes: 4,
            request_size: 16 * 1024,
            pattern: AccessPattern::Random,
            do_write: false,
            do_read: true,
            seed: 3,
        };
        read_only.do_write = false;
        let out = run_s4d_second_read(
            &tb,
            S4dConfig::new(16 * 1024 * 1024),
            tiny_ior(AccessPattern::Random, 4),
            read_only.scripts(),
        );
        // Second run should be mostly cache hits.
        assert!(
            out.report.tiers.c_ops > out.report.tiers.d_ops,
            "c={} d={}",
            out.report.tiers.c_ops,
            out.report.tiers.d_ops
        );
    }
}
