//! Gray-failure straggler benchmark: read throughput and completion
//! percentiles under a tail-latency fault plan, with and without the
//! deadline/hedging machinery — the perf-trajectory baseline for the
//! gray-failure work (ROADMAP item 2).
//!
//! Emits `BENCH_straggler.json` (machine-readable, hand-formatted: the
//! workspace has no JSON serializer dependency) into the current
//! directory and prints the same numbers to stdout.
//!
//! `--check [baseline.json]` re-runs both variants and compares them
//! against the committed baseline instead of writing it: the gate fails
//! (exit 1) when read throughput drops more than 5% or p99 completion
//! latency grows more than 10% for either variant. The simulation is
//! deterministic, so an honest run reproduces the baseline exactly —
//! the tolerances only absorb formatting rounding.

use std::cell::RefCell;
use std::rc::Rc;

use s4d_bench::testbed;
use s4d_cache::{S4dCache, S4dConfig};
use s4d_mpiio::{script, IoObserver, Rank, RunReport, Runner};
use s4d_pfs::{FaultPlan, ServerFault};
use s4d_sim::{SimDuration, SimTime};
use s4d_storage::IoKind;

const KIB: u64 = 1024;
/// Requests per rank in each phase.
const REQUESTS: u64 = 256;
const RANKS: usize = 4;
const REQ_SIZE: u64 = 16 * KIB;
/// Per-rank file region, holding its whole write phase.
const REGION: u64 = 16 * 1024 * KIB;
/// The read phase starts after this much think time; the fault window
/// opens at the same instant, so only reads see the tail.
const READ_PHASE_SECS: u64 = 3;
/// Tail probability and service-time multiplier of the fault plan.
const TAIL_PROBABILITY: f64 = 0.1;
const TAIL_FACTOR: f64 = 200.0;

/// Collects per-read completion latencies and the read phase's span.
#[derive(Default)]
struct Latencies {
    read_secs: Vec<f64>,
    first_issued: Option<SimTime>,
    last_done: Option<SimTime>,
}

struct Collect(Rc<RefCell<Latencies>>);

impl IoObserver for Collect {
    fn on_request_complete(
        &mut self,
        now: SimTime,
        _rank: Rank,
        kind: IoKind,
        _offset: u64,
        _len: u64,
        issued: SimTime,
    ) {
        if kind != IoKind::Read {
            return;
        }
        let mut l = self.0.borrow_mut();
        l.read_secs.push((now - issued).as_secs_f64());
        l.first_issued = Some(l.first_issued.map_or(issued, |f| f.min(issued)));
        l.last_done = Some(l.last_done.map_or(now, |d| d.max(now)));
    }
}

struct Variant {
    name: &'static str,
    report: RunReport,
    reads_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_variant(name: &'static str, hedged: bool) -> Variant {
    let tb = testbed(0x57A11);
    let mut cluster = tb.cluster();
    cluster
        .cpfs_mut()
        .set_fault_plan(
            0,
            FaultPlan::new().with(ServerFault::TailLatency {
                from: SimTime::from_secs(READ_PHASE_SECS),
                until: SimTime::from_secs(10_000),
                probability: TAIL_PROBABILITY,
                factor: TAIL_FACTOR,
            }),
        )
        .expect("CServer 0 exists");

    let mut config = S4dConfig::new(256 * 1024 * KIB)
        .with_journal_batch(1)
        .with_rebuild_period(SimDuration::from_millis(100));
    if hedged {
        config = config
            .with_deadlines(4.0, SimDuration::from_millis(2))
            .with_hedged_reads(true);
    }

    let scripts: Vec<_> = (0..RANKS)
        .map(|r| {
            let base = r as u64 * REGION;
            let mut b = script().open("straggler.dat");
            for i in 0..REQUESTS {
                b = b.write(0, base + i * REQ_SIZE, REQ_SIZE);
            }
            // Let the Rebuilder flush everything clean before the fault
            // window opens: the read phase then measures pure tail pain.
            b = b.think(SimDuration::from_secs(READ_PHASE_SECS));
            for i in 0..REQUESTS {
                b = b.read(0, base + i * REQ_SIZE, REQ_SIZE);
            }
            b.close(0).build()
        })
        .collect();

    let latencies = Rc::new(RefCell::new(Latencies::default()));
    let mut runner = Runner::new(
        cluster,
        S4dCache::new(config, tb.cost_params()),
        scripts,
        tb.seed,
    );
    runner.add_observer(Box::new(Collect(latencies.clone())));
    let report = runner.run();

    let l = latencies.borrow();
    let mut sorted = l.read_secs.clone();
    sorted.sort_by(f64::total_cmp);
    let span = match (l.first_issued, l.last_done) {
        (Some(f), Some(d)) if d > f => (d - f).as_secs_f64(),
        _ => 0.0,
    };
    let reads_per_sec = if span > 0.0 {
        sorted.len() as f64 / span
    } else {
        0.0
    };
    Variant {
        name,
        report,
        reads_per_sec,
        p50_ms: percentile(&sorted, 0.50) * 1e3,
        p99_ms: percentile(&sorted, 0.99) * 1e3,
        max_ms: sorted.last().copied().unwrap_or(0.0) * 1e3,
    }
}

fn variant_json(v: &Variant) -> String {
    let g = &v.report.gray;
    format!(
        "  \"{}\": {{\n    \"reads_per_sec\": {:.1},\n    \"p50_ms\": {:.3},\n    \
         \"p99_ms\": {:.3},\n    \"max_ms\": {:.3},\n    \"deadline_misses\": {},\n    \
         \"hedges_issued\": {},\n    \"hedges_won\": {},\n    \"stall_abandons\": {},\n    \
         \"replans\": {}\n  }}",
        v.name,
        v.reads_per_sec,
        v.p50_ms,
        v.p99_ms,
        v.max_ms,
        g.deadline_misses,
        g.hedges_issued,
        g.hedges_won,
        g.stall_abandons,
        v.report.degraded.replans,
    )
}

/// Reads the first numeric value following `"key"` in `text`.
fn field_f64(text: &str, key: &str) -> Option<f64> {
    let at = text.find(&format!("\"{key}\""))?;
    let rest = &text[at..];
    let tail = rest[rest.find(':')? + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Compares the freshly measured variants against the committed
/// baseline file. Returns the process exit code.
fn check(baseline_path: &str, variants: &[&Variant]) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let mut failed = false;
    for v in variants {
        // Scope the key scan to this variant's object in the baseline.
        let Some(sect) = text.split(&format!("\"{}\"", v.name)).nth(1) else {
            eprintln!("baseline has no \"{}\" section", v.name);
            failed = true;
            continue;
        };
        let (Some(base_rps), Some(base_p99)) =
            (field_f64(sect, "reads_per_sec"), field_f64(sect, "p99_ms"))
        else {
            eprintln!("baseline \"{}\" section is missing metrics", v.name);
            failed = true;
            continue;
        };
        let rps_ok = v.reads_per_sec >= base_rps * 0.95;
        let p99_ok = v.p99_ms <= base_p99 * 1.10 + 0.05;
        println!(
            "{:>8}: reads/s {:.1} vs baseline {:.1} [{}]  p99 {:.3} ms vs baseline {:.3} ms [{}]",
            v.name,
            v.reads_per_sec,
            base_rps,
            if rps_ok { "ok" } else { "REGRESSED" },
            v.p99_ms,
            base_p99,
            if p99_ok { "ok" } else { "REGRESSED" },
        );
        failed |= !rps_ok || !p99_ok;
    }
    if failed {
        eprintln!("bench regression gate FAILED against {baseline_path}");
        1
    } else {
        println!("bench regression gate passed against {baseline_path}");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline = run_variant("baseline", false);
    let hedged = run_variant("hedged", true);
    if args.get(1).map(String::as_str) == Some("--check") {
        let path = args.get(2).map_or("BENCH_straggler.json", String::as_str);
        std::process::exit(check(path, &[&baseline, &hedged]));
    }
    for v in [&baseline, &hedged] {
        println!(
            "{:>8}: {:.1} reads/s  p50 {:.3} ms  p99 {:.3} ms  max {:.3} ms  \
             (misses {}, hedges {}/{})",
            v.name,
            v.reads_per_sec,
            v.p50_ms,
            v.p99_ms,
            v.max_ms,
            v.report.gray.deadline_misses,
            v.report.gray.hedges_won,
            v.report.gray.hedges_issued,
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"straggler\",\n  \"workload\": {{\n    \"ranks\": {RANKS},\n    \
         \"requests_per_rank\": {REQUESTS},\n    \"request_bytes\": {REQ_SIZE}\n  }},\n  \
         \"fault\": {{\n    \"kind\": \"tail-latency\",\n    \"server\": 0,\n    \
         \"probability\": {TAIL_PROBABILITY},\n    \"factor\": {TAIL_FACTOR}\n  }},\n{},\n{}\n}}\n",
        variant_json(&baseline),
        variant_json(&hedged),
    );
    let path = "BENCH_straggler.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
