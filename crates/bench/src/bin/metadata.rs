//! Metadata-plane benchmark: pipeline throughput and group-commit
//! efficiency across shard counts (ROADMAP item 1, DESIGN.md §15).
//!
//! Two measurements, each at shard counts 1, 4, and 16:
//!
//! * **Pipeline ops/s** — the identify→redirect→admit pipeline driven
//!   through the public `Middleware::plan_io` seam with a shard-pure
//!   request stream (every request sits inside one stripe tile, so every
//!   metadata mutation it causes lands in one shard). Requests are
//!   grouped by owning shard and each shard's batch is wall-clock timed
//!   separately; the reported throughput is `total_ops /
//!   max(per-shard seconds)` — the critical path under shard-parallel
//!   execution, which is exactly what the sharded plane licenses (shards
//!   share no metadata state; the cross-count equivalence proptests prove
//!   byte-identical outcomes).
//! * **Journal appends per fsync** — a fresh middleware driven with the
//!   same tiles in file order, which round-robins the shards the way
//!   striped MPI-IO traffic does. Group commit coalesces every per-shard
//!   queue into one batch frame when any queue reaches the threshold, so
//!   appends-per-fsync scales with the shard count while each record
//!   still carries its own CRC frame. Reported straight from the
//!   middleware's own counters (`journal_records_written /
//!   journal_writes`), with batch occupancy = appends-per-fsync ÷
//!   (threshold × shards).
//!
//! Emits `BENCH_metadata.json` (hand-formatted: the workspace has no JSON
//! serializer dependency) and prints the same numbers to stdout.
//!
//! `--check` re-runs everything and gates on the *ratios*, which are
//! machine-independent: pipeline ops/s at 16 shards must be ≥ 2× the
//! 1-shard figure, and appends-per-fsync at 16 shards must be ≥ 4× the
//! 1-shard figure. The journal counters are simulation-deterministic, so
//! they are additionally compared against the committed baseline exactly.

use std::time::Instant;

use s4d_bench::testbed;
use s4d_cache::{S4dCache, S4dConfig};
use s4d_mpiio::{AppRequest, Cluster, Middleware, Rank};
use s4d_pfs::FileId;
use s4d_sim::SimTime;
use s4d_storage::IoKind;

const KIB: u64 = 1024;
/// Stripe tile size — must match the config's `shard_stripe` so a
/// tile-contained request is shard-pure.
const TILE: u64 = 64 * KIB;
/// Tiles in the workload; divisible by 16 so every shard count gets a
/// perfectly balanced slice.
const TILES: u64 = 3200;
/// Critical-sized requests per tile in the pipeline phase (16 KiB is the
/// paper's dominant critical request size).
const REQS_PER_TILE: u64 = 4;
const REQ_SIZE: u64 = TILE / REQS_PER_TILE;
/// Shard counts under measurement.
const SHARD_COUNTS: [u32; 3] = [1, 4, 16];

/// One shard count's measurements.
struct Sample {
    shards: u32,
    pipeline_ops_per_sec: f64,
    total_ops: u64,
    slowest_shard_secs: f64,
    journal_writes: u64,
    journal_records: u64,
    appends_per_fsync: f64,
    batch_occupancy: f64,
}

fn config_for(shards: u32) -> S4dConfig {
    // Capacity holds the whole 200 MiB region with headroom: the bench
    // measures the pipeline, not eviction.
    S4dConfig::new(512 * 1024 * KIB)
        .with_shards(shards)
        .with_shard_stripe(TILE)
}

fn open_target(mw: &mut S4dCache, cluster: &mut Cluster) -> FileId {
    match mw.open(cluster, Rank(0), "metadata.dat") {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open bench target: {e:?}");
            std::process::exit(2);
        }
    }
}

fn request(file: FileId, kind: IoKind, offset: u64, len: u64) -> AppRequest {
    AppRequest {
        rank: Rank(0),
        file,
        kind,
        offset,
        len,
        data: None,
    }
}

/// Pipeline phase: write, read back, and re-write every tile's requests,
/// one timed batch per owning shard.
fn run_pipeline(shards: u32) -> (f64, u64, f64) {
    let tb = testbed(0x4D47);
    let mut cluster = tb.cluster();
    let config = config_for(shards);
    let mut mw = S4dCache::new(config, tb.cost_params());
    let file = open_target(&mut mw, &mut cluster);
    let router = mw.plane().router();

    let mut tiles_of_shard: Vec<Vec<u64>> = vec![Vec::new(); shards as usize];
    for t in 0..TILES {
        let shard = router.shard_of(file, t * TILE);
        if let Some(list) = tiles_of_shard.get_mut(shard) {
            list.push(t);
        }
    }

    let now = SimTime::ZERO;
    let mut total_ops = 0u64;
    let mut slowest = 0.0f64;
    for tiles in &tiles_of_shard {
        let started = Instant::now();
        let mut ops = 0u64;
        // Write pass: cold admissions (CDT insert, benefit pricing,
        // per-shard alloc + DMT insert, journal queue).
        for &t in tiles {
            for i in 0..REQS_PER_TILE {
                let off = t * TILE + i * REQ_SIZE;
                let _ = mw.plan_io(
                    &mut cluster,
                    now,
                    &request(file, IoKind::Write, off, REQ_SIZE),
                );
                ops += 1;
            }
        }
        // Read pass: full hits (range view, LRU touch).
        for &t in tiles {
            for i in 0..REQS_PER_TILE {
                let off = t * TILE + i * REQ_SIZE;
                let _ = mw.plan_io(
                    &mut cluster,
                    now,
                    &request(file, IoKind::Read, off, REQ_SIZE),
                );
                ops += 1;
            }
        }
        // Re-write pass: hot-path overwrites (view, mark_dirty, unseal).
        for &t in tiles {
            for i in 0..REQS_PER_TILE {
                let off = t * TILE + i * REQ_SIZE;
                let _ = mw.plan_io(
                    &mut cluster,
                    now,
                    &request(file, IoKind::Write, off, REQ_SIZE),
                );
                ops += 1;
            }
        }
        let secs = started.elapsed().as_secs_f64();
        slowest = slowest.max(secs);
        total_ops += ops;
    }
    let ops_per_sec = if slowest > 0.0 {
        total_ops as f64 / slowest
    } else {
        0.0
    };
    (ops_per_sec, total_ops, slowest)
}

/// Journal phase: whole-tile writes in file order (round-robin over the
/// shards), then read the middleware's group-commit counters.
fn run_journal(shards: u32) -> (u64, u64) {
    let tb = testbed(0x4D48);
    let mut cluster = tb.cluster();
    let config = config_for(shards);
    let mut mw = S4dCache::new(config, tb.cost_params());
    let file = open_target(&mut mw, &mut cluster);
    let now = SimTime::ZERO;
    for t in 0..TILES {
        let _ = mw.plan_io(
            &mut cluster,
            now,
            &request(file, IoKind::Write, t * TILE, TILE),
        );
    }
    let m = mw.metrics();
    (m.journal_writes, m.journal_records_written)
}

fn measure(shards: u32) -> Sample {
    let (pipeline_ops_per_sec, total_ops, slowest_shard_secs) = run_pipeline(shards);
    let (journal_writes, journal_records) = run_journal(shards);
    let appends_per_fsync = if journal_writes > 0 {
        journal_records as f64 / journal_writes as f64
    } else {
        0.0
    };
    let threshold = config_for(shards).journal_batch_records;
    let batch_occupancy = appends_per_fsync / (threshold as f64 * shards as f64);
    Sample {
        shards,
        pipeline_ops_per_sec,
        total_ops,
        slowest_shard_secs,
        journal_writes,
        journal_records,
        appends_per_fsync,
        batch_occupancy,
    }
}

fn sample_json(s: &Sample) -> String {
    format!(
        "  \"shards_{}\": {{\n    \"pipeline_ops_per_sec\": {:.0},\n    \
         \"total_ops\": {},\n    \"slowest_shard_secs\": {:.6},\n    \
         \"journal_writes\": {},\n    \"journal_records\": {},\n    \
         \"appends_per_fsync\": {:.2},\n    \"batch_occupancy\": {:.3}\n  }}",
        s.shards,
        s.pipeline_ops_per_sec,
        s.total_ops,
        s.slowest_shard_secs,
        s.journal_writes,
        s.journal_records,
        s.appends_per_fsync,
        s.batch_occupancy,
    )
}

/// Reads the first numeric value following `"key"` inside `text`.
fn field_f64(text: &str, key: &str) -> Option<f64> {
    let at = text.find(&format!("\"{key}\""))?;
    let rest = &text[at..];
    let tail = rest[rest.find(':')? + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The regression gate: ratio thresholds on the fresh measurements
/// (machine-independent), plus exact comparison of the deterministic
/// journal counters against the committed baseline.
fn check(baseline_path: &str, samples: &[Sample]) -> i32 {
    let (Some(one), Some(sixteen)) = (
        samples.iter().find(|s| s.shards == 1),
        samples.iter().find(|s| s.shards == 16),
    ) else {
        eprintln!("missing shard-count samples");
        return 2;
    };
    let mut failed = false;
    let ops_gain = if one.pipeline_ops_per_sec > 0.0 {
        sixteen.pipeline_ops_per_sec / one.pipeline_ops_per_sec
    } else {
        0.0
    };
    let apf_gain = if one.appends_per_fsync > 0.0 {
        sixteen.appends_per_fsync / one.appends_per_fsync
    } else {
        0.0
    };
    let ops_ok = ops_gain >= 2.0;
    let apf_ok = apf_gain >= 4.0;
    println!(
        "pipeline ops/s 16-vs-1 shard: {:.2}x (need >= 2.0) [{}]",
        ops_gain,
        if ops_ok { "ok" } else { "REGRESSED" }
    );
    println!(
        "appends-per-fsync 16-vs-1 shard: {:.2}x (need >= 4.0) [{}]",
        apf_gain,
        if apf_ok { "ok" } else { "REGRESSED" }
    );
    failed |= !ops_ok || !apf_ok;
    match std::fs::read_to_string(baseline_path) {
        Ok(text) => {
            for s in samples {
                let Some(sect) = text.split(&format!("\"shards_{}\"", s.shards)).nth(1) else {
                    eprintln!("baseline has no \"shards_{}\" section", s.shards);
                    failed = true;
                    continue;
                };
                let (Some(base_writes), Some(base_records)) = (
                    field_f64(sect, "journal_writes"),
                    field_f64(sect, "journal_records"),
                ) else {
                    eprintln!("baseline \"shards_{}\" is missing counters", s.shards);
                    failed = true;
                    continue;
                };
                let writes_ok = s.journal_writes as f64 == base_writes;
                let records_ok = s.journal_records as f64 == base_records;
                println!(
                    "shards_{}: journal writes {} vs baseline {} [{}]  records {} vs {} [{}]",
                    s.shards,
                    s.journal_writes,
                    base_writes,
                    if writes_ok { "ok" } else { "DRIFTED" },
                    s.journal_records,
                    base_records,
                    if records_ok { "ok" } else { "DRIFTED" },
                );
                failed |= !writes_ok || !records_ok;
            }
        }
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            failed = true;
        }
    }
    if failed {
        eprintln!("metadata bench gate FAILED");
        1
    } else {
        println!("metadata bench gate passed against {baseline_path}");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples: Vec<Sample> = SHARD_COUNTS.iter().map(|&n| measure(n)).collect();
    for s in &samples {
        println!(
            "shards {:>2}: {:>9.0} pipeline ops/s (slowest shard {:.4}s of {} ops)  \
             {:>7.1} appends/fsync  occupancy {:.3}  ({} writes / {} records)",
            s.shards,
            s.pipeline_ops_per_sec,
            s.slowest_shard_secs,
            s.total_ops,
            s.appends_per_fsync,
            s.batch_occupancy,
            s.journal_writes,
            s.journal_records,
        );
    }
    if args.get(1).map(String::as_str) == Some("--check") {
        let path = args.get(2).map_or("BENCH_metadata.json", String::as_str);
        std::process::exit(check(path, &samples));
    }
    let body: Vec<String> = samples.iter().map(sample_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"metadata\",\n  \"workload\": {{\n    \"tiles\": {TILES},\n    \
         \"tile_bytes\": {TILE},\n    \"pipeline_request_bytes\": {REQ_SIZE},\n    \
         \"pipeline_passes\": 3\n  }},\n{}\n}}\n",
        body.join(",\n"),
    );
    let path = "BENCH_metadata.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
