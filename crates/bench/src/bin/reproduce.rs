//! One-shot reproduction driver: runs every experiment of the paper's
//! evaluation and prints a consolidated report (the source of
//! EXPERIMENTS.md's measured columns).
//!
//! ```text
//! cargo run -p s4d-bench --release --bin reproduce          # scaled (÷8)
//! S4D_SCALE_FACTOR=1 cargo run -p s4d-bench --release --bin reproduce
//! ```

use s4d_bench::table;
use s4d_bench::{
    campaign_scripts, run_s4d, run_s4d_second_read, run_stock, run_stock_second_read, testbed,
    Scale, Testbed,
};
use s4d_cache::S4dConfig;
use s4d_sim::SimTime;
use s4d_storage::IoKind;
use s4d_trace::{analysis, TraceCollector};
use s4d_workloads::campaign::CampaignConfig;
use s4d_workloads::{AccessPattern, HpioConfig, IorConfig, TileIoConfig};

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    println!(
        "# S4D-Cache reproduction run (scale factor {}, seed 0x54D)\n",
        scale.factor()
    );
    fig1(&tb, scale);
    fig6_and_tables(&tb, scale);
    fig7(&tb, scale);
    fig8(scale);
    fig9(&tb, scale);
    fig10(&tb, scale);
    fig11(&tb, scale);
    println!("\nDone. Compare against the paper via EXPERIMENTS.md.");
}

fn fig1(tb: &Testbed, scale: Scale) {
    let mut rows = Vec::new();
    for req_kib in [4u64, 16, 64, 256, 1024, 4096] {
        let mk = |pattern| {
            IorConfig {
                file_name: format!("r_fig1_{req_kib}_{pattern:?}"),
                file_size: scale.bytes(16 << 30),
                processes: 16,
                request_size: req_kib * 1024,
                pattern,
                do_write: true,
                do_read: true,
                seed: 0xF16,
            }
            .scripts()
        };
        let seq = run_stock(tb, mk(AccessPattern::Sequential), Vec::new());
        let rnd = run_stock(tb, mk(AccessPattern::Random), Vec::new());
        rows.push(vec![
            format!("{req_kib} KiB"),
            table::mibs(seq.read_mibs()),
            table::mibs(rnd.read_mibs()),
            format!("{:.2}x", seq.read_mibs() / rnd.read_mibs().max(1e-9)),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 1 — stock seq vs random reads",
            &["req", "seq", "random", "ratio"],
            &rows
        )
    );
}

fn fig6_and_tables(tb: &Testbed, scale: Scale) {
    let mut wrows = Vec::new();
    let mut rrows = Vec::new();
    for req_kib in [8u64, 16, 32, 64, 4096] {
        let (cfg, scripts) = campaign_scripts(32, req_kib * 1024, scale);
        let capacity = cfg.total_data_bytes() / 5;
        let stock = run_stock(tb, scripts, Vec::new());
        let (_, scripts) = campaign_scripts(32, req_kib * 1024, scale);
        let s4d = run_s4d(tb, S4dConfig::new(capacity), scripts, Vec::new());
        let read_cfg = CampaignConfig {
            do_write: false,
            ..cfg.clone()
        };
        let (_, first) = campaign_scripts(32, req_kib * 1024, scale);
        let stock2 = run_stock_second_read(tb, first, read_cfg.scripts());
        let (_, first) = campaign_scripts(32, req_kib * 1024, scale);
        let s4d2 = run_s4d_second_read(tb, S4dConfig::new(capacity), first, read_cfg.scripts());
        wrows.push(vec![
            format!("{req_kib} KiB"),
            table::mibs(stock.write_mibs()),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
        ]);
        rrows.push(vec![
            format!("{req_kib} KiB"),
            table::mibs(stock2.read_mibs()),
            table::mibs(s4d2.read_mibs()),
            table::speedup_pct(stock2.read_mibs(), s4d2.read_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 6a — campaign writes",
            &["req", "stock", "s4d", "gain"],
            &wrows
        )
    );
    print!(
        "{}",
        table::render(
            "Fig. 6b — second-run reads",
            &["req", "stock", "s4d", "gain"],
            &rrows
        )
    );

    // Table III via tracing.
    let mut rows = Vec::new();
    for req_kib in [16u64, 4096] {
        let (cfg, scripts) = campaign_scripts(32, req_kib * 1024, scale);
        let (collector, handle) = TraceCollector::new();
        let out = run_s4d(
            tb,
            S4dConfig::new(cfg.total_data_bytes() / 5),
            scripts,
            vec![Box::new(collector)],
        );
        let records = handle.snapshot();
        let end = out.report.end_time.as_nanos();
        let dist = analysis::tier_distribution(
            &records,
            Some((
                SimTime::from_nanos(end / 2),
                SimTime::from_nanos(end / 2 + end / 10),
            )),
            Some(IoKind::Write),
        );
        rows.push(vec![
            format!("{req_kib} KiB"),
            format!("{:.1}", dist.d_percent()),
            format!("{:.1}", dist.c_percent()),
        ]);
    }
    print!(
        "{}",
        table::render("Table III — distribution", &["req", "D %", "C %"], &rows)
    );

    // Table IV capacity sweep.
    let (cfg, scripts) = campaign_scripts(32, 16 * 1024, scale);
    let total = cfg.total_data_bytes();
    let stock = run_stock(tb, scripts, Vec::new());
    let mut rows = vec![vec![
        "0".into(),
        table::mibs(stock.write_mibs()),
        "+0.0%".into(),
    ]];
    for gb in [2u64, 4, 6] {
        let (_, scripts) = campaign_scripts(32, 16 * 1024, scale);
        let s4d = run_s4d(tb, S4dConfig::new(total * gb / 20), scripts, Vec::new());
        rows.push(vec![
            format!("{gb} GB eq"),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Table IV — capacity sweep",
            &["cap", "MiB/s", "gain"],
            &rows
        )
    );
}

fn fig7(tb: &Testbed, scale: Scale) {
    let mut rows = Vec::new();
    for procs in [16u32, 32, 64, 128] {
        let file_size = procs as u64 * scale.bytes(64 << 20);
        let mk = || CampaignConfig::paper_mix(procs, file_size, 16 * 1024);
        let stock = run_stock(tb, mk().scripts(), Vec::new());
        let s4d = run_s4d(
            tb,
            S4dConfig::new(mk().total_data_bytes() / 5),
            mk().scripts(),
            Vec::new(),
        );
        rows.push(vec![
            procs.to_string(),
            table::mibs(stock.write_mibs()),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 7 — process sweep (writes)",
            &["procs", "stock", "s4d", "gain"],
            &rows
        )
    );
}

fn fig8(scale: Scale) {
    let (cfg, _) = campaign_scripts(32, 16 * 1024, scale);
    let capacity = cfg.total_data_bytes() / 5;
    let mut rows = Vec::new();
    for c_servers in 1..=6usize {
        let tb = Testbed {
            c_servers,
            seed: 0x54D,
            ..Testbed::default()
        };
        let (_, scripts) = campaign_scripts(32, 16 * 1024, scale);
        let s4d = run_s4d(&tb, S4dConfig::new(capacity), scripts, Vec::new());
        rows.push(vec![c_servers.to_string(), table::mibs(s4d.write_mibs())]);
    }
    print!(
        "{}",
        table::render("Fig. 8 — CServer count (writes)", &["N", "MiB/s"], &rows)
    );
}

fn fig9(tb: &Testbed, scale: Scale) {
    let mut rows = Vec::new();
    for spacing in [0u64, 1024, 2048, 4096] {
        let mut cfg = HpioConfig::paper_default(format!("r_hpio_{spacing}"), spacing);
        cfg.region_count = scale.bytes(4096 * 1024) / 1024;
        let data = cfg.processes as u64 * cfg.process_bytes();
        let stock = run_stock(tb, cfg.scripts(), Vec::new());
        let s4d = run_s4d(tb, S4dConfig::new(data / 5), cfg.scripts(), Vec::new());
        rows.push(vec![
            format!("{} KiB", spacing / 1024),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
            table::speedup_pct(stock.read_mibs(), s4d.read_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 9 — HPIO spacing",
            &["spacing", "W gain", "R gain"],
            &rows
        )
    );
}

fn fig10(tb: &Testbed, scale: Scale) {
    let mut rows = Vec::new();
    for procs in [100u32, 200, 300, 400] {
        let mut cfg = TileIoConfig::paper_default(format!("r_tile_{procs}"), procs);
        cfg.element_size = scale.bytes(32 * 1024).max(4096);
        let data = cfg.dataset_bytes();
        let stock = run_stock(tb, cfg.scripts(), Vec::new());
        let s4d = run_s4d(tb, S4dConfig::new(data / 5), cfg.scripts(), Vec::new());
        rows.push(vec![
            procs.to_string(),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
            table::speedup_pct(stock.read_mibs(), s4d.read_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 10 — Tile-IO procs",
            &["procs", "W gain", "R gain"],
            &rows
        )
    );
}

fn fig11(tb: &Testbed, scale: Scale) {
    let mut rows = Vec::new();
    for req_kib in [8u64, 16, 32] {
        let mk = || {
            IorConfig {
                file_name: format!("r_fig11_{req_kib}"),
                file_size: scale.bytes(10 << 30),
                processes: 32,
                request_size: req_kib * 1024,
                pattern: AccessPattern::Random,
                do_write: true,
                do_read: false,
                seed: 0xF11,
            }
            .scripts()
        };
        let stock = run_stock(tb, mk(), Vec::new());
        let fm = run_s4d(
            tb,
            S4dConfig::new(1 << 30).with_force_miss(true),
            mk(),
            Vec::new(),
        );
        rows.push(vec![
            format!("{req_kib} KiB"),
            table::speedup_pct(stock.write_mibs(), fm.write_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render("Fig. 11 — force-miss overhead", &["req", "delta"], &rows)
    );
}
