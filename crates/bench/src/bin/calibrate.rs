//! Quick calibration probe: prints the headline comparisons so the model
//! parameters can be sanity-checked against the paper's shapes without
//! running the full bench suite.

use s4d_bench::{campaign_scripts, run_s4d, run_stock, testbed, Scale};
use s4d_cache::S4dConfig;
use s4d_workloads::{AccessPattern, IorConfig};

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();

    // --- Fig. 1 shape: stock seq vs random reads across request sizes ---
    println!("-- Fig.1 probe: stock IOR read, 16 procs, seq vs random --");
    for req_kib in [4u64, 16, 64, 256, 1024, 4096] {
        let file_size = scale.bytes(2 << 30);
        let mk = |pattern| {
            IorConfig {
                file_name: format!("fig1_{req_kib}_{pattern:?}"),
                file_size,
                processes: 16,
                request_size: req_kib * 1024,
                pattern,
                do_write: true,
                do_read: true,
                seed: 7,
            }
            .scripts()
        };
        let seq = run_stock(&tb, mk(AccessPattern::Sequential), Vec::new());
        let rnd = run_stock(&tb, mk(AccessPattern::Random), Vec::new());
        println!(
            "  {req_kib:>5} KiB  seq read {:>8.1} MiB/s   random read {:>8.1} MiB/s   ratio {:.2}",
            seq.read_mibs(),
            rnd.read_mibs(),
            seq.read_mibs() / rnd.read_mibs().max(1e-9),
        );
    }

    // --- Fig. 6 shape: campaign, stock vs s4d ---
    println!("-- Fig.6 probe: campaign (6 seq + 4 random), 32 procs --");
    for req_kib in [16u64, 4096] {
        let (cfg, scripts) = campaign_scripts(32, req_kib * 1024, scale);
        let stock = run_stock(&tb, scripts, Vec::new());
        let (cfg2, scripts) = campaign_scripts(32, req_kib * 1024, scale);
        assert_eq!(cfg.total_data_bytes(), cfg2.total_data_bytes());
        let capacity = cfg.total_data_bytes() / 5; // 20 %
        let s4d = run_s4d(&tb, S4dConfig::new(capacity), scripts, Vec::new());
        println!(
            "  {req_kib:>5} KiB  stock write {:>8.1}  s4d write {:>8.1}  ({})   c_ops share {:.1}%",
            stock.write_mibs(),
            s4d.write_mibs(),
            s4d_bench::table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
            s4d.report.tiers.cserver_op_share(),
        );
        println!(
            "           stock read  {:>8.1}  s4d read  {:>8.1}  ({})",
            stock.read_mibs(),
            s4d.read_mibs(),
            s4d_bench::table::speedup_pct(stock.read_mibs(), s4d.read_mibs()),
        );
        println!(
            "           s4d metrics: critical {} / evaluated {}, cache writes {}, denied {}",
            s4d.metrics.critical,
            s4d.metrics.evaluated,
            s4d.metrics.writes_to_cache,
            s4d.metrics.admission_denied_space,
        );
        println!(
            "           flushes {} ({} MiB), fetches {}, evictions {} ({} MiB), journal {} writes ({} KiB), lazy {}",
            s4d.metrics.flushes,
            s4d.metrics.flushed_bytes >> 20,
            s4d.metrics.fetches,
            s4d.metrics.evictions,
            s4d.metrics.evicted_bytes >> 20,
            s4d.metrics.journal_writes,
            s4d.metrics.journal_bytes >> 10,
            s4d.metrics.lazy_marks,
        );
        println!(
            "           sim end {:.1}s stock / {:.1}s s4d; cap {} MiB",
            stock.report.end_time.as_secs_f64(),
            s4d.report.end_time.as_secs_f64(),
            capacity >> 20,
        );
    }
}
