//! # s4d-bench — the experiment harness
//!
//! Builds the paper's testbed (§V.A: 8 HDD DServers + 4 SSD CServers,
//! 64 KiB stripes, Gigabit Ethernet, 32 computing processes) out of the
//! workspace crates and regenerates every table and figure of the
//! evaluation. The mapping from paper artifact to bench target lives in
//! `DESIGN.md`; measured-vs-paper numbers live in `EXPERIMENTS.md`.
//!
//! Experiments run at a scaled-down data size by default (same geometry,
//! same request sizes, smaller files) so the whole suite completes in
//! minutes; set `S4D_PAPER_SCALE=1` to run the paper's full 2 GB-per-
//! instance sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{
    campaign_scripts, run_custom, run_s4d, run_s4d_second_read, run_stock, run_stock_second_read,
    s4d_middleware, testbed, ExperimentOutcome, Scale, Testbed,
};
