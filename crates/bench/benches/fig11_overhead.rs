//! Figure 11: runtime overhead when S4D-Cache cannot help.
//!
//! The paper writes a shared 10 GB file randomly with 32 processes where
//! every request intentionally misses the CServers, so the Redirector
//! redirects everything to DServers — measuring the pure bookkeeping
//! overhead (cost evaluation, CDT/DMT lookups). The overhead is
//! "almost unobservable".
//!
//! Run: `cargo bench -p s4d-bench --bench fig11_overhead`

use s4d_bench::table;
use s4d_bench::{run_s4d, run_stock, testbed, Scale};
use s4d_cache::S4dConfig;
use s4d_workloads::{AccessPattern, IorConfig};

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for req_kib in [8u64, 16, 32] {
        let mk = || {
            IorConfig {
                file_name: format!("fig11_{req_kib}"),
                file_size: scale.bytes(10 << 30),
                processes: 32,
                request_size: req_kib * 1024,
                pattern: AccessPattern::Random,
                do_write: true,
                do_read: false,
                seed: 0xF11,
            }
            .scripts()
        };
        let stock = run_stock(&tb, mk(), Vec::new());
        // force_miss: all the decision work, none of the redirection.
        let s4d = run_s4d(
            &tb,
            S4dConfig::new(1 << 30).with_force_miss(true),
            mk(),
            Vec::new(),
        );
        rows.push(vec![
            format!("{req_kib} KiB"),
            table::mibs(stock.write_mibs()),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 11 — all-miss overhead probe (random writes, no redirection)",
            &["req size", "stock MiB/s", "s4d(force-miss) MiB/s", "delta"],
            &rows,
        )
    );
    println!(
        "paper shape: deltas within noise — the middleware's overhead is negligible \
         (scale factor {})",
        scale.factor()
    );
}
