//! Table IV: write throughput with varied SSD cache capacities.
//!
//! The paper varies the cache from 0 GB (S4D disabled) to 6 GB against a
//! 20 GB campaign (10 × 2 GB): 58.03 → 69.34 → 86.15 → 90.89 MB/s
//! (+0/19.5/48.4/56.6 %), with diminishing returns once most random
//! requests fit.
//!
//! Run: `cargo bench -p s4d-bench --bench tab04_capacity`

use s4d_bench::table;
use s4d_bench::{campaign_scripts, run_s4d, run_stock, testbed, Scale};
use s4d_cache::S4dConfig;

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let (cfg, scripts) = campaign_scripts(32, 16 * 1024, scale);
    let total = cfg.total_data_bytes();
    let stock = run_stock(&tb, scripts, Vec::new());
    let base = stock.write_mibs();
    let mut rows = vec![vec![
        "0 (stock)".to_string(),
        table::mibs(base),
        "+0.0%".to_string(),
    ]];
    // The paper's 2/4/6 GB against 20 GB of data = 10/20/30 % of data size.
    for (label, gb_equivalent) in [("2 GB eq", 2u64), ("4 GB eq", 4), ("6 GB eq", 6)] {
        let capacity = total * gb_equivalent / 20;
        let (_, scripts) = campaign_scripts(32, 16 * 1024, scale);
        let s4d = run_s4d(&tb, S4dConfig::new(capacity), scripts, Vec::new());
        rows.push(vec![
            label.to_string(),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(base, s4d.write_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Table IV — IOR write throughput vs SSD cache capacity",
            &["capacity", "throughput MiB/s", "speedup"],
            &rows,
        )
    );
    println!(
        "paper: 58.03 / 69.34 / 86.15 / 90.89 MB/s (+0/19.5/48.4/56.6 %), gains \
         flattening past 4 GB (scale factor {})",
        scale.factor()
    );
}
