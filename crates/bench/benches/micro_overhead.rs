//! Criterion micro-benchmarks of the paper's "negligible overhead" claims
//! (§V.E.2): the per-request decision path must cost microseconds, not
//! milliseconds — cost-model evaluation, CDT/DMT lookups, and the full
//! `plan_io` redirection decision.
//!
//! Run: `cargo bench -p s4d-bench --bench micro_overhead`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use s4d_bench::testbed;
use s4d_cache::{Cdt, Dmt, S4dCache, S4dConfig};
use s4d_cost::BenefitEvaluator;
use s4d_mpiio::{AppRequest, Cluster, Middleware, Rank};
use s4d_pfs::FileId;
use s4d_sim::SimTime;
use s4d_storage::IoKind;

fn bench_cost_model(c: &mut Criterion) {
    let tb = testbed(1);
    let eval: BenefitEvaluator<(u32, u64)> = BenefitEvaluator::new(tb.cost_params());
    c.bench_function("cost_model_evaluate", |b| {
        b.iter(|| {
            eval.evaluate_at_distance(
                black_box(512 * 1024 * 1024),
                black_box(4096),
                black_box(16 * 1024),
            )
        })
    });
}

fn bench_cdt(c: &mut Criterion) {
    let mut cdt = Cdt::new(1 << 20);
    for i in 0..100_000u64 {
        cdt.insert(FileId(i % 16), i * 16384, 16384);
    }
    c.bench_function("cdt_lookup_100k_entries", |b| {
        b.iter(|| cdt.contains(black_box(FileId(3)), black_box(51_200 * 16384), 16384))
    });
}

fn bench_dmt(c: &mut Criterion) {
    let mut dmt = Dmt::new();
    for i in 0..100_000u64 {
        dmt.insert(
            FileId(i % 16),
            i * 32768,
            16384,
            FileId(100),
            i * 16384,
            false,
        );
    }
    c.bench_function("dmt_view_100k_extents", |b| {
        b.iter(|| dmt.view(black_box(FileId(5)), black_box(50_000 * 32768), 16384))
    });
}

fn bench_plan_io(c: &mut Criterion) {
    let tb = testbed(2);
    let mut cluster = Cluster::paper_testbed(3);
    let mut mw = S4dCache::new(S4dConfig::new(1 << 30), tb.cost_params());
    let file = mw.open(&mut cluster, Rank(0), "bench").unwrap();
    let mut offset = 0u64;
    c.bench_function("s4d_plan_io_write_16k", |b| {
        b.iter(|| {
            offset = (offset + 16 * 1024 * 37) % (1 << 28);
            let req = AppRequest {
                rank: Rank(0),
                file,
                kind: IoKind::Write,
                offset,
                len: 16 * 1024,
                data: None,
            };
            mw.plan_io(&mut cluster, SimTime::ZERO, black_box(&req))
        })
    });
}

criterion_group!(
    benches,
    bench_cost_model,
    bench_cdt,
    bench_dmt,
    bench_plan_io
);
criterion_main!(benches);
