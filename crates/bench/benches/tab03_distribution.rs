//! Table III: request distribution between DServers and CServers.
//!
//! The paper traces the campaign with IOSIG and reports, for a five-second
//! window of the execution, where write requests were dispatched:
//! 16 KiB → 16.3 % DServers / 83.7 % CServers; 4096 KiB → 100 % / 0 %.
//!
//! Run: `cargo bench -p s4d-bench --bench tab03_distribution`

use s4d_bench::table;
use s4d_bench::{campaign_scripts, run_s4d, testbed, Scale};
use s4d_cache::S4dConfig;
use s4d_sim::SimTime;
use s4d_storage::IoKind;
use s4d_trace::{analysis, TraceCollector};

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for req_kib in [16u64, 4096] {
        let (cfg, scripts) = campaign_scripts(32, req_kib * 1024, scale);
        let capacity = cfg.total_data_bytes() / 5;
        let (collector, handle) = TraceCollector::new();
        let out = run_s4d(
            &tb,
            S4dConfig::new(capacity),
            scripts,
            vec![Box::new(collector)],
        );
        let records = handle.snapshot();
        // The paper samples a five-second window from the 50th second; at
        // scaled sizes we sample an equivalent slice: 10 % of the run
        // starting at its midpoint.
        let end = out.report.end_time.as_nanos();
        let from = SimTime::from_nanos(end / 2);
        let to = SimTime::from_nanos(end / 2 + end / 10);
        let dist = analysis::tier_distribution(&records, Some((from, to)), Some(IoKind::Write));
        rows.push(vec![
            format!("{req_kib} KiB"),
            format!("{:.1}", dist.d_percent()),
            format!("{:.1}", dist.c_percent()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Table III — write-request distribution (mid-run window)",
            &["req size", "DServers (%)", "CServers (%)"],
            &rows,
        )
    );
    println!(
        "paper: 16 KiB -> 16.3 / 83.7; 4096 KiB -> 100.0 / 0.0 (scale factor {})",
        scale.factor()
    );
}
