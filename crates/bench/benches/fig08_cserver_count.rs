//! Figure 8: IOR throughput with varied numbers of CServers.
//!
//! The paper varies the SSD file-server count from 0 (stock) to 6 while
//! keeping the same cache space and access patterns: write bandwidth
//! improves 20.7–60.1 % and plateaus above four CServers, because only the
//! random fraction of the workload can benefit.
//!
//! Run: `cargo bench -p s4d-bench --bench fig08_cserver_count`

use s4d_bench::table;
use s4d_bench::{campaign_scripts, run_s4d, run_stock, Scale, Testbed};
use s4d_cache::S4dConfig;

fn main() {
    let scale = Scale::from_env();
    let (cfg, _) = campaign_scripts(32, 16 * 1024, scale);
    let capacity = cfg.total_data_bytes() / 5;
    let mut rows = Vec::new();
    let stock_tb = Testbed {
        seed: 0x54D,
        ..Testbed::default()
    };
    let (_, scripts) = campaign_scripts(32, 16 * 1024, scale);
    let stock = run_stock(&stock_tb, scripts, Vec::new());
    let base_w = stock.write_mibs();
    let base_r = stock.read_mibs();
    rows.push(vec![
        "0 (stock)".into(),
        table::mibs(base_w),
        "+0.0%".into(),
        table::mibs(base_r),
        "+0.0%".into(),
    ]);
    for c_servers in 1..=6usize {
        let tb = Testbed {
            c_servers,
            seed: 0x54D,
            ..Testbed::default()
        };
        let (_, scripts) = campaign_scripts(32, 16 * 1024, scale);
        let s4d = run_s4d(&tb, S4dConfig::new(capacity), scripts, Vec::new());
        rows.push(vec![
            c_servers.to_string(),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(base_w, s4d.write_mibs()),
            table::mibs(s4d.read_mibs()),
            table::speedup_pct(base_r, s4d.read_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 8 — IOR throughput vs number of CServers (fixed cache space)",
            &["CServers", "write MiB/s", "W gain", "read MiB/s", "R gain"],
            &rows,
        )
    );
    println!(
        "paper shape: +20.7-60.1 % writes, improvement plateaus above 4 CServers \
         (scale factor {})",
        scale.factor()
    );
}
