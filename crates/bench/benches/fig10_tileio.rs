//! Figure 10: MPI-Tile-IO throughput with varied numbers of processes.
//!
//! The paper runs MPI-Tile-IO with 10×10-element tiles of 32 KiB elements
//! and 100–400 processes: aggregate bandwidth improves 21–33 % for writes
//! and 18–31 % for reads — the nested-strided pattern has better locality
//! than random IOR, so the gain is smaller but still significant.
//!
//! Run: `cargo bench -p s4d-bench --bench fig10_tileio`

use s4d_bench::table;
use s4d_bench::{run_s4d, run_stock, testbed, Scale};
use s4d_cache::S4dConfig;
use s4d_workloads::TileIoConfig;

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for procs in [100u32, 200, 300, 400] {
        let mut cfg = TileIoConfig::paper_default(format!("tile_{procs}"), procs);
        // Scale element size down, keeping tile geometry.
        cfg.element_size = scale.bytes(32 * 1024).max(4096);
        let data = cfg.dataset_bytes();
        let stock = run_stock(&tb, cfg.scripts(), Vec::new());
        let s4d = run_s4d(&tb, S4dConfig::new(data / 5), cfg.scripts(), Vec::new());
        rows.push(vec![
            procs.to_string(),
            table::mibs(stock.write_mibs()),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
            table::mibs(stock.read_mibs()),
            table::mibs(s4d.read_mibs()),
            table::speedup_pct(stock.read_mibs(), s4d.read_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 10 — MPI-Tile-IO throughput vs process count (10x10 tiles)",
            &["procs", "stock W", "s4d W", "W gain", "stock R", "s4d R", "R gain",],
            &rows,
        )
    );
    println!(
        "paper shape: writes +21-33 %, reads +18-31 % across 100-400 processes \
         (scale factor {})",
        scale.factor()
    );
}
