//! Figure 1: the motivating experiment.
//!
//! "We ran IOR on a PVFS2 file system built on eight I/O servers... overall
//! file size 16 GB, 16 processes, request size from 4 KB to 32 MB. Each of
//! the n processes reads its own 1/n of the shared file, sequentially or
//! randomly." The paper reports aggregate read bandwidth collapsing under
//! small random requests and converging for requests ≥ 4 MB.
//!
//! Run: `cargo bench -p s4d-bench --bench fig01_motivation`

use s4d_bench::table;
use s4d_bench::{run_stock, testbed, Scale};
use s4d_workloads::{AccessPattern, IorConfig};

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let file_size = scale.bytes(16 << 30);
    let mut rows = Vec::new();
    for req_kib in [4u64, 16, 64, 256, 1024, 4096] {
        let mk = |pattern| {
            IorConfig {
                file_name: format!("fig1_{req_kib}k_{pattern:?}"),
                file_size,
                processes: 16,
                request_size: req_kib * 1024,
                pattern,
                do_write: true,
                do_read: true,
                seed: 0xF16,
            }
            .scripts()
        };
        let seq = run_stock(&tb, mk(AccessPattern::Sequential), Vec::new());
        let rnd = run_stock(&tb, mk(AccessPattern::Random), Vec::new());
        rows.push(vec![
            format!("{req_kib} KiB"),
            table::mibs(seq.read_mibs()),
            table::mibs(rnd.read_mibs()),
            format!("{:.2}x", seq.read_mibs() / rnd.read_mibs().max(1e-9)),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 1 — stock PFS read bandwidth, sequential vs random (16 procs, 8 DServers)",
            &["req size", "seq MiB/s", "random MiB/s", "seq/random"],
            &rows,
        )
    );
    println!(
        "paper shape: random ≪ sequential below ~1 MiB, comparable at 4 MiB+ \
         (scale factor {})",
        scale.factor()
    );
}
