//! Figure 7: IOR throughput with varied numbers of processes.
//!
//! The paper runs the campaign at 16/32/64/128 processes (16 KiB requests,
//! disjoint per-process regions) and reports write improvements of
//! 35.4–49.5 % with a similar trend for reads; absolute bandwidth drops as
//! processes contend.
//!
//! Run: `cargo bench -p s4d-bench --bench fig07_process_count`

use s4d_bench::table;
use s4d_bench::{run_s4d, run_stock, testbed, Scale};
use s4d_cache::S4dConfig;
use s4d_workloads::campaign::CampaignConfig;

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for procs in [16u32, 32, 64, 128] {
        // Weak scaling: each process keeps the paper's 64 MiB share of the
        // shared file, so the per-process access pattern (and the cost
        // model's view of it) is constant across the sweep.
        let file_size = procs as u64 * scale.bytes(64 << 20);
        let mk = || {
            let cfg = CampaignConfig::paper_mix(procs, file_size, 16 * 1024);
            (cfg.total_data_bytes(), cfg.scripts())
        };
        let (total, scripts) = mk();
        let capacity = total / 5;
        let stock = run_stock(&tb, scripts, Vec::new());
        let (_, scripts) = mk();
        let s4d = run_s4d(&tb, S4dConfig::new(capacity), scripts, Vec::new());
        rows.push(vec![
            procs.to_string(),
            table::mibs(stock.write_mibs()),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
            table::mibs(stock.read_mibs()),
            table::mibs(s4d.read_mibs()),
            table::speedup_pct(stock.read_mibs(), s4d.read_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 7 — IOR throughput vs process count (16 KiB requests)",
            &["procs", "stock W", "s4d W", "W gain", "stock R", "s4d R", "R gain",],
            &rows,
        )
    );
    println!(
        "paper shape: +35-50 % across 16-128 processes; absolute MiB/s falls as \
         contention rises (scale factor {})",
        scale.factor()
    );
}
