//! Ablation: what the cost-model-driven selectivity buys.
//!
//! DESIGN.md calls out the paper's central design choice: admission by
//! predicted *benefit* (size **and** randomness aware), not by locality or
//! size alone. A uniform workload cannot separate the policies, so this
//! bench runs a mixed campaign — small random, mid-size random, and large
//! sequential instances — under:
//!
//! * `benefit` — the paper's policy;
//! * `always-admit` — a conventional cache-everything SSD tier (large
//!   sequential writes now crowd the SSDs);
//! * `never-admit` — S4D bookkeeping with no caching (≈ stock);
//! * `size<64KiB` — a naive size threshold (misses the mid-size random
//!   requests that still benefit);
//! * `benefit + eager fetch` — fetching read misses inline instead of
//!   lazily (§III.E argues lazy keeps read response time low);
//! * `carl-placement` — the paper's predecessor CARL (§II.C): critical
//!   data *placed* persistently on the SSD servers, no write-back or
//!   eviction — what the cache semantics add;
//! * `memcache + benefit` — the paper's future-work stacking: a client
//!   RAM cache over S4D-Cache (re-reads short-circuit in memory).
//!
//! Run: `cargo bench -p s4d-bench --bench ablation_policies`

use s4d_bench::table;
use s4d_bench::{run_custom, run_stock, testbed, Scale, Testbed};
use s4d_cache::{AdmissionPolicy, MemCache, S4dCache, S4dConfig};
use s4d_mpiio::ProcessScript;
use s4d_workloads::{AccessPattern, ChainScript, IorConfig, IorScript};

/// A mixed campaign: per instance (request size, pattern).
fn mixed_instances(scale: Scale) -> Vec<IorConfig> {
    use AccessPattern::{Random, Sequential};
    let mix: [(u64, AccessPattern); 8] = [
        (16 << 10, Random),
        (2 << 20, Sequential),
        (16 << 10, Sequential),
        (256 << 10, Random),
        (2 << 20, Sequential),
        (16 << 10, Random),
        (256 << 10, Random),
        (2 << 20, Random),
    ];
    mix.iter()
        .enumerate()
        .map(|(i, &(request_size, pattern))| IorConfig {
            file_name: format!("mixed_{i:02}.dat"),
            file_size: scale.bytes(2 << 30),
            processes: 32,
            request_size,
            pattern,
            do_write: true,
            do_read: true,
            seed: 0xAB1 + i as u64,
        })
        .collect()
}

fn scripts(scale: Scale) -> Vec<ChainScript> {
    let instances = mixed_instances(scale);
    (0..32u32)
        .map(|rank| {
            let parts: Vec<Box<dyn ProcessScript>> = instances
                .iter()
                .map(|cfg| Box::new(IorScript::new(cfg.clone(), rank)) as Box<dyn ProcessScript>)
                .collect();
            ChainScript::new(parts)
        })
        .collect()
}

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let total: u64 = mixed_instances(scale).iter().map(|c| c.file_size).sum();
    let capacity = total / 5;
    let stock = run_stock(&tb, scripts(scale), Vec::new());
    let mut rows = vec![vec![
        "stock".to_string(),
        table::mibs(stock.write_mibs()),
        "+0.0%".to_string(),
        table::mibs(stock.read_mibs()),
        "0.0".to_string(),
    ]];
    let s4d = |tb: &Testbed, config: S4dConfig| S4dCache::new(config, tb.cost_params());
    let mut run = |name: &str, mw_kind: u8, config: S4dConfig| {
        let (report, c_share) = if mw_kind == 0 {
            let (report, _mw) = run_custom(&tb, s4d(&tb, config), scripts(scale), Vec::new());
            let share = report.tiers.cserver_op_share();
            (report, share)
        } else {
            let stacked = MemCache::new(s4d(&tb, config), 64 << 20);
            let (report, _mw) = run_custom(&tb, stacked, scripts(scale), Vec::new());
            let share = report.tiers.cserver_op_share();
            (report, share)
        };
        rows.push(vec![
            name.to_string(),
            table::mibs(report.writes.throughput_mibs()),
            table::speedup_pct(stock.write_mibs(), report.writes.throughput_mibs()),
            table::mibs(report.reads.throughput_mibs()),
            format!("{c_share:.1}"),
        ]);
    };
    run("benefit (paper)", 0, S4dConfig::new(capacity));
    run(
        "always-admit",
        0,
        S4dConfig::new(capacity).with_admission(AdmissionPolicy::AlwaysAdmit),
    );
    run(
        "never-admit",
        0,
        S4dConfig::new(capacity).with_admission(AdmissionPolicy::NeverAdmit),
    );
    run(
        "size<64KiB",
        0,
        S4dConfig::new(capacity).with_admission(AdmissionPolicy::SizeBelow(64 << 10)),
    );
    run(
        "benefit+eager-fetch",
        0,
        S4dConfig::new(capacity).with_eager_read_fetch(true),
    );
    run(
        "carl-placement",
        0,
        S4dConfig::new(capacity).with_persistent_placement(true),
    );
    run("memcache+benefit", 1, S4dConfig::new(capacity));
    print!(
        "{}",
        table::render(
            "Ablation — admission policy on a mixed campaign (16 KiB/256 KiB/2 MiB, 32 procs)",
            &[
                "policy",
                "write MiB/s",
                "vs stock",
                "read MiB/s",
                "C share %"
            ],
            &rows,
        )
    );
    println!(
        "expectation: benefit-based selection beats cache-everything (which drags \
         large sequential writes onto 4 SSDs) and naive size thresholds (which \
         miss mid-size random requests); never-admit ~ stock (scale factor {})",
        scale.factor()
    );
}
