//! Figure 9: HPIO throughput with varied region spacings.
//!
//! HPIO (16 processes, 4096 regions of 8 KiB) with region spacing swept
//! from 0 (contiguous) to 4 KiB: the paper reports S4D-Cache improving
//! throughput by 18/28/30/33 % — more spacing means poorer locality on the
//! DServers and more benefit from the cache.
//!
//! Run: `cargo bench -p s4d-bench --bench fig09_hpio`

use s4d_bench::table;
use s4d_bench::{run_s4d, run_stock, testbed, Scale};
use s4d_cache::S4dConfig;
use s4d_workloads::HpioConfig;

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let mut wrows = Vec::new();
    let mut rrows = Vec::new();
    for spacing in [0u64, 1024, 2048, 4096] {
        let mut cfg = HpioConfig::paper_default(format!("hpio_{spacing}"), spacing);
        cfg.region_count = scale.bytes(4096 * 1024) / 1024; // scale op count
        let data = cfg.processes as u64 * cfg.process_bytes();
        let stock = run_stock(&tb, cfg.scripts(), Vec::new());
        let s4d = run_s4d(&tb, S4dConfig::new(data / 5), cfg.scripts(), Vec::new());
        wrows.push(vec![
            format!("{} KiB", spacing / 1024),
            table::mibs(stock.write_mibs()),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
        ]);
        rrows.push(vec![
            format!("{} KiB", spacing / 1024),
            table::mibs(stock.read_mibs()),
            table::mibs(s4d.read_mibs()),
            table::speedup_pct(stock.read_mibs(), s4d.read_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 9(a) — HPIO write throughput vs region spacing (16 procs, 8 KiB regions)",
            &["spacing", "stock MiB/s", "s4d MiB/s", "improvement"],
            &wrows,
        )
    );
    print!(
        "{}",
        table::render(
            "Fig. 9(b) — HPIO read throughput vs region spacing",
            &["spacing", "stock MiB/s", "s4d MiB/s", "improvement"],
            &rrows,
        )
    );
    println!(
        "paper shape: +18/28/30/33 % as spacing grows 0 -> 4 KiB (scale factor {})",
        scale.factor()
    );
}
