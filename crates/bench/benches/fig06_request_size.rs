//! Figure 6: IOR throughput with varied request sizes, stock vs S4D-Cache.
//!
//! The paper's campaign: 10 IOR instances (6 sequential + 4 random) over
//! shared files, 32 processes, cache capacity = 20 % of the application
//! data. Write improvements of 51.3/49.1/39.2/32.5 % at 8/16/32/64 KiB and
//! parity at 4 MiB; reads improve more (up to 184.1 % at 8 KiB), measured
//! on a program's *second run* (§V.A).
//!
//! Run: `cargo bench -p s4d-bench --bench fig06_request_size`

use s4d_bench::table;
use s4d_bench::{
    campaign_scripts, run_s4d, run_s4d_second_read, run_stock, run_stock_second_read, testbed,
    Scale,
};
use s4d_cache::S4dConfig;
use s4d_workloads::campaign::CampaignConfig;

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let mut wrows = Vec::new();
    let mut rrows = Vec::new();
    for req_kib in [8u64, 16, 32, 64, 4096] {
        let (cfg, scripts) = campaign_scripts(32, req_kib * 1024, scale);
        let capacity = cfg.total_data_bytes() / 5;
        let stock = run_stock(&tb, scripts, Vec::new());

        let (_, scripts) = campaign_scripts(32, req_kib * 1024, scale);
        let s4d = run_s4d(&tb, S4dConfig::new(capacity), scripts, Vec::new());

        // Second-run read measurement: first run write+read (learn + cache),
        // then a read-only pass over the same files — for BOTH systems, so
        // the read comparison is pure-read vs pure-read.
        let read_cfg = CampaignConfig {
            do_write: false,
            ..cfg.clone()
        };
        let (_, first) = campaign_scripts(32, req_kib * 1024, scale);
        let stock_read2 = run_stock_second_read(&tb, first, read_cfg.scripts());
        let (_, first) = campaign_scripts(32, req_kib * 1024, scale);
        let s4d_read2 =
            run_s4d_second_read(&tb, S4dConfig::new(capacity), first, read_cfg.scripts());

        wrows.push(vec![
            format!("{req_kib} KiB"),
            table::mibs(stock.write_mibs()),
            table::mibs(s4d.write_mibs()),
            table::speedup_pct(stock.write_mibs(), s4d.write_mibs()),
        ]);
        rrows.push(vec![
            format!("{req_kib} KiB"),
            table::mibs(stock_read2.read_mibs()),
            table::mibs(s4d_read2.read_mibs()),
            table::speedup_pct(stock_read2.read_mibs(), s4d_read2.read_mibs()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Fig. 6(a) — IOR write throughput vs request size (campaign, 32 procs)",
            &["req size", "stock MiB/s", "s4d MiB/s", "improvement"],
            &wrows,
        )
    );
    print!(
        "{}",
        table::render(
            "Fig. 6(b) — IOR read throughput vs request size (second run)",
            &["req size", "stock MiB/s", "s4d MiB/s", "improvement"],
            &rrows,
        )
    );
    println!(
        "paper shape: writes +51/49/39/33 % at 8-64 KiB, ~0 % at 4 MiB; reads larger \
         (scale factor {})",
        scale.factor()
    );
}
