//! §V.E.1: DMT metadata space overhead.
//!
//! The paper bounds the mapping table's storage cost: with every request at
//! the worst-case 4 KB and 24-byte records, the metadata consumes 0.6 % of
//! the cache space. This bench verifies the same bound analytically and
//! empirically against a live DMT.
//!
//! Run: `cargo bench -p s4d-bench --bench tab05_metadata`

use s4d_bench::table;
use s4d_bench::{testbed, Scale};
use s4d_cache::{S4dCache, S4dConfig, DMT_RECORD_BYTES};
use s4d_mpiio::Runner;
use s4d_workloads::{AccessPattern, IorConfig};

fn main() {
    let tb = testbed(0x54D);
    let scale = Scale::from_env();
    let mut rows = Vec::new();

    // Analytic worst case, as in the paper: S bytes of cache filled by
    // 4 KiB extents -> S/4096 records of 24 bytes.
    for (label, cache_gib) in [("100 GB x4", 400u64), ("1 GB", 1)] {
        let cache = cache_gib << 30;
        let entries = cache / 4096;
        let meta = entries * DMT_RECORD_BYTES;
        rows.push(vec![
            format!("analytic {label}"),
            entries.to_string(),
            format!("{:.1} MiB", meta as f64 / (1 << 20) as f64),
            format!("{:.2}%", meta as f64 * 100.0 / cache as f64),
        ]);
    }

    // Empirical: a random 4 KiB workload against a small cache.
    let cfg = IorConfig {
        file_name: "tab05".into(),
        file_size: scale.bytes(1 << 30),
        processes: 16,
        request_size: 4096,
        pattern: AccessPattern::Random,
        do_write: true,
        do_read: false,
        seed: 0x7AB,
    };
    let capacity = cfg.file_size / 5;
    let middleware = S4dCache::new(S4dConfig::new(capacity), tb.cost_params());
    let mut runner = Runner::new(tb.cluster(), middleware, cfg.scripts(), 0x7AB);
    runner.run();
    let (_cluster, mw, _report) = runner.into_parts();
    let entries = mw.dmt().entry_count() as u64;
    let table_bytes = entries * DMT_RECORD_BYTES;
    rows.push(vec![
        "measured (4 KiB random)".into(),
        entries.to_string(),
        format!("{:.2} MiB", table_bytes as f64 / (1 << 20) as f64),
        format!(
            "{:.2}%",
            table_bytes as f64 * 100.0 / mw.dmt().mapped_bytes().max(1) as f64
        ),
    ]);

    print!(
        "{}",
        table::render(
            "§V.E.1 — DMT metadata space overhead (24-byte records)",
            &["case", "records/writes", "metadata", "of cache space"],
            &rows,
        )
    );
    println!(
        "paper: worst-case overhead 0.6 %, 'negligible' (scale factor {})",
        scale.factor()
    );
}
